"""User-facing facade: :class:`TreeDatabase`."""

from .facade import TreeDatabase

__all__ = ["TreeDatabase"]
