"""User-facing facade: :class:`TreeDatabase`."""

from .facade import CacheInfo, TreeDatabase, XPATH_CACHE_SIZE

__all__ = ["CacheInfo", "TreeDatabase", "XPATH_CACHE_SIZE"]
