"""Compiling caterpillar expressions into nondeterministic TWAs.

Brüggemann-Klein & Wood's observation, executable: a caterpillar
expression *is* a nondeterministic tree-walking automaton — the
Thompson NFA's states become walker states, move atoms become walking
rules, and test atoms become guarded ``stay`` rules.  Acceptance
("some denoted string walks from the root") coincides with NTWA
acceptance from the root.

Together with :mod:`repro.automata.stringcompile` (2DFA → tw) this
closes the circle of the paper's §1 lineage: caterpillars ⊆ NTWA, and
two-way string automata ⊆ tw.
"""

from __future__ import annotations

from typing import List

from ..automata.nondet import NTWA, NTWRule
from ..automata.rules import PositionTest
from .ast import (
    Caterpillar,
    IS_FIRST,
    IS_LAST,
    IS_LEAF,
    IS_ROOT,
    LabelTest,
    Move,
    Test,
)
from .nfa import compile_caterpillar

_TEST_POSITIONS = {
    IS_ROOT: PositionTest(root=True),
    IS_LEAF: PositionTest(leaf=True),
    IS_FIRST: PositionTest(first=True),
    IS_LAST: PositionTest(last=True),
}


def caterpillar_to_ntwa(expr: Caterpillar, name: str = "") -> NTWA:
    """Build the equivalent NTWA (accepting iff the expression matches
    from the run's start node)."""
    nfa = compile_caterpillar(expr)

    def state(index: int) -> str:
        return f"n{index}"

    rules: List[NTWRule] = []
    for source, atom, target in nfa.transitions:
        if atom is None:
            rules.append(NTWRule(state(source), state(target)))
        elif isinstance(atom, Move):
            rules.append(
                NTWRule(state(source), state(target), atom.direction)
            )
        elif isinstance(atom, Test):
            rules.append(
                NTWRule(
                    state(source), state(target),
                    position=_TEST_POSITIONS[atom.predicate],
                )
            )
        elif isinstance(atom, LabelTest):
            rules.append(
                NTWRule(state(source), state(target), label=atom.label)
            )
        else:  # pragma: no cover
            raise TypeError(f"unknown caterpillar atom {atom!r}")

    states = frozenset(state(i) for i in range(nfa.state_count))
    return NTWA(
        states=states,
        initial=state(nfa.start),
        finals=frozenset({state(nfa.accept)}),
        rules=tuple(rules),
        name=name or f"ntwa[{expr!r}]",
    )
