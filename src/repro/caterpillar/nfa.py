"""Thompson construction + product evaluation for caterpillar
expressions.

An expression compiles to an ε-NFA over the caterpillar alphabet; the
denoted node relation is computed as reachability in the product of the
NFA with the tree's move graph — the standard way of running a
"regular expression over walks" in one BFS instead of enumerating
strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..trees.node import NodeId
from ..trees.tree import Tree
from .ast import (
    Alt,
    Caterpillar,
    Concat,
    DOWN,
    Epsilon,
    IS_FIRST,
    IS_LAST,
    IS_LEAF,
    IS_ROOT,
    LabelTest,
    LEFT,
    Move,
    RIGHT,
    Star,
    Test,
    UP,
)

#: NFA edge labels: a move/test atom, or None for ε.
Atom = Union[Move, Test, LabelTest, None]


@dataclass
class CaterpillarNFA:
    """ε-NFA with a single start and a single accept state."""

    transitions: List[Tuple[int, Atom, int]]
    start: int
    accept: int
    state_count: int

    @cached_property
    def edge_table(self) -> Dict[int, List[Tuple[Atom, int]]]:
        """Transitions grouped by source state — computed once per NFA
        and shared by the reference walk and the compiled engine."""
        table: Dict[int, List[Tuple[Atom, int]]] = {}
        for source, atom, target in self.transitions:
            table.setdefault(source, []).append((atom, target))
        return table

    def edges_from(self) -> Dict[int, List[Tuple[Atom, int]]]:
        return self.edge_table


class _Builder:
    def __init__(self) -> None:
        self.count = 0
        self.transitions: List[Tuple[int, Atom, int]] = []

    def fresh(self) -> int:
        self.count += 1
        return self.count - 1

    def edge(self, source: int, atom: Atom, target: int) -> None:
        self.transitions.append((source, atom, target))

    def build(self, expr: Caterpillar) -> Tuple[int, int]:
        """Thompson construction; returns (start, accept)."""
        if isinstance(expr, (Move, Test, LabelTest)):
            start, accept = self.fresh(), self.fresh()
            self.edge(start, expr, accept)
            return start, accept
        if isinstance(expr, Epsilon):
            start, accept = self.fresh(), self.fresh()
            self.edge(start, None, accept)
            return start, accept
        if isinstance(expr, Concat):
            first_start, current_accept = self.build(expr.parts[0])
            for part in expr.parts[1:]:
                next_start, next_accept = self.build(part)
                self.edge(current_accept, None, next_start)
                current_accept = next_accept
            return first_start, current_accept
        if isinstance(expr, Alt):
            start, accept = self.fresh(), self.fresh()
            for option in expr.options:
                inner_start, inner_accept = self.build(option)
                self.edge(start, None, inner_start)
                self.edge(inner_accept, None, accept)
            return start, accept
        if isinstance(expr, Star):
            start, accept = self.fresh(), self.fresh()
            inner_start, inner_accept = self.build(expr.inner)
            self.edge(start, None, accept)
            self.edge(start, None, inner_start)
            self.edge(inner_accept, None, inner_start)
            self.edge(inner_accept, None, accept)
            return start, accept
        raise TypeError(f"unknown caterpillar node {expr!r}")


def compile_caterpillar(expr: Caterpillar) -> CaterpillarNFA:
    """Compile to an ε-NFA."""
    builder = _Builder()
    start, accept = builder.build(expr)
    return CaterpillarNFA(builder.transitions, start, accept, builder.count)


def _atom_step(
    atom: Atom, tree: Tree, node: NodeId
) -> Optional[NodeId]:
    """Apply one atom at ``node``: new node, or None when it fails."""
    if atom is None:
        return node
    if isinstance(atom, Move):
        if atom.direction == UP:
            return tree.parent(node)
        if atom.direction == DOWN:
            return tree.first_child(node)
        if atom.direction == LEFT:
            return tree.left_sibling(node)
        return tree.right_sibling(node)
    if isinstance(atom, Test):
        holds = {
            IS_ROOT: tree.is_root,
            IS_LEAF: tree.is_leaf,
            IS_FIRST: tree.is_first_child,
            IS_LAST: tree.is_last_child,
        }[atom.predicate](node)
        return node if holds else None
    if isinstance(atom, LabelTest):
        return node if tree.label(node) == atom.label else None
    raise TypeError(f"unknown atom {atom!r}")


def walk(
    expr: Caterpillar, tree: Tree, start: NodeId = ()
) -> Tuple[NodeId, ...]:
    """All nodes reachable from ``start`` by some denoted caterpillar
    string — BFS over the NFA × tree product."""
    from ..resilience.budget import current_context

    tree.require(start)
    nfa = compile_caterpillar(expr)
    edges = nfa.edges_from()
    seen: Set[Tuple[int, NodeId]] = {(nfa.start, start)}
    frontier: List[Tuple[int, NodeId]] = [(nfa.start, start)]
    results: Set[NodeId] = set()
    context = current_context()
    while frontier:
        # Cooperative budget checkpoint: one unit per product pair.
        if context is not None:
            context.checkpoint()
        state, node = frontier.pop()
        if state == nfa.accept:
            results.add(node)
        for atom, target_state in edges.get(state, ()):
            target_node = _atom_step(atom, tree, node)
            if target_node is None:
                continue
            key = (target_state, target_node)
            if key not in seen:
                seen.add(key)
                frontier.append(key)
    return tuple(sorted(results, key=tree.document_index))


def relation(expr: Caterpillar, tree: Tree) -> FrozenSet[Tuple[NodeId, NodeId]]:
    """The full binary relation ⟦expr⟧ ⊆ Dom(t)²."""
    out = set()
    for u in tree.nodes:
        for v in walk(expr, tree, u):
            out.add((u, v))
    return frozenset(out)


def matches(expr: Caterpillar, tree: Tree) -> bool:
    """Tree acceptance à la [7]: some denoted string walks from the
    root (to anywhere)."""
    return bool(walk(expr, tree, ()))
