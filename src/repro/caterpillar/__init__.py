"""Caterpillar expressions — the paper's cited [7], executable.

>>> from repro.trees import parse_term
>>> from repro.caterpillar import parse_caterpillar, walk
>>> t = parse_term("a(b(c), d)")
>>> walk(parse_caterpillar("(down | right)* isLeaf"), t, ())
((0, 0), (1,))
>>> walk(parse_caterpillar("up* isRoot"), t, (0, 0))
((),)
"""

from .ast import (
    Alt,
    Caterpillar,
    Concat,
    DOWN,
    Epsilon,
    IS_FIRST,
    IS_LAST,
    IS_LEAF,
    IS_ROOT,
    LEFT,
    LabelTest,
    MOVES,
    Move,
    RIGHT,
    Star,
    TESTS,
    Test,
    UP,
    alt,
    concat,
    optional,
    plus,
    star,
)
from .compile_ntwa import caterpillar_to_ntwa
from .nfa import CaterpillarNFA, compile_caterpillar, matches, relation, walk
from .parser import CaterpillarSyntaxError, format_caterpillar, parse_caterpillar

__all__ = [
    "Alt",
    "Caterpillar",
    "Concat",
    "DOWN",
    "Epsilon",
    "IS_FIRST",
    "IS_LAST",
    "IS_LEAF",
    "IS_ROOT",
    "LEFT",
    "LabelTest",
    "MOVES",
    "Move",
    "RIGHT",
    "Star",
    "TESTS",
    "Test",
    "UP",
    "alt",
    "concat",
    "optional",
    "plus",
    "star",
    "caterpillar_to_ntwa",
    "CaterpillarNFA",
    "compile_caterpillar",
    "matches",
    "relation",
    "walk",
    "CaterpillarSyntaxError",
    "format_caterpillar",
    "parse_caterpillar",
]
