"""Caterpillar expressions (Brüggemann-Klein & Wood, the paper's [7]).

The paper's introduction credits caterpillar expressions as "a first
instance of tree-walking" in XML research.  A caterpillar expression is
a regular expression over the *caterpillar alphabet* of atomic moves
and tests:

    moves:  up, down (first child), left, right
    tests:  isRoot, isLeaf, isFirst, isLast, <label σ>

An expression denotes a set of *caterpillar strings*; a string executes
from a node by performing its moves (failing off the tree) and checking
its tests (failing when false); the expression denotes the binary
relation {(u, v) : some denoted string walks from u to v}.

Concrete syntax (see :mod:`repro.caterpillar.parser`)::

    (down right*)* isLeaf                -- all leftish leaves? no: any leaf
    up* isRoot                           -- the root, from anywhere
    down right* isLast                   -- the last child
    (σ | δ)                              -- label alternatives
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

# Atomic moves.
UP = "up"
DOWN = "down"
LEFT = "left"
RIGHT = "right"
MOVES = (UP, DOWN, LEFT, RIGHT)

# Atomic tests.
IS_ROOT = "isRoot"
IS_LEAF = "isLeaf"
IS_FIRST = "isFirst"
IS_LAST = "isLast"
TESTS = (IS_ROOT, IS_LEAF, IS_FIRST, IS_LAST)


@dataclass(frozen=True)
class Move:
    """One of the four walking steps."""

    direction: str

    def __post_init__(self) -> None:
        if self.direction not in MOVES:
            raise ValueError(f"unknown move {self.direction!r}")

    def __repr__(self) -> str:
        return self.direction


@dataclass(frozen=True)
class Test:
    """A positional test (stays put; fails the walk when false)."""

    predicate: str

    def __post_init__(self) -> None:
        if self.predicate not in TESTS:
            raise ValueError(f"unknown test {self.predicate!r}")

    def __repr__(self) -> str:
        return self.predicate


@dataclass(frozen=True)
class LabelTest:
    """The test "the current node is labelled σ"."""

    label: str

    def __repr__(self) -> str:
        return f"<{self.label}>"


@dataclass(frozen=True)
class Concat:
    """Sequential composition."""

    parts: Tuple["Caterpillar", ...]

    def __repr__(self) -> str:
        return " ".join(_wrap(p) for p in self.parts)


@dataclass(frozen=True)
class Alt:
    """Alternation."""

    options: Tuple["Caterpillar", ...]

    def __repr__(self) -> str:
        return " | ".join(repr(o) for o in self.options)


@dataclass(frozen=True)
class Star:
    """Kleene closure."""

    inner: "Caterpillar"

    def __repr__(self) -> str:
        return f"{_wrap(self.inner)}*"


@dataclass(frozen=True)
class Epsilon:
    """The empty walk."""

    def __repr__(self) -> str:
        return "ε"


Caterpillar = Union[Move, Test, LabelTest, Concat, Alt, Star, Epsilon]


def _wrap(expr: "Caterpillar") -> str:
    if isinstance(expr, (Alt, Concat)):
        return f"({expr!r})"
    return repr(expr)


def concat(*parts: Caterpillar) -> Caterpillar:
    parts = tuple(parts)
    if not parts:
        return Epsilon()
    if len(parts) == 1:
        return parts[0]
    return Concat(parts)


def alt(*options: Caterpillar) -> Caterpillar:
    options = tuple(options)
    if not options:
        raise ValueError("alternation needs at least one option")
    if len(options) == 1:
        return options[0]
    return Alt(options)


def star(inner: Caterpillar) -> Star:
    return Star(inner)


def plus(inner: Caterpillar) -> Caterpillar:
    """One or more repetitions."""
    return Concat((inner, Star(inner)))


def optional(inner: Caterpillar) -> Caterpillar:
    """Zero or one repetition."""
    return Alt((inner, Epsilon()))
