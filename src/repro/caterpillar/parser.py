"""Concrete syntax for caterpillar expressions.

Grammar::

    alt    := seq ("|" seq)*
    seq    := repeat+
    repeat := atom ("*" | "+" | "?")*
    atom   := "up" | "down" | "left" | "right"
            | "isRoot" | "isLeaf" | "isFirst" | "isLast"
            | "<" label ">"            -- label test
            | "eps"                    -- the empty walk
            | "(" alt ")"

Examples::

    up* isRoot                 -- walk to the root
    (down | right)* isLeaf     -- some leaf below-or-right
    down right* isLast         -- the last child
    <dept> down <item>         -- a dept with an item first-child
"""

from __future__ import annotations

from typing import List

from ..resilience.errors import ParseError
from .ast import (
    Alt,
    Caterpillar,
    Concat,
    Epsilon,
    LabelTest,
    MOVES,
    Move,
    Star,
    TESTS,
    Test,
    alt,
    concat,
    optional,
    plus,
    star,
)


class CaterpillarSyntaxError(ParseError):
    """Raised on malformed caterpillar text."""

    def __init__(self, message: str, text: str, pos: int) -> None:
        super().__init__(f"{message} at {pos}: ...{text[pos:pos + 20]!r}")
        self.pos = pos


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def take(self, literal: str) -> bool:
        self.skip_ws()
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def word(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_σδ"
        ):
            self.pos += 1
        if self.pos == start:
            raise CaterpillarSyntaxError("expected a word", self.text, self.pos)
        return self.text[start : self.pos]

    def error(self, message: str) -> CaterpillarSyntaxError:
        return CaterpillarSyntaxError(message, self.text, self.pos)


def _parse_atom(sc: _Scanner) -> Caterpillar:
    ch = sc.peek()
    if ch == "(":
        sc.take("(")
        inner = _parse_alt(sc)
        if not sc.take(")"):
            raise sc.error("expected ')'")
        return inner
    if ch == "<":
        sc.take("<")
        label = sc.word()
        if not sc.take(">"):
            raise sc.error("expected '>'")
        return LabelTest(label)
    word = sc.word()
    if word in MOVES:
        return Move(word)
    if word in TESTS:
        return Test(word)
    if word == "eps":
        return Epsilon()
    raise sc.error(f"unknown atom {word!r}")


def _parse_repeat(sc: _Scanner) -> Caterpillar:
    expr = _parse_atom(sc)
    while True:
        if sc.take("*"):
            expr = star(expr)
        elif sc.take("+"):
            expr = plus(expr)
        elif sc.take("?"):
            expr = optional(expr)
        else:
            return expr


def _at_atom_start(sc: _Scanner) -> bool:
    ch = sc.peek()
    return bool(ch) and (ch.isalnum() or ch in "(<_σδ")


def _parse_seq(sc: _Scanner) -> Caterpillar:
    parts: List[Caterpillar] = [_parse_repeat(sc)]
    while _at_atom_start(sc):
        parts.append(_parse_repeat(sc))
    return concat(*parts)


def _parse_alt(sc: _Scanner) -> Caterpillar:
    options = [_parse_seq(sc)]
    while sc.take("|"):
        options.append(_parse_seq(sc))
    return alt(*options)


def parse_caterpillar(text: str) -> Caterpillar:
    """Parse caterpillar syntax; raises on trailing input."""
    sc = _Scanner(text)
    expr = _parse_alt(sc)
    sc.skip_ws()
    if sc.pos != len(sc.text):
        raise sc.error("trailing input")
    return expr


def _format_tight(expr: Caterpillar) -> str:
    if isinstance(expr, (Alt, Concat)):
        return f"({format_caterpillar(expr)})"
    return format_caterpillar(expr)


def format_caterpillar(expr: Caterpillar) -> str:
    """Render an expression back into the concrete syntax.

    Inverse of :func:`parse_caterpillar` on expressions with no
    one-part ``Concat``/``Alt`` (as built by :func:`~repro.caterpillar.ast.concat`
    and ``alt``): ``parse_caterpillar(format_caterpillar(e)) == e``.
    Unlike ``repr``, the empty walk renders as the parseable ``eps``.
    """
    if isinstance(expr, (Move, Test)):
        return repr(expr)
    if isinstance(expr, LabelTest):
        return f"<{expr.label}>"
    if isinstance(expr, Epsilon):
        return "eps"
    if isinstance(expr, Star):
        return f"{_format_tight(expr.inner)}*"
    if isinstance(expr, Concat):
        return " ".join(_format_tight(p) for p in expr.parts)
    if isinstance(expr, Alt):
        return " | ".join(
            f"({format_caterpillar(o)})" if isinstance(o, Alt)
            else format_caterpillar(o)
            for o in expr.options
        )
    raise TypeError(f"unknown caterpillar node {expr!r}")
