"""Command-line interface: ``python -m repro <command> …``.

Commands
--------

``info FILE``
    Parse a document (XML subset or term syntax) and print its vitals.

``query FILE (--xpath EXPR | --ask SENTENCE | --select QUERY)``
    Evaluate an XPath expression, an FO sentence, or a binary FO(∃*)
    query (text syntax) against the document.

``run FILE AUTOMATON``
    Run a stock tree-walking automaton (see ``run --list``).

``transform FILE TRANSDUCER``
    Apply a stock transducer and print the output document.

``protocol PROGRAM F G``
    Play the Lemma 4.5 protocol for a stock string program on the split
    string f#g (f, g comma-separated values) and print the dialogue.

``corpus FILE… --xpath EXPR [--ask S] [--select Q] [--caterpillar E]``
    Evaluate a batch of queries over many documents set-at-a-time
    through the corpus engine; repeat any query flag to grow the
    batch, add ``--workers N`` to fan out and ``--stats`` for the
    per-chunk execution report.

``corpus --store DIR [--ingest FILE]… [FILE…] [query flags]``
    The same batch surface over a disk-backed corpus store.
    ``--ingest`` streams a file of concatenated documents into the
    store (created on first ingest; bounded memory however large the
    file); positional FILEs append one document each; query flags then
    run over the stored corpus without loading it wholesale.  A
    missing or version-mismatched store is a clean error (exit 2),
    never a raw traceback.

``serve (FILE… | --store DIR | --random N) [--port P] [--workers W]``
    Serve the corpus over TCP (length-prefixed JSON protocol) with
    admission control, per-query deadlines, and graceful degradation
    — see ``repro.service``.  ``--store`` opens a corpus store
    read-only, so a writer elsewhere is undisturbed.

``repl (FILE… | --store DIR | --random N | --connect HOST:PORT)``
    Interactive line REPL over the same dispatcher — local (loads the
    corpus in-process) or remote (speaks the serve protocol).

``oracle [ARGS…]``
    Differential fuzzing across the query engines; forwards to
    ``python -m repro.oracle`` (try ``oracle --help``).

``resilience [ARGS…]``
    Seeded fault-injection campaigns over the resilient executor;
    forwards to ``python -m repro.resilience`` (try
    ``resilience --help``).

Documents: files ending in ``.xml`` are parsed as the XML subset;
anything else as term syntax ``label[attr=value](children)``.  Pass
``-`` to read stdin.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .queries import TreeDatabase
from .trees import Tree, format_node, from_xml, parse_term, to_xml


def _load(path: str) -> TreeDatabase:
    if path == "-":
        text = sys.stdin.read()
        parse = from_xml if text.lstrip().startswith("<") else parse_term
        return TreeDatabase(parse(text))
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith(".xml") or text.lstrip().startswith("<"):
        return TreeDatabase(from_xml(text))
    return TreeDatabase(parse_term(text))


# -- registries ---------------------------------------------------------------------


def _automaton_registry() -> Dict[str, Callable]:
    """name → builder(attr) returning (automaton, needs_delimiting);
    attribute-parameterised automata use the document's first attribute."""
    from .automata import examples as ex

    return {
        "example-3.2": lambda attr: (ex.example_32(), True),
        "even-leaves": lambda attr: (ex.even_leaves_automaton(), False),
        "all-values-same": lambda attr: (ex.all_values_same_twr(attr), False),
        "leaves-uniform": lambda attr: (ex.all_leaves_same_twrl(attr), False),
        "spine-constant": lambda attr: (ex.spine_constant_automaton(attr), False),
        "delta-mod3": lambda attr: (ex.delta_leaves_mod3_twr(), False),
    }


def _transducer_registry() -> Dict[str, Callable]:
    from . import transducer as tr

    return {
        "identity": tr.identity_transducer,
        "prune-δ": lambda: tr.prune_transducer("δ"),
        "flatten-leaves": tr.flatten_leaves_transducer,
        "catalog-report": tr.catalog_report_transducer,
    }


def _program_registry() -> Dict[str, Callable]:
    from .protocol import programs as pp

    return {
        "walking-all-same": pp.walking_all_same,
        "atp-all-same": pp.atp_all_same,
        "nested-constant": pp.nested_constant_suffixes,
        "first-equals-last": pp.root_value_reappears,
        "walking-reporters": pp.walking_reporters,
    }


# -- commands -----------------------------------------------------------------------------


def _cmd_info(args: argparse.Namespace) -> int:
    db = _load(args.file)
    tree = db.tree
    leaves = sum(1 for u in tree.nodes if tree.is_leaf(u))
    print(f"nodes:      {tree.size}")
    print(f"leaves:     {leaves}")
    print(f"alphabet:   {', '.join(tree.alphabet)}")
    print(f"attributes: {', '.join(tree.attributes) or '(none)'}")
    print(f"values:     {len(tree.active_domain())} distinct")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    db = _load(args.file)
    if args.xpath:
        for node in db.xpath(args.xpath):
            print(format_node(node))
        return 0
    if args.ask:
        verdict = db.ask(args.ask)
        print("true" if verdict else "false")
        return 0 if verdict else 1
    for node in db.select_where(args.select):
        print(format_node(node))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    registry = _automaton_registry()
    if args.list:
        for name in sorted(registry):
            print(name)
        return 0
    db = _load(args.file)
    if args.automaton_file:
        from .automata.textformat import load_automaton

        automaton, delimited = load_automaton(args.automaton_file), args.delim
    else:
        if args.automaton not in registry:
            print(f"unknown automaton {args.automaton!r}; try --list",
                  file=sys.stderr)
            return 2
        attr = db.tree.attributes[0] if db.tree.attributes else "a"
        automaton, delimited = registry[args.automaton](attr)
    verdict = db.run_automaton(automaton, delimited=delimited)
    print("accept" if verdict else "reject")
    return 0 if verdict else 1


def _cmd_transform(args: argparse.Namespace) -> int:
    registry = _transducer_registry()
    if args.list:
        for name in sorted(registry):
            print(name)
        return 0
    if args.transducer not in registry:
        print(f"unknown transducer {args.transducer!r}; try --list",
              file=sys.stderr)
        return 2
    from .transducer import run_transducer

    db = _load(args.file)
    output = run_transducer(registry[args.transducer](), db.tree)
    print(to_xml(output), end="")
    return 0


def _cmd_protocol(args: argparse.Namespace) -> int:
    registry = _program_registry()
    if args.list:
        for name in sorted(registry):
            print(name)
        return 0
    if args.program_file:
        from .automata.textformat import load_automaton

        program = load_automaton(args.program_file)
    elif args.program in registry:
        program = registry[args.program]()
    else:
        print(f"unknown program {args.program!r}; try --list", file=sys.stderr)
        return 2
    from .protocol import run_protocol

    f = args.f.split(",")
    g = args.g.split(",")
    result = run_protocol(program, f, g)
    for sender, message in result.dialogue:
        print(f"{sender:>2} -> {type(message).__name__}")
    print("verdict:", "accept" if result.accepted else "reject")
    return 0 if result.accepted else 1


def _iter_documents(path: str):
    """Stream a file of concatenated documents (XML subset or term
    syntax, sniffed) one tree at a time — the ingest feed."""
    import io

    from .trees import iter_term_stream, iter_xml_stream

    if path == "-":
        text = sys.stdin.read()
        xml = text.lstrip().startswith("<")
        stream = io.StringIO(text)
        yield from (iter_xml_stream(stream) if xml else iter_term_stream(stream))
        return
    with open(path, "r", encoding="utf-8") as handle:
        head = handle.read(512)
        handle.seek(0)
        if path.endswith(".xml") or head.lstrip().startswith("<"):
            yield from iter_xml_stream(handle)
        else:
            yield from iter_term_stream(handle)


def _print_batch(result, labels, queries) -> None:
    for t, label in enumerate(labels):
        print(f"{label}:")
        for q, query in enumerate(queries):
            answer = result.cell(t, q)
            if query.kind == "ask":
                shown = "true" if answer else "false"
            else:
                shown = ", ".join(format_node(n) for n in answer) or "(none)"
            print(f"  {query.kind} {query.text}: {shown}")


def _print_chunk_stats(result, queries) -> None:
    print(
        f"{result.tree_count} trees x {len(queries)} queries in "
        f"{len(result.chunks)} chunks (workers={result.workers})"
    )
    for chunk in result.chunks:
        note = f" [{chunk.error}]" if chunk.fell_back else ""
        print(
            f"  chunk {chunk.index}: trees {chunk.start}..{chunk.stop}"
            f" via {chunk.engine} in {chunk.seconds * 1000:.1f}ms{note}"
        )


def _cmd_corpus_store(args: argparse.Namespace, queries) -> int:
    from .corpus import CorpusStore, StoreError, StoreMissingError

    ingesting = bool(args.ingest or args.files)
    try:
        try:
            store = CorpusStore.open(args.store)
        except StoreMissingError:
            if not ingesting:
                raise
            store = CorpusStore.create(args.store)
    except StoreError as exc:
        print(f"corpus: {exc}", file=sys.stderr)
        return 2
    with store:
        try:
            for path in args.ingest:
                count = store.ingest(_iter_documents(path))
                print(f"ingested {count} documents from {path}")
            for path in args.files:
                store.append(_load(path).tree)
            if args.compact:
                rewritten = store.compact()
                if rewritten:
                    print(
                        f"compacted into {rewritten} segments "
                        f"(generation {store.generation})"
                    )
                else:
                    print("store already compact")
            if not queries:
                print(
                    f"store {args.store}: {store.tree_count} trees, "
                    f"{store.node_count} nodes, "
                    f"generation {store.generation}"
                )
                return 0
            result = store.run(
                queries,
                workers=args.workers,
                chunk_size=args.chunk_size,
                engine=args.engine,
            )
        except StoreError as exc:
            print(f"corpus: {exc}", file=sys.stderr)
            return 2
        labels = [f"tree {t}" for t in range(result.tree_count)]
        _print_batch(result, labels, queries)
        if args.stats:
            _print_chunk_stats(result, queries)
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from .corpus import (
        TreeCorpus,
        ask_query,
        caterpillar_query,
        select_query,
        xpath_query,
    )

    queries = (
        [xpath_query(text) for text in args.xpath]
        + [ask_query(text) for text in args.ask]
        + [select_query(text) for text in args.select]
        + [caterpillar_query(text) for text in args.caterpillar]
    )
    if args.ingest and args.store is None:
        print("corpus: --ingest needs --store", file=sys.stderr)
        return 2
    if args.store is not None:
        return _cmd_corpus_store(args, queries)
    if not queries:
        print(
            "corpus: give at least one --xpath/--ask/--select/--caterpillar",
            file=sys.stderr,
        )
        return 2
    if not args.files:
        print("corpus: give at least one FILE (or --store DIR)",
              file=sys.stderr)
        return 2
    trees = [_load(path).tree for path in args.files]
    with TreeCorpus(trees) as corpus:
        result = corpus.run(
            queries,
            workers=args.workers,
            chunk_size=args.chunk_size,
            engine=args.engine,
        )
    _print_batch(result, args.files, queries)
    if args.stats:
        _print_chunk_stats(result, queries)
    return 0


def _open_service_corpus(args: argparse.Namespace):
    """``(corpus, closer)`` for serve/repl from files, a store, or a
    synthetic corpus; a store opens read-only so writers elsewhere
    keep their lock."""
    from .corpus import CorpusStore, StoreError, TreeCorpus

    if getattr(args, "store", None):
        store = CorpusStore.open(args.store, readonly=True)
        return store, store.close
    if getattr(args, "random", None):
        corpus = TreeCorpus.random(args.random, max_size=48, seed=7)
        return corpus, corpus.close
    if not args.files:
        raise StoreError("give FILE documents, --store DIR, or --random N")
    corpus = TreeCorpus(_load(path).tree for path in args.files)
    return corpus, corpus.close


def _cmd_serve(args: argparse.Namespace) -> int:
    from .corpus import StoreError
    from .service import AdmissionController, Dispatcher, QueryServer

    try:
        corpus, closer = _open_service_corpus(args)
    except StoreError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    try:
        dispatcher = Dispatcher(
            corpus,
            admission=AdmissionController(
                max_inflight=args.max_inflight,
                quota_steps=args.quota_steps or None,
                window_seconds=args.quota_window,
            ),
            workers=args.workers,
            default_timeout_ms=args.timeout_ms or None,
            allow_faults=args.allow_faults,
            result_cache=args.result_cache,
        )
        server = QueryServer(dispatcher, host=args.host, port=args.port)
        server.start_in_thread()
        host, port = server.address
        print(f"serving {dispatcher._tree_count()} trees on {host}:{port}")
        try:
            while server._thread.is_alive():
                server._thread.join(timeout=0.5)
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            server.stop()
    finally:
        closer()
    return 0


def _cmd_repl(args: argparse.Namespace) -> int:
    from .service import run_repl

    if args.connect:
        from .service import ServiceClient

        host, _, port = args.connect.rpartition(":")
        try:
            client = ServiceClient(host or "127.0.0.1", int(port))
        except (OSError, ValueError) as exc:
            print(f"repl: cannot connect to {args.connect}: {exc}",
                  file=sys.stderr)
            return 2
        with client:
            return run_repl(client.request_raw)
    from .corpus import StoreError
    from .service import Dispatcher

    try:
        corpus, closer = _open_service_corpus(args)
    except StoreError as exc:
        print(f"repl: {exc}", file=sys.stderr)
        return 2
    try:
        dispatcher = Dispatcher(corpus, workers=args.workers)
        session = dispatcher.open_session()
        return run_repl(lambda request: dispatcher.handle(request, session))
    finally:
        closer()


def _cmd_oracle(args: argparse.Namespace) -> int:
    from .oracle.cli import main as oracle_main

    return oracle_main(args.oracle_args)


def _cmd_resilience(args: argparse.Namespace) -> int:
    from .resilience.cli import main as resilience_main

    return resilience_main(args.resilience_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tree-walking automata toolbox (Neven, PODS 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="document vitals")
    p_info.add_argument("file")
    p_info.set_defaults(func=_cmd_info)

    p_query = sub.add_parser("query", help="XPath / FO queries")
    p_query.add_argument("file")
    group = p_query.add_mutually_exclusive_group(required=True)
    group.add_argument("--xpath", help="XPath expression (§2.3 fragment)")
    group.add_argument("--ask", help="FO sentence, e.g. 'exists x O_item(x)'")
    group.add_argument("--select", help="binary FO(∃*) query over x, y")
    p_query.set_defaults(func=_cmd_query)

    p_run = sub.add_parser("run", help="run a tree-walking automaton")
    p_run.add_argument("file", nargs="?")
    p_run.add_argument("automaton", nargs="?")
    p_run.add_argument("--list", action="store_true")
    p_run.add_argument("--automaton-file",
                       help="load the automaton from a .tw file instead")
    p_run.add_argument("--delim", action="store_true",
                       help="run the file automaton on delim(t)")
    p_run.set_defaults(func=_cmd_run)

    p_tr = sub.add_parser("transform", help="apply a stock transducer")
    p_tr.add_argument("file", nargs="?")
    p_tr.add_argument("transducer", nargs="?")
    p_tr.add_argument("--list", action="store_true")
    p_tr.set_defaults(func=_cmd_transform)

    p_proto = sub.add_parser("protocol", help="play the Lemma 4.5 protocol")
    p_proto.add_argument("program", nargs="?")
    p_proto.add_argument("f", nargs="?", help="comma-separated left values")
    p_proto.add_argument("g", nargs="?", help="comma-separated right values")
    p_proto.add_argument("--list", action="store_true")
    p_proto.add_argument("--program-file",
                         help="load the program from a .tw file instead")
    p_proto.set_defaults(func=_cmd_protocol)

    p_corpus = sub.add_parser(
        "corpus", help="batch queries over many documents set-at-a-time"
    )
    p_corpus.add_argument("files", nargs="*", metavar="FILE")
    p_corpus.add_argument("--store", metavar="DIR", default=None,
                          help="disk-backed corpus store directory")
    p_corpus.add_argument("--compact", action="store_true",
                          help="repack under-full store segments (and "
                               "their index sidecars) under a "
                               "generation bump")
    p_corpus.add_argument("--ingest", action="append", default=[],
                          metavar="FILE",
                          help="stream a file of concatenated documents "
                               "into --store (repeatable)")
    p_corpus.add_argument("--xpath", action="append", default=[],
                          metavar="EXPR", help="XPath expression (repeatable)")
    p_corpus.add_argument("--ask", action="append", default=[],
                          metavar="SENTENCE", help="FO sentence (repeatable)")
    p_corpus.add_argument("--select", action="append", default=[],
                          metavar="QUERY",
                          help="binary FO(∃*) query over x, y (repeatable)")
    p_corpus.add_argument("--caterpillar", action="append", default=[],
                          metavar="EXPR",
                          help="caterpillar expression (repeatable)")
    p_corpus.add_argument("--workers", type=int, default=0,
                          help="worker processes (0 = serial)")
    p_corpus.add_argument("--chunk-size", type=int, default=None,
                          help="trees per chunk")
    p_corpus.add_argument("--engine",
                          choices=("fast", "reference", "auto", "vectorized"),
                          default="fast")
    p_corpus.add_argument("--stats", action="store_true",
                          help="print the per-chunk execution report")
    p_corpus.set_defaults(func=_cmd_corpus)

    p_serve = sub.add_parser(
        "serve", help="serve the corpus over TCP (JSON protocol)"
    )
    p_serve.add_argument("files", nargs="*", metavar="FILE")
    p_serve.add_argument("--store", metavar="DIR", default=None,
                         help="serve a corpus store (opened read-only)")
    p_serve.add_argument("--random", type=int, default=None, metavar="N",
                         help="serve N synthetic trees instead of files")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7267,
                         help="TCP port (0 = pick a free one)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="worker processes per batch (0 = in-thread)")
    p_serve.add_argument("--max-inflight", type=int, default=8,
                         help="concurrent queries before OVERLOADED")
    p_serve.add_argument("--quota-steps", type=int, default=2_000_000,
                         help="per-session budget steps per window "
                              "(0 = unlimited)")
    p_serve.add_argument("--quota-window", type=float, default=1.0,
                         help="quota refill window in seconds")
    p_serve.add_argument("--timeout-ms", type=int, default=10_000,
                         help="default per-query deadline (0 = none)")
    p_serve.add_argument("--result-cache", type=int, default=128,
                         metavar="N",
                         help="cache up to N window results per corpus "
                              "generation (0 disables; default 128)")
    p_serve.add_argument("--allow-faults", action="store_true",
                         help="accept fault-injection requests (chaos "
                              "testing only)")
    p_serve.set_defaults(func=_cmd_serve)

    p_repl = sub.add_parser(
        "repl", help="interactive query REPL (local or remote)"
    )
    p_repl.add_argument("files", nargs="*", metavar="FILE")
    p_repl.add_argument("--store", metavar="DIR", default=None,
                        help="query a corpus store (opened read-only)")
    p_repl.add_argument("--random", type=int, default=None, metavar="N",
                        help="query N synthetic trees instead of files")
    p_repl.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="talk to a running repro serve instead")
    p_repl.add_argument("--workers", type=int, default=0,
                        help="worker processes per batch (local mode)")
    p_repl.set_defaults(func=_cmd_repl)

    p_oracle = sub.add_parser(
        "oracle",
        help="differential fuzzing across the query engines",
        add_help=False,
    )
    p_oracle.add_argument("oracle_args", nargs="*",
                          help="arguments for python -m repro.oracle")
    p_oracle.set_defaults(func=_cmd_oracle)

    p_res = sub.add_parser(
        "resilience",
        help="fault-injection campaigns over the resilient executor",
        add_help=False,
    )
    p_res.add_argument("resilience_args", nargs="*",
                       help="arguments for python -m repro.resilience")
    p_res.set_defaults(func=_cmd_resilience)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "oracle":
        # Forward verbatim: the oracle owns its own flags, and argparse
        # (3.13+) refuses REMAINDER args that start with an option.
        return _cmd_oracle(argparse.Namespace(oracle_args=argv[1:]))
    if argv and argv[0] == "resilience":
        return _cmd_resilience(argparse.Namespace(resilience_args=argv[1:]))
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
