"""AST for the paper's XPath fragment (Section 2.3).

The grammar (unions, root anchor, child ``/``, descendant ``//``,
filters ``[…]``, element tests and the wildcard) is taken from the
paper; the published figure is partly garbled, so the dialect is fixed
as follows — chosen so that the paper's worked example compiles to
exactly the FO(∃*) formula printed there:

* a path is a chain of *node tests* (σ, ``*`` or ``.``) connected by
  ``/`` (child) or ``//`` (proper descendant);
* a **relative** path's first test applies to the context node itself
  (the paper's example maps the leading ``a`` to ``O_a(x)`` with x the
  current position);
* ``/p`` anchors the first test at the root;
* a filter ``[p]`` holds at a node y iff ``p`` selects at least one
  node from context y, where ``p`` gets an **implicit leading child
  axis** unless it starts with ``.``, ``/`` or ``//`` (XPath 1.0
  relative-location-path behaviour; the example maps the filter
  ``[d]`` to ``∃y₃ E(y, y₃) ∧ O_d(y₃)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


@dataclass(frozen=True)
class NameTest:
    """Element test σ: matches nodes labelled σ."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Wildcard:
    """``*``: matches any node."""

    def __repr__(self) -> str:
        return "*"


@dataclass(frozen=True)
class SelfTest:
    """``.``: the context node itself."""

    def __repr__(self) -> str:
        return "."


NodeTest = Union[NameTest, Wildcard, SelfTest]


@dataclass(frozen=True)
class Step:
    """One path step: a node test plus its filters."""

    test: NodeTest
    filters: Tuple["Path", ...] = ()

    def __repr__(self) -> str:
        return repr(self.test) + "".join(f"[{f!r}]" for f in self.filters)


#: Axis connecting consecutive steps.
CHILD = "child"
DESCENDANT = "descendant"


@dataclass(frozen=True)
class Path:
    """A chain of steps.

    ``axes[i]`` connects ``steps[i]`` to ``steps[i+1]`` and is
    :data:`CHILD` or :data:`DESCENDANT`.  ``absolute`` anchors the
    first step at the root.
    """

    steps: Tuple[Step, ...]
    axes: Tuple[str, ...]
    absolute: bool = False

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a path needs at least one step")
        if len(self.axes) != len(self.steps) - 1:
            raise ValueError(
                f"{len(self.steps)} steps need {len(self.steps) - 1} axes, "
                f"got {len(self.axes)}"
            )
        for axis in self.axes:
            if axis not in (CHILD, DESCENDANT):
                raise ValueError(f"unknown axis {axis!r}")

    def __repr__(self) -> str:
        out = "/" if self.absolute else ""
        out += repr(self.steps[0])
        for axis, step in zip(self.axes, self.steps[1:]):
            out += "/" if axis == CHILD else "//"
            out += repr(step)
        return out


@dataclass(frozen=True)
class Union_:
    """``p₁ | p₂`` — set union of the selected nodes."""

    alternatives: Tuple["Expr", ...]

    def __post_init__(self) -> None:
        if len(self.alternatives) < 2:
            raise ValueError("a union needs >= 2 alternatives")

    def __repr__(self) -> str:
        return " | ".join(repr(a) for a in self.alternatives)


Expr = Union[Path, Union_]
