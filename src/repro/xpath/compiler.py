"""Compile the XPath fragment into binary FO(∃*) queries (§2.3).

"Clearly, XPath defined as such can be simulated by FO(∃*)" — this
module is that simulation, made executable.  The paper's worked example
``a//b[.//c][d]`` compiles to

    φ(x, y) = ∃y₂ ∃y₃ (x ≺ y ∧ y ≺ y₂ ∧ E(y, y₃)
                        ∧ O_a(x) ∧ O_b(y) ∧ O_c(y₂) ∧ O_d(y₃))

exactly as printed in Section 2.3 (modulo variable names).  Union
compiles to a disjunction under a single shared ∃-prefix, which stays
inside the prenex-existential fragment.
"""

from __future__ import annotations

from typing import List

from ..logic import tree_fo
from ..logic.exists_star import ExistsStarQuery, X, Y
from ..logic.tree_fo import NVar, TreeFormula
from .ast import (
    CHILD,
    Expr,
    NameTest,
    NodeTest,
    Path,
    SelfTest,
    Step,
    Union_,
    Wildcard,
)


class _VarSupply:
    """Fresh existential variables y₂, y₃, … (x and y are reserved)."""

    def __init__(self) -> None:
        self._next = 2
        self.allocated: List[NVar] = []

    def fresh(self) -> NVar:
        var = NVar(f"y{self._next}")
        self._next += 1
        self.allocated.append(var)
        return var


def _test_atom(test: NodeTest, var: NVar) -> List[TreeFormula]:
    if isinstance(test, NameTest):
        return [tree_fo.Label(test.name, var)]
    return []  # wildcard / self: no constraint


def _axis_atom(axis: str, source: NVar, target: NVar) -> TreeFormula:
    if axis == CHILD:
        return tree_fo.Edge(source, target)
    return tree_fo.Desc(source, target)


def _compile_filters(
    step: Step, var: NVar, supply: _VarSupply, atoms: List[TreeFormula]
) -> None:
    for filt in step.filters:
        _compile_path(filt, var, None, supply, atoms, in_filter=True)


def _compile_path(
    path: Path,
    context_var: NVar,
    result_var: "NVar | None",
    supply: _VarSupply,
    atoms: List[TreeFormula],
    in_filter: bool,
) -> None:
    """Append atoms expressing ``(context_var, result_var) ∈ ⟦path⟧``.

    With ``result_var=None`` (filters) the final node is an anonymous
    fresh variable — the filter's ∃-witness.
    """
    first = path.steps[0]
    single = len(path.steps) == 1

    def var_for_step(is_last: bool) -> NVar:
        if is_last and result_var is not None:
            return result_var
        return supply.fresh()

    if path.absolute:
        current = var_for_step(single)
        atoms.append(tree_fo.Root(current))
    elif isinstance(first.test, SelfTest):
        current = context_var
        if single and result_var is not None:
            atoms.append(tree_fo.NodeEq(result_var, context_var))
            current = context_var
    elif in_filter:
        current = var_for_step(single)
        atoms.append(tree_fo.Edge(context_var, current))  # implicit child axis
    else:
        current = context_var
        if single and result_var is not None and result_var != context_var:
            atoms.append(tree_fo.NodeEq(result_var, context_var))

    atoms.extend(_test_atom(first.test, current))
    _compile_filters(first, current, supply, atoms)

    remaining = len(path.steps) - 1
    for axis, step in zip(path.axes, path.steps[1:]):
        remaining -= 1
        target = var_for_step(remaining == 0)
        atoms.append(_axis_atom(axis, current, target))
        atoms.extend(_test_atom(step.test, target))
        _compile_filters(step, target, supply, atoms)
        current = target


def compile_xpath(expr: Expr) -> ExistsStarQuery:
    """Compile an expression into a binary FO(∃*) query φ(x, y)."""
    supply = _VarSupply()
    if isinstance(expr, Union_):
        disjuncts: List[TreeFormula] = []
        for alt in expr.alternatives:
            atoms: List[TreeFormula] = []
            _compile_path(alt, X, Y, supply, atoms, in_filter=False)
            disjuncts.append(tree_fo.conj(*atoms))
        body: TreeFormula = tree_fo.disj(*disjuncts)
    else:
        atoms = []
        _compile_path(expr, X, Y, supply, atoms, in_filter=False)
        body = tree_fo.conj(*atoms)
    formula = tree_fo.exists(supply.allocated, body)
    return ExistsStarQuery(formula, X, Y)
