"""Recursive-descent parser for the XPath fragment."""

from __future__ import annotations

from typing import List, Tuple

from ..resilience.errors import ParseError
from .ast import (
    CHILD,
    DESCENDANT,
    Expr,
    NameTest,
    Path,
    SelfTest,
    Step,
    Union_,
    Wildcard,
)


class XPathSyntaxError(ParseError):
    """Raised on malformed XPath input, with position info."""

    def __init__(self, message: str, text: str, pos: int) -> None:
        super().__init__(f"{message} at {pos}: ...{text[pos:pos + 20]!r}")
        self.pos = pos


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.text[i] if i < len(self.text) else ""

    def take(self, text: str) -> bool:
        self.skip_ws()
        if self.text.startswith(text, self.pos):
            self.pos += len(text)
            return True
        return False

    def name(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-σδ▽▷◁△#"
        ):
            self.pos += 1
        if self.pos == start:
            raise XPathSyntaxError("expected a name", self.text, self.pos)
        return self.text[start : self.pos]


def _parse_step(sc: _Scanner) -> Step:
    sc.skip_ws()
    ch = sc.peek()
    if ch == "*":
        sc.take("*")
        test = Wildcard()
    elif ch == "." and sc.peek(1) != "/":
        sc.take(".")
        test = SelfTest()
    elif ch == ".":
        sc.take(".")
        test = SelfTest()
    else:
        test = NameTest(sc.name())
    filters: List[Path] = []
    while True:
        sc.skip_ws()
        if not sc.take("["):
            break
        inner = _parse_expr(sc)
        if isinstance(inner, Union_):
            raise XPathSyntaxError(
                "union inside a filter is not in the fragment", sc.text, sc.pos
            )
        if not sc.take("]"):
            raise XPathSyntaxError("expected ']'", sc.text, sc.pos)
        filters.append(inner)
    return Step(test, tuple(filters))


def _parse_path(sc: _Scanner) -> Path:
    sc.skip_ws()
    absolute = False
    leading_descendant = False
    if sc.take("//"):
        absolute = True
        leading_descendant = True
    elif sc.take("/"):
        absolute = True
    steps = [_parse_step(sc)]
    axes: List[str] = []
    if leading_descendant:
        # ``//σ`` ≡ ``/*//σ`` — anchor a wildcard at the root, then descend.
        steps.insert(0, Step(Wildcard()))
        axes.append(DESCENDANT)
    while True:
        sc.skip_ws()
        if sc.take("//"):
            axes.append(DESCENDANT)
        elif sc.peek() == "/" and sc.peek(1) != "/":
            sc.take("/")
            axes.append(CHILD)
        else:
            break
        steps.append(_parse_step(sc))
    return Path(tuple(steps), tuple(axes), absolute)


def _parse_expr(sc: _Scanner) -> Expr:
    first = _parse_path(sc)
    alternatives = [first]
    while True:
        sc.skip_ws()
        if not sc.take("|"):
            break
        alternatives.append(_parse_path(sc))
    if len(alternatives) == 1:
        return first
    return Union_(tuple(alternatives))


def parse_xpath(text: str) -> Expr:
    """Parse an expression of the fragment; raises on trailing input."""
    sc = _Scanner(text)
    expr = _parse_expr(sc)
    sc.skip_ws()
    if sc.pos != len(sc.text):
        raise XPathSyntaxError("trailing input", sc.text, sc.pos)
    return expr
