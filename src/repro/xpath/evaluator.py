"""Direct set-based evaluator for the XPath fragment.

This is the reference semantics; :mod:`repro.xpath.compiler` must agree
with it (the E11 experiment checks the agreement on random documents
and queries, validating the paper's claim that the fragment can be
simulated by FO(∃*))."""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set, Tuple

from ..resilience.budget import current_context
from ..trees.node import NodeId
from ..trees.tree import Tree
from .ast import (
    CHILD,
    Expr,
    NameTest,
    NodeTest,
    Path,
    SelfTest,
    Step,
    Union_,
    Wildcard,
)


def _test_matches(test: NodeTest, tree: Tree, node: NodeId) -> bool:
    if isinstance(test, NameTest):
        return tree.label(node) == test.name
    return True  # Wildcard and (non-leading) SelfTest match any node.


def _axis_targets(axis: str, tree: Tree, node: NodeId) -> Iterable[NodeId]:
    if axis == CHILD:
        return tree.children(node)
    # Proper descendants: the subtree is a contiguous slice of the
    # document order, so no descendant test against every node.
    return tree.descendants(node)


def _passes_filters(step: Step, tree: Tree, node: NodeId) -> bool:
    return all(
        bool(_eval_path(f, tree, node, in_filter=True)) for f in step.filters
    )


def _seed(path: Path, tree: Tree, context: NodeId, in_filter: bool) -> Set[NodeId]:
    first = path.steps[0]
    if path.absolute:
        candidates: Iterable[NodeId] = ((),)
    elif isinstance(first.test, SelfTest):
        candidates = (context,)
    elif in_filter:
        candidates = tree.children(context)  # the implicit child axis
    else:
        candidates = (context,)  # relative: first test applies to context
    return {
        u
        for u in candidates
        if _test_matches(first.test, tree, u) and _passes_filters(first, tree, u)
    }


def _eval_path(
    path: Path, tree: Tree, context: NodeId, in_filter: bool = False
) -> FrozenSet[NodeId]:
    current = _seed(path, tree, context, in_filter)
    budget_context = current_context()
    for axis, step in zip(path.axes, path.steps[1:]):
        following: Set[NodeId] = set()
        for node in current:
            # Cooperative budget checkpoint: one unit per source node
            # per step, the reference evaluator's unit of work.
            if budget_context is not None:
                budget_context.checkpoint()
            for target in _axis_targets(axis, tree, node):
                if _test_matches(step.test, tree, target) and _passes_filters(
                    step, tree, target
                ):
                    following.add(target)
        current = following
        if not current:
            break
    return frozenset(current)


def select(expr: Expr, tree: Tree, context: NodeId = ()) -> Tuple[NodeId, ...]:
    """Nodes selected by ``expr`` from ``context``, in document order."""
    tree.require(context)
    if isinstance(expr, Union_):
        out: Set[NodeId] = set()
        for alt in expr.alternatives:
            out |= _eval_path(alt, tree, context)
    else:
        out = set(_eval_path(expr, tree, context))
    return tuple(sorted(out, key=tree.document_index))
