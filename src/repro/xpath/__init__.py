"""The paper's XPath fragment (§2.3): parser, evaluator, FO(∃*) compiler.

>>> from repro.trees import parse_term
>>> from repro.xpath import parse_xpath, select, compile_xpath
>>> t = parse_term("a(b(c), b(d))")
>>> expr = parse_xpath("a//b[d]")
>>> select(expr, t, ())
((1,),)
>>> query = compile_xpath(expr)           # the FO(∃*) abstraction
>>> query.select(t, ())
((1,),)
"""

from .ast import (
    CHILD,
    DESCENDANT,
    Expr,
    NameTest,
    NodeTest,
    Path,
    SelfTest,
    Step,
    Union_,
    Wildcard,
)
from .parser import XPathSyntaxError, parse_xpath
from .evaluator import select
from .compiler import compile_xpath

__all__ = [
    "CHILD",
    "DESCENDANT",
    "Expr",
    "NameTest",
    "NodeTest",
    "Path",
    "SelfTest",
    "Step",
    "Union_",
    "Wildcard",
    "XPathSyntaxError",
    "parse_xpath",
    "select",
    "compile_xpath",
]
