"""The engine performance trajectory: reference vs. indexed engines.

``python -m repro.bench`` times the assignment-at-a-time reference
evaluators (:mod:`repro.logic.tree_fo`, :mod:`repro.xpath.evaluator`)
against the indexed set-at-a-time engines (:mod:`repro.engine`) and
writes the measured trajectory to ``BENCH_engine.json``:

* **FO** — 3-variable formulas evaluated as full satisfying-assignment
  relations.  The reference walks the n^k assignment space; the engine
  compiles each subformula to a relation once.
* **XPath** — descendant-heavy expressions on deep documents.  The
  reference re-walks one subtree per frontier node; the engine merges
  subtree *intervals* with O(1) big-int range operations.

``python -m repro.bench --suite walk`` times the walking engines
instead and writes ``BENCH_walk.json``:

* **caterpillar** — full walk relations.  The reference runs the
  caterpillar NFA once per context node (~O(|expr|·n) each); the
  compiled engine answers all n contexts with one product-graph BFS
  over stacked frontier bitsets (:mod:`repro.engine.walk`).
* **twa** — guard-free deterministic tree-walking runs.  The
  reference interpreter re-derives the applicable rule at every
  step; the fast path replays a memoised per-(state, label,
  position) plan over dense preorder ids.

Every timed case is also checked for agreement between the two
engines, so a bench run doubles as a differential sweep.  All trees
are seeded: same seed, same JSON (modulo timings).

``python -m repro.bench --suite corpus`` times set-at-a-time batch
execution over a :class:`~repro.corpus.TreeCorpus` and writes
``BENCH_corpus.json``:

* **naive** — the status-quo loop: one facade call per (query, tree),
  a fresh :class:`~repro.queries.facade.TreeDatabase` each time, plan
  cache cold at the start of every sweep.  With more trees than the
  index LRU holds, the query-outer order rebuilds every index on
  every query.
* **serial cold / warm** — one batch through the corpus executor,
  with every process-wide cache emptied first (cold) or primed
  (warm).
* **workers 2/4/8** — the same batch fanned out over persistent
  routed worker pools that keep trees, indexes and plans warm
  between batches.

``python -m repro.bench --suite planner`` times ``engine="auto"``
against both manual engine choices per query and writes
``BENCH_planner.json``: the planner's chosen plan, its estimated vs
actual result cardinalities, re-plan counts, and how close auto comes
to the best manual pick per (query, size) cell.

``python -m repro.bench --check [files...]`` re-reads committed
``BENCH_*.json`` trajectories and fails if any reports a median
speedup below 1.0 — the "the engine never lost ground" ratchet.  The
planner trajectory is additionally held to its pick-rate and overhead
gates, and every trajectory must report zero per-case errors.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .automata.examples import even_leaves_automaton
from .automata.runner import run as run_automaton
from .caterpillar import nfa as reference_walk
from .caterpillar.parser import parse_caterpillar
from .corpus import (
    TreeCorpus,
    ask_query,
    caterpillar_query,
    caterpillar_relation_query,
    select_query,
    xpath_query,
)
from .engine import fo as fast_fo
from .engine import walk as fast_walk
from .engine import xpath as fast_xpath
from .engine.index import index_cache_clear
from .engine.planner import default_planner
from .engine.plans import plan_cache_clear
from .logic import tree_fo
from .logic.parser import parse_formula
from .queries.facade import TreeDatabase
from .trees import random_tree
from .xpath.evaluator import select as reference_xpath_select
from .xpath.parser import parse_xpath

SCHEMA = "repro-bench-engine/1"
DEFAULT_OUTPUT = "BENCH_engine.json"
WALK_SCHEMA = "repro-bench-walk/1"
WALK_DEFAULT_OUTPUT = "BENCH_walk.json"
CORPUS_SCHEMA = "repro-bench-corpus/1"
CORPUS_DEFAULT_OUTPUT = "BENCH_corpus.json"
PLANNER_SCHEMA = "repro-bench-planner/1"
PLANNER_DEFAULT_OUTPUT = "BENCH_planner.json"
KERNEL_SCHEMA = "repro-bench-kernel/1"
KERNEL_DEFAULT_OUTPUT = "BENCH_kernel.json"
STORE_SCHEMA = "repro-bench-store/1"
STORE_DEFAULT_OUTPUT = "BENCH_store.json"
SERVE_SCHEMA = "repro-bench-serve/1"
SERVE_DEFAULT_OUTPUT = "BENCH_serve.json"
COLDPATH_SCHEMA = "repro-bench-coldpath/1"
COLDPATH_DEFAULT_OUTPUT = "BENCH_coldpath.json"

#: 3-variable selectors (free x) timed as full satisfying-assignment
#: relations.  The first three make the reference pay the n^3 walk;
#: the last two early-exit well and are kept as honest counterpoints.
FO_FORMULAS = {
    "leaf-chain": "exists y (exists z ((x << y & y << z) & leaf(z)))",
    "value-homogeneous":
        "forall y (forall z ((x << y & y << z) -> val_a(y) = val_a(z)))",
    "value-chain":
        "exists y (exists z ((x << y & y << z) & val_a(y) = val_a(z)))",
    "leaves-matched":
        "forall y ((x << y & leaf(y)) -> "
        "exists z (E(z, y) & val_a(z) = val_a(y)))",
    "uniform-children":
        "exists y (E(x, y) & forall z (E(y, z) -> val_a(z) = val_a(x)))",
}

#: Descendant-heavy expressions evaluated from the root.
XPATH_EXPRESSIONS = [
    "//*//*",
    "//*//*//*",
    "//σ//δ//*",
    "//δ//σ//δ",
    "//σ[.//δ]//σ",
]

#: Closure-heavy caterpillar walks: the regime the compiled product
#: graph targets.  The Kleene stars keep the per-context reference NFA
#: exploring most of the tree from every start node, while the stacked
#: engine saturates all n frontiers in one BFS.  Two lighter walks
#: (a guarded descendant chase and the next-leaf caterpillar) stay in
#: as honest counterpoints.
CATERPILLAR_EXPRESSIONS = {
    "reach-sigma": "(up | down | left | right)* <σ>",
    "reach-sigma-leaf": "(up | down | left | right)* (<σ> isLeaf)",
    "zigzag-delta": "((up | left)* (down | right)*)* <δ>",
    "sigma-desc-leaf": "(down | right)* <σ> (down | right)* isLeaf",
    "leaf-next-leaf":
        "isLeaf (up isLast)* (up right | right) (down isFirst)* isLeaf",
}

#: Guard-free deterministic TWAs eligible for the memoised fast path.
TWA_AUTOMATA = {
    "even-leaves": even_leaves_automaton,
}

#: A mixed batch across every query kind the corpus executes — the
#: workload a user would otherwise run as a per-tree, per-query loop.
CORPUS_QUERIES = (
    xpath_query("//δ"),
    xpath_query("//σ//δ"),
    xpath_query("//σ[.//δ]//σ"),
    ask_query("exists x O_σ(x)"),
    ask_query("forall x (leaf(x) -> O_δ(x))"),
    ask_query("exists x exists y (x << y & O_σ(x) & O_δ(y))"),
    select_query("x << y & O_δ(y)"),
    caterpillar_query("down*"),
    caterpillar_query("(down | right)* <δ>"),
    caterpillar_relation_query("down <σ>"),
)

FO_SIZES = (25, 50, 100, 200)
XPATH_SIZES = (100, 250, 500, 1000)
CATERPILLAR_SIZES = (100, 250, 500)
TWA_SIZES = (100, 250, 500)
CORPUS_TREE_COUNTS = (40, 80, 160)
PLANNER_SIZES = (100, 250, 500)
FO_SIZES_QUICK = (8, 16)
XPATH_SIZES_QUICK = (40, 80)
CATERPILLAR_SIZES_QUICK = (20, 40)
TWA_SIZES_QUICK = (20, 40)
CORPUS_TREE_COUNTS_QUICK = (8, 16)
PLANNER_SIZES_QUICK = (12, 24)

#: Corpus trees cycle through sizes up to this bound; past the 64-entry
#: index LRU the naive query-outer loop rebuilds indexes constantly.
CORPUS_MAX_TREE_SIZE = 48
CORPUS_WORKER_COUNTS = (2, 4, 8)

#: Low fan-out makes documents deep — the descendant-heavy regime.
MAX_CHILDREN = 2
VALUE_POOL = (1, 2, 3)

FO_THRESHOLD = 10.0
XPATH_THRESHOLD = 5.0
CATERPILLAR_THRESHOLD = 10.0
TWA_THRESHOLD = 5.0
CORPUS_BATCH_THRESHOLD = 2.5
CORPUS_WARM_THRESHOLD = 1.0
#: The stacked shard pass must at least halve the warm per-tree batch
#: time at the top corpus size — the whole point of lowering every
#: dialect into one IR is interpreting each plan once per *chunk*
#: instead of once per tree.
KERNEL_THRESHOLD = 2.0
#: ``engine="auto"`` must pick the measured-fastest engine on at least
#: this fraction of planner-bench cells...
PLANNER_PICK_THRESHOLD = 0.8
#: ...and the median ``auto``/best-manual time ratio at the top size
#: must stay below this factor (the worst cell is recorded but not
#: gated — a single sub-100µs cell can swing several-fold on noise).
PLANNER_OVERHEAD_THRESHOLD = 1.1
#: A chosen engine within this factor of the measured best counts as
#: having picked the fastest — sub-millisecond cells tie up to noise.
PLANNER_TIE_TOLERANCE = 1.25

#: Disk-store sweep (``--suite store``): corpus sizes a decade apart —
#: the flat-latency claim is about what happens when the corpus grows
#: 10x under a fixed query window.
STORE_TREE_COUNTS = (10_000, 100_000)
STORE_TREE_COUNTS_QUICK = (300, 3_000)  # both cover the query window
#: The fixed window of trees every batch queries, whatever the store
#: size — mmap-lazy loading means the rest of the corpus never costs.
STORE_WINDOW = 256
#: Single-subtree repair is measured on trees of these node counts.
STORE_REPAIR_SIZES = (10_000, 20_000)
STORE_REPAIR_SIZES_QUICK = (1_500,)
STORE_REPAIR_EDITS = 12
#: Edited subtrees stay below this many nodes — the "fix one record"
#: workload incremental repair exists for (and the *hard* case: the
#: prefix/suffix splice work is maximal when the site is small).
STORE_REPAIR_SITE_LIMIT = 64

#: Warm fixed-window batch latency may grow at most this factor as the
#: corpus grows 10x.
STORE_FLAT_THRESHOLD = 1.3
#: Peak ingest RSS may grow at most this factor over the same decade —
#: streaming ingest is sublinear in the corpus, or it is broken.
STORE_RSS_THRESHOLD = 3.0
#: Incremental index repair must beat a fresh build by at least this
#: factor (median over single-subtree edits) at n >= 10k nodes.
STORE_REPAIR_THRESHOLD = 5.0

#: One query per kind — the batch the store suite replays per window.
STORE_QUERIES = (
    xpath_query("//σ//δ"),
    ask_query("exists x exists y (x << y & O_σ(x) & O_δ(y))"),
    select_query("x << y & O_δ(y)"),
    caterpillar_query("(down | right)* <δ>"),
    caterpillar_relation_query("down <σ>"),
)

#: Serve sweep (``--suite serve``): a closed-loop load model.  Each
#: client thread sends one query over a small tree window, then
#: "thinks" for :data:`SERVE_THINK_SECONDS` before the next — think
#: time (and socket turnaround) is genuinely idle, so concurrency can
#: overlap it even on the single-core runners this repo targets; the
#: throughput gate measures exactly that overlap, not CPU parallelism.
SERVE_CLIENT_COUNTS = (1, 8, 32)
SERVE_TREE_COUNT = 48
SERVE_TREE_COUNT_QUICK = 12
SERVE_MAX_TREE_SIZE = 48
SERVE_WINDOW = 6
SERVE_DURATION = 2.0
SERVE_DURATION_QUICK = 0.5
SERVE_THINK_SECONDS = 0.008
#: In the chaos round every this-many-th request carries an injected
#: engine fault — the chunk must degrade to the reference, not error.
SERVE_FAULT_EVERY = 4
#: Aggregate throughput at 8 clients must be at least this multiple of
#: the single-client throughput (full-size sweep only).
SERVE_SCALE_THRESHOLD = 2.0
#: p99 latency under the chaos round may be at most this multiple of
#: the fault-free p99 at the same concurrency.
SERVE_FAULT_P99_THRESHOLD = 10.0
#: The one query every serve client replays — its truth table over the
#: whole corpus is precomputed once and every response checked.
SERVE_QUERY = xpath_query("//σ//δ")

#: Cold-path sweep (``--suite coldpath``): the zero-rebuild claim.
#: A cold vectorized window is timed twice in fresh child processes —
#: once reading :class:`~repro.engine.index.PackedIndex` lanes straight
#: from the ``.rpridx`` sidecars, once with sidecars disabled so every
#: tree is unpickled and its :class:`~repro.engine.index.TreeIndex`
#: rebuilt — then a dispatcher replays the same windows against the
#: generation-keyed result cache.
COLDPATH_TREE_COUNTS = (10_000, 100_000)
COLDPATH_TREE_COUNTS_QUICK = (300, 3_000)
#: Every cold round answers this fixed window from tree 0.
COLDPATH_WINDOW = 256
#: Document-sized trees — ``24 + (i * 13) % 41`` nodes — rather than
#: the store sweep's tiny ones: the cold path's whole point is the
#: per-tree index work, and 4-node trees bury it in fixed overhead.
COLDPATH_TREE_SIZES = (24, 13, 41)
#: Cold sidecar window must beat the rebuild-from-pickle window by
#: this much at the full 100k size.
COLDPATH_SIDECAR_THRESHOLD = 3.0
#: Cached window replay (p50) must beat the first, uncached answer of
#: the same window by this much at the full size.
COLDPATH_CACHE_THRESHOLD = 5.0
#: Distinct windows the cache round walks, and hits replayed per
#: window after its one miss.
COLDPATH_CACHE_WINDOWS = 5
COLDPATH_CACHE_HITS = 20
#: The IR-eligible subset of :data:`STORE_QUERIES` — the packed lane
#: path only engages when every query in the batch compiles to a
#: root-context IR plan, so the caterpillar kinds stay out.
COLDPATH_QUERIES = (
    xpath_query("//σ//δ"),
    ask_query("exists x exists y (x << y & O_σ(x) & O_δ(y))"),
    select_query("x << y & O_δ(y)"),
)

#: ``--check`` floor: no committed trajectory may report a median
#: speedup below this — the engine must never lose to the reference.
CHECK_FLOOR = 1.0


def _document(size: int, seed: int):
    return random_tree(
        size,
        value_pool=VALUE_POOL,
        max_children=MAX_CHILDREN,
        seed=seed,
    )


def _timed(thunk: Callable[[], object], repeats: int) -> float:
    times = []
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        thunk()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _guarded_case(errors: Optional[List[str]], label: str, body: Callable):
    """Run one benchmark case; record (rather than swallow) failures.

    Differential disagreements (``AssertionError``) always propagate —
    they mean an engine is *wrong*, and no trajectory may paper over
    that.  Any other exception used to cost the suite its whole run (or
    worse, a silently missing row); with an ``errors`` list it is
    recorded as a per-suite error surfaced in the JSON payload, where
    the test battery asserts there are none.  Without one (direct
    calls) exceptions propagate unchanged."""
    try:
        return body()
    except AssertionError:
        raise
    except Exception as exc:
        if errors is None:
            raise
        errors.append(f"{label}: {type(exc).__name__}: {exc}")
        return None


def run_fo_benchmark(
    sizes: Sequence[int],
    seed: int,
    repeats: int,
    errors: Optional[List[str]] = None,
) -> List[Dict]:
    rows = []
    for n in sizes:
        tree = _document(n, seed + n)
        for name, text in FO_FORMULAS.items():

            def case(name=name, text=text, n=n, tree=tree):
                formula = parse_formula(text)
                order = sorted(
                    tree_fo.free_variables(formula), key=lambda v: v.name
                )
                engine = fast_fo.satisfying_assignments(formula, tree, order)
                reference = tree_fo.satisfying_assignments(
                    formula, tree, order
                )
                if engine != reference:  # pragma: no cover - guard
                    raise AssertionError(
                        f"engines disagree on {name} at n={n}"
                    )
                # The engine side is sub-millisecond: median more runs.
                engine_s = _timed(
                    lambda: fast_fo.satisfying_assignments(
                        formula, tree, order
                    ),
                    max(repeats, 3),
                )
                reference_s = _timed(
                    lambda: tree_fo.satisfying_assignments(
                        formula, tree, order
                    ),
                    repeats,
                )
                return {
                    "formula": name,
                    "n": n,
                    "reference_seconds": reference_s,
                    "engine_seconds": engine_s,
                    "speedup": reference_s / engine_s,
                }

            row = _guarded_case(errors, f"fo:{name}@n={n}", case)
            if row is not None:
                rows.append(row)
    return rows


def run_xpath_benchmark(
    sizes: Sequence[int],
    seed: int,
    repeats: int,
    errors: Optional[List[str]] = None,
) -> List[Dict]:
    rows = []
    for n in sizes:
        tree = _document(n, seed + n)
        for text in XPATH_EXPRESSIONS:

            def case(text=text, n=n, tree=tree):
                expr = parse_xpath(text)
                engine = fast_xpath.select(expr, tree)
                reference = reference_xpath_select(expr, tree, ())
                if engine != reference:  # pragma: no cover - guard
                    raise AssertionError(
                        f"engines disagree on {text} at n={n}"
                    )
                runs = max(repeats, 3)
                engine_s = _timed(lambda: fast_xpath.select(expr, tree), runs)
                reference_s = _timed(
                    lambda: reference_xpath_select(expr, tree, ()), runs
                )
                return {
                    "expression": text,
                    "n": n,
                    "reference_seconds": reference_s,
                    "engine_seconds": engine_s,
                    "speedup": reference_s / engine_s,
                }

            row = _guarded_case(errors, f"xpath:{text}@n={n}", case)
            if row is not None:
                rows.append(row)
    return rows


def run_caterpillar_benchmark(
    sizes: Sequence[int],
    seed: int,
    repeats: int,
    errors: Optional[List[str]] = None,
) -> List[Dict]:
    """Full walk relations: per-context reference NFA vs one stacked BFS."""
    rows = []
    for n in sizes:
        tree = _document(n, seed + n)
        for name, text in CATERPILLAR_EXPRESSIONS.items():

            def case(name=name, text=text, n=n, tree=tree):
                expr = parse_caterpillar(text)
                engine = fast_walk.relation(expr, tree)
                reference = reference_walk.relation(expr, tree)
                if engine != reference:  # pragma: no cover - guard
                    raise AssertionError(
                        f"engines disagree on {name} at n={n}"
                    )
                engine_s = _timed(
                    lambda: fast_walk.relation(expr, tree), max(repeats, 3)
                )
                reference_s = _timed(
                    lambda: reference_walk.relation(expr, tree), repeats
                )
                return {
                    "expression": name,
                    "text": text,
                    "n": n,
                    "reference_seconds": reference_s,
                    "engine_seconds": engine_s,
                    "speedup": reference_s / engine_s,
                }

            row = _guarded_case(errors, f"caterpillar:{name}@n={n}", case)
            if row is not None:
                rows.append(row)
    return rows


def run_twa_benchmark(
    sizes: Sequence[int],
    seed: int,
    repeats: int,
    errors: Optional[List[str]] = None,
) -> List[Dict]:
    """Guard-free TWA runs: step interpreter vs memoised fast path."""
    rows = []
    for n in sizes:
        tree = _document(n, seed + n)
        for name, factory in TWA_AUTOMATA.items():

            def case(name=name, factory=factory, n=n, tree=tree):
                automaton = factory()
                reference = run_automaton(automaton, tree, engine="reference")
                fast = run_automaton(automaton, tree, engine="fast")
                if (
                    reference.accepted != fast.accepted
                    or reference.steps != fast.steps
                    or reference.reason != fast.reason
                ):  # pragma: no cover - differential guard
                    raise AssertionError(
                        f"runners disagree on {name} at n={n}"
                    )
                runs = max(repeats, 3)
                engine_s = _timed(
                    lambda: run_automaton(automaton, tree, engine="fast"),
                    runs,
                )
                reference_s = _timed(
                    lambda: run_automaton(
                        automaton, tree, engine="reference"
                    ),
                    runs,
                )
                return {
                    "automaton": name,
                    "n": n,
                    "steps": reference.steps,
                    "accepted": reference.accepted,
                    "reference_seconds": reference_s,
                    "engine_seconds": engine_s,
                    "speedup": reference_s / engine_s,
                }

            row = _guarded_case(errors, f"twa:{name}@n={n}", case)
            if row is not None:
                rows.append(row)
    return rows


def _naive_corpus_rows(trees, queries) -> tuple:
    """The status-quo loop: one facade call per (query, tree).

    Query-outer order is deliberate — it is the natural "run this
    query everywhere, then the next" shape, and with more trees than
    the index LRU holds it re-derives every tree's index per query.
    """
    grid = [[None] * len(queries) for _ in trees]
    for q, query in enumerate(queries):
        for t, tree in enumerate(trees):
            db = TreeDatabase(tree)
            if query.kind == "xpath":
                answer = db.xpath(query.text, context=query.context)
            elif query.kind == "ask":
                answer = db.ask(query.text)
            elif query.kind == "select":
                answer = db.select_where(query.text, context=query.context)
            elif query.kind == "caterpillar":
                answer = db.caterpillar(query.text, context=query.context)
            else:
                answer = tuple(sorted(db.caterpillar_relation(query.text)))
            grid[t][q] = answer
    return tuple(tuple(row) for row in grid)


def run_corpus_benchmark(
    tree_counts: Sequence[int],
    seed: int,
    repeats: int,
    errors: Optional[List[str]] = None,
) -> List[Dict]:
    """Batch execution modes over growing corpora.

    Per tree count: the naive per-call loop, one cold batch (every
    process-wide cache emptied first, index build included), one warm
    serial batch, and warmed worker fan-outs.  Every mode's answers
    are checked against the naive loop before anything is timed.
    """
    rows = []
    runs = max(repeats, 3)
    for count in tree_counts:
        block = _guarded_case(
            errors, f"corpus:{count}",
            lambda count=count: _corpus_count_rows(count, seed, runs),
        )
        if block is not None:
            rows.extend(block)
    return rows


def _corpus_count_rows(count: int, seed: int, runs: int) -> List[Dict]:
    """All benchmark modes for one corpus size — one guarded case."""
    rows: List[Dict] = []
    with TreeCorpus.random(
        count, max_size=CORPUS_MAX_TREE_SIZE, seed=seed
    ) as corpus:
        trees = corpus.trees
        expected = _naive_corpus_rows(trees, CORPUS_QUERIES)
        serial = corpus.run(CORPUS_QUERIES)
        if serial.rows != expected:  # pragma: no cover - guard
            raise AssertionError(f"batch disagrees with loop at {count}")
        for workers in CORPUS_WORKER_COUNTS:  # warm pools + check
            fanned = corpus.run(CORPUS_QUERIES, workers=workers)
            if (
                fanned.rows != expected or fanned.fell_back
            ):  # pragma: no cover - guard
                raise AssertionError(
                    f"workers={workers} batch degraded at {count}: "
                    f"{[c.error for c in fanned.chunks if c.error]}"
                )

        def naive():
            plan_cache_clear()
            _naive_corpus_rows(trees, CORPUS_QUERIES)

        def cold():
            plan_cache_clear()
            index_cache_clear()
            TreeCorpus(trees).run(CORPUS_QUERIES)

        modes = [("naive", naive), ("serial_cold", cold)]
        modes.append(
            ("serial_warm", lambda: corpus.run(CORPUS_QUERIES))
        )
        for workers in CORPUS_WORKER_COUNTS:
            modes.append(
                (
                    f"workers_{workers}",
                    lambda w=workers: corpus.run(
                        CORPUS_QUERIES, workers=w
                    ),
                )
            )
        seconds = {
            mode: _timed(thunk, runs) for mode, thunk in modes
        }
        for mode, _ in modes:
            rows.append(
                {
                    "mode": mode,
                    "n": count,
                    "nodes": corpus.total_nodes(),
                    "seconds": seconds[mode],
                    "speedup": seconds["naive"] / seconds[mode],
                }
            )
        # cold mode thrashed the shared caches; re-prime them so a
        # later tree count's warm modes stay warm.
        corpus.run(CORPUS_QUERIES)
    return rows


#: The IR-expressible slice of the mixed corpus batch: everything but
#: the all-pairs relation kind (which the stacked pass hands back to
#: the per-tree engine).
KERNEL_QUERIES = tuple(
    q for q in CORPUS_QUERIES if q.kind != "caterpillar-relation"
)


def run_kernel_benchmark(
    tree_counts: Sequence[int],
    seed: int,
    repeats: int,
    errors: Optional[List[str]] = None,
) -> List[Dict]:
    """Warm per-tree batches vs the stacked shard executor.

    Per tree count: answers of the ``"vectorized"`` and ``"auto"``
    engines are checked cell-for-cell against ``"fast"`` first, then
    each engine's *warm* batch (pinned indexes, hot plan caches) is
    timed.  Speedups are against the warm per-tree fast batch — the
    strongest baseline in the repo, not the naive loop."""
    rows = []
    runs = max(repeats, 5)
    for count in tree_counts:
        block = _guarded_case(
            errors, f"kernel:{count}",
            lambda count=count: _kernel_count_rows(count, seed, runs),
        )
        if block is not None:
            rows.extend(block)
    return rows


def _kernel_count_rows(count: int, seed: int, runs: int) -> List[Dict]:
    """All kernel-bench modes for one corpus size — one guarded case."""
    rows: List[Dict] = []
    with TreeCorpus.random(
        count, max_size=CORPUS_MAX_TREE_SIZE, seed=seed
    ) as corpus:
        expected = corpus.run(KERNEL_QUERIES, engine="fast")
        for engine in ("vectorized", "auto"):
            got = corpus.run(KERNEL_QUERIES, engine=engine)
            if got.rows != expected.rows:  # pragma: no cover - guard
                raise AssertionError(
                    f"engine={engine} disagrees with fast at {count}"
                )
        modes = [
            (mode, lambda e=engine: corpus.run(KERNEL_QUERIES, engine=e))
            for mode, engine in (
                ("per_tree", "fast"),
                ("vectorized", "vectorized"),
                ("auto", "auto"),
            )
        ]
        seconds = {mode: _timed(thunk, runs) for mode, thunk in modes}
        for mode, _ in modes:
            rows.append(
                {
                    "mode": mode,
                    "n": count,
                    "nodes": corpus.total_nodes(),
                    "queries": len(KERNEL_QUERIES),
                    "seconds": seconds[mode],
                    "speedup": seconds["per_tree"] / seconds[mode],
                }
            )
    return rows


def _facade_thunk(db: TreeDatabase, query, engine: str) -> Callable:
    """One no-argument facade call for a corpus-style query."""
    if query.kind == "xpath":
        return lambda: db.xpath(query.text, context=query.context,
                                engine=engine)
    if query.kind == "ask":
        return lambda: db.ask(query.text, engine=engine)
    if query.kind == "select":
        return lambda: db.select_where(query.text, context=query.context,
                                       engine=engine)
    if query.kind == "caterpillar":
        return lambda: db.caterpillar(query.text, context=query.context,
                                      engine=engine)
    return lambda: db.caterpillar_relation(query.text, engine=engine)


def _result_cardinality(query, answer) -> int:
    """Measured result rows, on the planner's own scale (bools are
    0/1 rows)."""
    if query.kind == "ask":
        return int(bool(answer))
    return len(answer)


def run_planner_benchmark(
    sizes: Sequence[int],
    seed: int,
    repeats: int,
    errors: Optional[List[str]] = None,
) -> List[Dict]:
    """``engine="auto"`` vs both manual engine choices, per query.

    Each cell answers the same query three ways through the facade —
    auto, fast, reference — checks the three agree, and records the
    planner's decision next to the measured truth: which engine was
    actually fastest, how far auto landed from it, and how far the
    estimated cardinality landed from the actual one (as the q-error
    ``max(est/act, act/est)`` on +1-smoothed counts)."""
    rows = []
    planner = default_planner()
    runs = max(repeats, 7)
    for n in sizes:
        tree = _document(n, seed + n)
        db = TreeDatabase(tree)
        for query in CORPUS_QUERIES:

            def case(query=query, n=n, db=db):
                auto = _facade_thunk(db, query, "auto")
                fast = _facade_thunk(db, query, "fast")
                reference = _facade_thunk(db, query, "reference")
                answer = auto()
                if not (answer == fast() == reference()):
                    raise AssertionError(  # pragma: no cover - guard
                        f"engines disagree on {query!r} at n={n}"
                    )
                plan = db.last_plan
                actual = _result_cardinality(query, answer)
                estimated = plan.estimated_rows
                q_error = max(
                    (estimated + 1) / (actual + 1),
                    (actual + 1) / (estimated + 1),
                )
                replans_before = planner.replans
                auto_s = _timed(auto, runs)
                replans = planner.replans - replans_before
                manual = {
                    "fast": _timed(fast, runs),
                    "reference": _timed(reference, runs),
                }
                best_engine = min(manual, key=manual.get)
                best_s = manual[best_engine]
                return {
                    "kind": query.kind,
                    "text": query.text,
                    "n": n,
                    "chosen": plan.engine,
                    "costs": {name: cost for name, cost in plan.costs},
                    "guarded": plan.guarded,
                    "estimated_rows": estimated,
                    "actual_rows": actual,
                    "estimate_q_error": q_error,
                    "replans": replans,
                    "auto_seconds": auto_s,
                    "fast_seconds": manual["fast"],
                    "reference_seconds": manual["reference"],
                    "best_engine": best_engine,
                    "picked_fastest": (
                        manual[plan.engine]
                        <= PLANNER_TIE_TOLERANCE * best_s
                    ),
                    "auto_vs_best": auto_s / best_s,
                    "speedup": manual["reference"] / auto_s,
                }

            label = f"planner:{query.kind}:{query.text}@n={n}"
            row = _guarded_case(errors, label, case)
            if row is not None:
                rows.append(row)
    return rows


def _corpus_mode_speedup(rows: Sequence[Dict], mode: str, n: int) -> float:
    hits = [
        r["speedup"] for r in rows if r["n"] == n and r["mode"] == mode
    ]
    return statistics.median(hits) if hits else 0.0


def _median_speedup_at(rows: Sequence[Dict], n: int) -> float:
    hits = [r["speedup"] for r in rows if r["n"] == n]
    return statistics.median(hits) if hits else 0.0


def run_benchmark(
    quick: bool = False, seed: int = 0, repeats: int = 1
) -> Dict:
    """The full (or ``--quick``) sweep as a JSON-ready dict."""
    fo_sizes = FO_SIZES_QUICK if quick else FO_SIZES
    xpath_sizes = XPATH_SIZES_QUICK if quick else XPATH_SIZES
    errors: List[str] = []
    fo_rows = run_fo_benchmark(fo_sizes, seed, repeats, errors=errors)
    xpath_rows = run_xpath_benchmark(
        xpath_sizes, seed, repeats, errors=errors
    )
    fo_median = _median_speedup_at(fo_rows, fo_sizes[-1])
    xpath_median = _median_speedup_at(xpath_rows, xpath_sizes[-1])
    return {
        "schema": SCHEMA,
        "generated_by": "python -m repro.bench"
        + (" --quick" if quick else ""),
        "seed": seed,
        "repeats": repeats,
        "quick": quick,
        "errors": errors,
        "fo": {
            "sizes": list(fo_sizes),
            "formulas": dict(FO_FORMULAS),
            "rows": fo_rows,
        },
        "xpath": {
            "sizes": list(xpath_sizes),
            "expressions": list(XPATH_EXPRESSIONS),
            "max_children": MAX_CHILDREN,
            "rows": xpath_rows,
        },
        "summary": {
            "fo_max_size": fo_sizes[-1],
            "fo_median_speedup_at_max_size": fo_median,
            "xpath_max_size": xpath_sizes[-1],
            "xpath_median_speedup_at_max_size": xpath_median,
            "thresholds": {"fo": FO_THRESHOLD, "xpath": XPATH_THRESHOLD},
            "errors": len(errors),
            # The speed gates only bind the full-size sweep; a per-case
            # error fails any sweep, quick included.
            "pass": not errors
            and (
                quick
                or (
                    fo_median >= FO_THRESHOLD
                    and xpath_median >= XPATH_THRESHOLD
                )
            ),
        },
    }


def run_walk_benchmark(
    quick: bool = False, seed: int = 0, repeats: int = 1
) -> Dict:
    """The walking-engine sweep (``--suite walk``) as a JSON-ready dict."""
    cat_sizes = CATERPILLAR_SIZES_QUICK if quick else CATERPILLAR_SIZES
    twa_sizes = TWA_SIZES_QUICK if quick else TWA_SIZES
    errors: List[str] = []
    cat_rows = run_caterpillar_benchmark(
        cat_sizes, seed, repeats, errors=errors
    )
    twa_rows = run_twa_benchmark(twa_sizes, seed, repeats, errors=errors)
    cat_median = _median_speedup_at(cat_rows, cat_sizes[-1])
    twa_median = _median_speedup_at(twa_rows, twa_sizes[-1])
    return {
        "schema": WALK_SCHEMA,
        "generated_by": "python -m repro.bench --suite walk"
        + (" --quick" if quick else ""),
        "seed": seed,
        "repeats": repeats,
        "quick": quick,
        "errors": errors,
        "caterpillar": {
            "sizes": list(cat_sizes),
            "expressions": dict(CATERPILLAR_EXPRESSIONS),
            "max_children": MAX_CHILDREN,
            "rows": cat_rows,
        },
        "twa": {
            "sizes": list(twa_sizes),
            "automata": sorted(TWA_AUTOMATA),
            "rows": twa_rows,
        },
        "summary": {
            "caterpillar_max_size": cat_sizes[-1],
            "caterpillar_median_speedup_at_max_size": cat_median,
            "twa_max_size": twa_sizes[-1],
            "twa_median_speedup_at_max_size": twa_median,
            "thresholds": {
                "caterpillar": CATERPILLAR_THRESHOLD,
                "twa": TWA_THRESHOLD,
            },
            "errors": len(errors),
            # The speed gates only bind the full-size sweep; a per-case
            # error fails any sweep, quick included.
            "pass": not errors
            and (
                quick
                or (
                    cat_median >= CATERPILLAR_THRESHOLD
                    and twa_median >= TWA_THRESHOLD
                )
            ),
        },
    }


def run_corpus_suite(
    quick: bool = False, seed: int = 0, repeats: int = 1
) -> Dict:
    """The corpus batch sweep (``--suite corpus``) as a JSON-ready dict."""
    tree_counts = CORPUS_TREE_COUNTS_QUICK if quick else CORPUS_TREE_COUNTS
    errors: List[str] = []
    rows = run_corpus_benchmark(tree_counts, seed, repeats, errors=errors)
    top = tree_counts[-1]
    batch_median = _corpus_mode_speedup(rows, "workers_4", top)
    cold_median = _corpus_mode_speedup(rows, "serial_cold", top)
    warm_median = (
        _corpus_mode_speedup(rows, "serial_warm", top) / cold_median
        if cold_median
        else 0.0
    )
    return {
        "schema": CORPUS_SCHEMA,
        "generated_by": "python -m repro.bench --suite corpus"
        + (" --quick" if quick else ""),
        "seed": seed,
        "repeats": repeats,
        "quick": quick,
        "errors": errors,
        "corpus": {
            "tree_counts": list(tree_counts),
            "max_tree_size": CORPUS_MAX_TREE_SIZE,
            "worker_counts": list(CORPUS_WORKER_COUNTS),
            "queries": [
                {"kind": q.kind, "text": q.text} for q in CORPUS_QUERIES
            ],
            "rows": rows,
        },
        "summary": {
            "corpus_max_trees": top,
            # batch throughput: naive per-call loop vs 4-worker batch
            "corpus_median_speedup_at_max_size": batch_median,
            # warm serial batch vs cold (caches emptied, indexes rebuilt)
            "corpus_warm_median_speedup_at_max_size": warm_median,
            "thresholds": {
                "batch": CORPUS_BATCH_THRESHOLD,
                "warm": CORPUS_WARM_THRESHOLD,
            },
            "errors": len(errors),
            # The speed gates only bind the full-size sweep; a per-case
            # error fails any sweep, quick included.
            "pass": not errors
            and (
                quick
                or (
                    batch_median >= CORPUS_BATCH_THRESHOLD
                    and warm_median >= CORPUS_WARM_THRESHOLD
                )
            ),
        },
    }


def run_planner_suite(
    quick: bool = False, seed: int = 0, repeats: int = 1
) -> Dict:
    """The adaptive-planner sweep (``--suite planner``) as a JSON-ready
    dict."""
    sizes = PLANNER_SIZES_QUICK if quick else PLANNER_SIZES
    errors: List[str] = []
    rows = run_planner_benchmark(sizes, seed, repeats, errors=errors)
    top = sizes[-1]
    at_top = [r for r in rows if r["n"] == top]
    pick_fraction = (
        sum(1 for r in rows if r["picked_fastest"]) / len(rows)
        if rows
        else 0.0
    )
    worst_overhead = max(
        (r["auto_vs_best"] for r in at_top), default=float("inf")
    )
    median_overhead = (
        statistics.median(r["auto_vs_best"] for r in at_top)
        if at_top
        else float("inf")
    )
    planner_median = _median_speedup_at(rows, top)
    median_q_error = (
        statistics.median(r["estimate_q_error"] for r in rows)
        if rows
        else float("inf")
    )
    total_replans = sum(r["replans"] for r in rows)
    return {
        "schema": PLANNER_SCHEMA,
        "generated_by": "python -m repro.bench --suite planner"
        + (" --quick" if quick else ""),
        "seed": seed,
        "repeats": repeats,
        "quick": quick,
        "errors": errors,
        "planner": {
            "sizes": list(sizes),
            "max_children": MAX_CHILDREN,
            "queries": [
                {"kind": q.kind, "text": q.text} for q in CORPUS_QUERIES
            ],
            "rows": rows,
        },
        "summary": {
            "planner_max_size": top,
            # auto vs the reference engine, the generic ≥1.0 ratchet.
            "planner_median_speedup_at_max_size": planner_median,
            # how often auto's choice was (within noise) the fastest.
            "planner_pick_fraction": pick_fraction,
            # the gated auto/best-manual slowdown at the top size...
            "planner_median_auto_vs_best_at_max_size": median_overhead,
            # ...and the worst cell, recorded for the tables but not
            # gated (µs-scale cells swing several-fold on timer noise).
            "planner_worst_auto_vs_best_at_max_size": worst_overhead,
            "planner_median_estimate_q_error": median_q_error,
            "planner_replans": total_replans,
            "thresholds": {
                "pick_fraction": PLANNER_PICK_THRESHOLD,
                "auto_vs_best": PLANNER_OVERHEAD_THRESHOLD,
            },
            "errors": len(errors),
            # The decision gates only bind the full-size sweep; a
            # per-case error fails any sweep, quick included.
            "pass": not errors
            and (
                quick
                or (
                    pick_fraction >= PLANNER_PICK_THRESHOLD
                    and median_overhead <= PLANNER_OVERHEAD_THRESHOLD
                    and planner_median >= CHECK_FLOOR
                )
            ),
        },
    }


def run_kernel_suite(
    quick: bool = False, seed: int = 0, repeats: int = 1
) -> Dict:
    """The unified-kernel sweep (``--suite kernel``) as a JSON-ready
    dict: one shared plan IR, evaluated per tree vs stacked over every
    tree of a chunk at once."""
    tree_counts = CORPUS_TREE_COUNTS_QUICK if quick else CORPUS_TREE_COUNTS
    errors: List[str] = []
    rows = run_kernel_benchmark(tree_counts, seed, repeats, errors=errors)
    top = tree_counts[-1]
    vectorized_median = _corpus_mode_speedup(rows, "vectorized", top)
    auto_median = _corpus_mode_speedup(rows, "auto", top)
    return {
        "schema": KERNEL_SCHEMA,
        "generated_by": "python -m repro.bench --suite kernel"
        + (" --quick" if quick else ""),
        "seed": seed,
        "repeats": repeats,
        "quick": quick,
        "errors": errors,
        "kernel": {
            "tree_counts": list(tree_counts),
            "max_tree_size": CORPUS_MAX_TREE_SIZE,
            "queries": [
                {"kind": q.kind, "text": q.text} for q in KERNEL_QUERIES
            ],
            "rows": rows,
        },
        "summary": {
            "kernel_max_trees": top,
            # warm stacked shard batch vs warm per-tree fast batch
            "kernel_median_speedup_at_max_size": vectorized_median,
            # engine="auto" (planner + vectorized upgrade) on the same
            # baseline — the end-to-end default path
            "kernel_auto_median_speedup_at_max_size": auto_median,
            "thresholds": {"vectorized": KERNEL_THRESHOLD},
            "errors": len(errors),
            # The speed gate only binds the full-size sweep; a per-case
            # error fails any sweep, quick included.
            "pass": not errors
            and (quick or vectorized_median >= KERNEL_THRESHOLD),
        },
    }


#: Ingest runs in a child process so its peak RSS (``ru_maxrss``) is
#: the ingest's own, not this process's: the child streams randomly
#: generated trees straight into ``CorpusStore.ingest`` and reports
#: wall time and high-water memory as one JSON line.
_INGEST_CHILD = """
import json, resource, sys, time
sys.path.insert(0, sys.argv[1])
from repro.corpus.store import CorpusStore
from repro.trees import random_tree

path, count, seed = sys.argv[2], int(sys.argv[3]), int(sys.argv[4])
base, step, span = int(sys.argv[5]), int(sys.argv[6]), int(sys.argv[7])

def stream():
    for i in range(count):
        yield random_tree(
            base + (i * step) % span,
            value_pool=(1, 2, 3),
            max_children=3,
            seed=seed + i,
        )

store = CorpusStore.create(path)
t0 = time.perf_counter()
trees = store.ingest(stream())
seconds = time.perf_counter() - t0
store.close()
print(json.dumps({
    "trees": trees,
    "seconds": seconds,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _ingest_store(
    path: str,
    count: int,
    seed: int,
    sizes: Tuple[int, int, int] = (4, 7, 21),
) -> Dict:
    """Build a store of ``count`` trees in a child process; returns the
    child's ``{trees, seconds, peak_rss_kb}`` measurement.  Tree ``i``
    has ``base + (i * step) % span`` nodes for ``sizes = (base, step,
    span)``."""
    import os
    import subprocess

    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))
    result = subprocess.run(
        [
            sys.executable, "-c", _INGEST_CHILD,
            package_root, path, str(count), str(seed),
            str(sizes[0]), str(sizes[1]), str(sizes[2]),
        ],
        capture_output=True, text=True, check=False,
    )
    if result.returncode != 0:  # pragma: no cover - child guard
        raise RuntimeError(
            f"ingest child failed: {result.stderr.strip()[-500:]}"
        )
    return json.loads(result.stdout.strip().splitlines()[-1])


def _store_size_row(path: str, count: int, seed: int, runs: int) -> Dict:
    """One corpus size: child-process ingest, cold open + first window
    batch (all shared caches emptied), then the warm window batch —
    answers checked against the naive per-call loop first."""
    from .corpus import CorpusStore

    ingest = _ingest_store(path, count, seed)
    window = min(STORE_WINDOW, count)
    plan_cache_clear()
    index_cache_clear()
    t0 = time.perf_counter()
    store = CorpusStore.open(path)
    store.statistics()
    first = store.run(STORE_QUERIES, stop=window)
    cold_seconds = time.perf_counter() - t0
    try:
        window_trees = [store.tree(i) for i in range(window)]
        expected = _naive_corpus_rows(window_trees, STORE_QUERIES)
        if first.rows != expected:  # pragma: no cover - guard
            raise AssertionError(
                f"store batch disagrees with loop at {count}"
            )
        warm_seconds = _timed(
            lambda: store.run(STORE_QUERIES, stop=window), max(runs, 3)
        )
    finally:
        store.close()
    return {
        "n": count,
        "window": window,
        "ingest_seconds": ingest["seconds"],
        "ingest_trees_per_second": ingest["trees"] / ingest["seconds"],
        "ingest_peak_rss_kb": ingest["peak_rss_kb"],
        "cold_open_seconds": cold_seconds,
        "warm_batch_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
    }


def run_store_benchmark(
    tree_counts: Sequence[int],
    seed: int,
    repeats: int,
    errors: Optional[List[str]] = None,
) -> List[Dict]:
    """Fixed-window batches over stores a decade apart in size."""
    import shutil
    import tempfile

    rows = []
    for count in tree_counts:
        tmp = tempfile.mkdtemp(prefix="repro-bench-store-")
        try:
            row = _guarded_case(
                errors, f"store:{count}",
                lambda count=count: _store_size_row(
                    f"{tmp}/store", count, seed, repeats
                ),
            )
            if row is not None:
                rows.append(row)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    return rows


def _repair_sites(index, limit: int) -> List:
    """Every node whose subtree holds at most ``limit`` nodes and is
    not the root — candidate single-subtree edit sites."""
    return [
        index.node_of[u]
        for u in range(1, index.n)
        if index.subtree_end[u] - u <= limit
    ]


def run_repair_benchmark(
    sizes: Sequence[int],
    seed: int,
    repeats: int,
    errors: Optional[List[str]] = None,
) -> List[Dict]:
    """Incremental ``repair_index`` vs a fresh ``TreeIndex`` build over
    single-subtree edits at small sites (the hard case for the splice:
    nearly the whole index is prefix + suffix work)."""
    from .engine.index import TreeIndex, index_structures, repair_index

    rows = []
    for n in sizes:

        def case(n=n):
            tree = random_tree(
                n, value_pool=VALUE_POOL, max_children=3, seed=seed
            )
            base = TreeIndex(tree)
            sites = _repair_sites(base, STORE_REPAIR_SITE_LIMIT)
            step = max(1, len(sites) // STORE_REPAIR_EDITS)
            speedups = []
            for k, site in enumerate(sites[::step][:STORE_REPAIR_EDITS]):
                replacement = random_tree(
                    8, value_pool=VALUE_POOL, max_children=3,
                    seed=seed + 1000 + k,
                )
                edited = tree.replace_subtree(site, replacement)
                edited.nodes  # warm the lazy preorder both timings use
                t0 = time.perf_counter()
                rebuilt = TreeIndex(edited)
                rebuild_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                repaired = repair_index(base, edited, site)
                repair_s = time.perf_counter() - t0
                if index_structures(repaired) != index_structures(
                    rebuilt
                ):  # pragma: no cover - differential guard
                    raise AssertionError(
                        f"repair diverges from rebuild at n={n} "
                        f"site={site!r}"
                    )
                speedups.append(rebuild_s / repair_s)
            return {
                "n": n,
                "edits": len(speedups),
                "site_limit": STORE_REPAIR_SITE_LIMIT,
                "median_speedup": statistics.median(speedups),
                "min_speedup": min(speedups),
                "max_speedup": max(speedups),
            }

        row = _guarded_case(errors, f"repair:{n}", case)
        if row is not None:
            rows.append(row)
    return rows


def run_store_suite(
    quick: bool = False, seed: int = 0, repeats: int = 1
) -> Dict:
    """The disk-store sweep (``--suite store``) as a JSON-ready dict:
    streaming ingest (child-process peak RSS), cold open, warm
    fixed-window batches at 1x and 10x corpus size, and incremental
    index repair vs full rebuild."""
    tree_counts = STORE_TREE_COUNTS_QUICK if quick else STORE_TREE_COUNTS
    repair_sizes = (
        STORE_REPAIR_SIZES_QUICK if quick else STORE_REPAIR_SIZES
    )
    errors: List[str] = []
    rows = run_store_benchmark(tree_counts, seed, repeats, errors=errors)
    repair_rows = run_repair_benchmark(
        repair_sizes, seed, repeats, errors=errors
    )
    by_count = {row["n"]: row for row in rows}
    base, top = tree_counts[0], tree_counts[-1]
    flat_ratio = rss_ratio = warm_speedup = 0.0
    ingest_rate = 0.0
    if base in by_count and top in by_count:
        flat_ratio = (
            by_count[top]["warm_batch_seconds"]
            / by_count[base]["warm_batch_seconds"]
        )
        rss_ratio = (
            by_count[top]["ingest_peak_rss_kb"]
            / by_count[base]["ingest_peak_rss_kb"]
        )
        warm_speedup = by_count[top]["speedup"]
        ingest_rate = by_count[top]["ingest_trees_per_second"]
    repair_median = (
        statistics.median(r["median_speedup"] for r in repair_rows)
        if repair_rows
        else 0.0
    )
    return {
        "schema": STORE_SCHEMA,
        "generated_by": "python -m repro.bench --suite store"
        + (" --quick" if quick else ""),
        "seed": seed,
        "repeats": repeats,
        "quick": quick,
        "errors": errors,
        "store": {
            "tree_counts": list(tree_counts),
            "window": STORE_WINDOW,
            "queries": [
                {"kind": q.kind, "text": q.text} for q in STORE_QUERIES
            ],
            "rows": rows,
            "repair_rows": repair_rows,
        },
        "summary": {
            "store_max_trees": top,
            # warm fixed-window latency growth across a 10x corpus
            "store_warm_flat_ratio": flat_ratio,
            # child-process peak ingest RSS growth across the same 10x
            "store_ingest_rss_ratio": rss_ratio,
            "store_ingest_trees_per_second_at_max_size": ingest_rate,
            # cold open (caches emptied, segments unmapped) vs warm
            "store_warm_median_speedup_at_max_size": warm_speedup,
            # incremental splice repair vs a fresh TreeIndex build
            "store_repair_median_speedup_at_max_size": repair_median,
            "thresholds": {
                "flat": STORE_FLAT_THRESHOLD,
                "rss": STORE_RSS_THRESHOLD,
                "repair": STORE_REPAIR_THRESHOLD,
            },
            "errors": len(errors),
            # The latency/RSS/repair gates only bind the full-size
            # sweep; a per-case error fails any sweep, quick included.
            "pass": not errors
            and (
                quick
                or (
                    0.0 < flat_ratio <= STORE_FLAT_THRESHOLD
                    and 0.0 < rss_ratio <= STORE_RSS_THRESHOLD
                    and warm_speedup >= CHECK_FLOOR
                    and repair_median >= STORE_REPAIR_THRESHOLD
                )
            ),
        },
    }


def _print_store_report(report: Dict) -> None:
    print(f"disk-store benchmark (seed={report['seed']}, "
          f"quick={report['quick']})")
    print(f"\nfixed window of {report['store']['window']} trees, "
          f"{len(report['store']['queries'])} queries per batch:")
    for row in report["store"]["rows"]:
        print(
            f"  {row['n']:>7} trees: ingest "
            f"{row['ingest_trees_per_second']:>7.0f} trees/s "
            f"(peak RSS {row['ingest_peak_rss_kb'] / 1024:.0f} MB), "
            f"cold open {row['cold_open_seconds'] * 1000:>7.1f}ms, "
            f"warm batch {row['warm_batch_seconds'] * 1000:>7.1f}ms"
        )
    print("\nincremental index repair vs fresh build "
          f"(sites <= {STORE_REPAIR_SITE_LIMIT} nodes):")
    for row in report["store"]["repair_rows"]:
        print(
            f"  n={row['n']:>6}: median {row['median_speedup']:>5.2f}x "
            f"over {row['edits']} edits "
            f"(min {row['min_speedup']:.2f}x, "
            f"max {row['max_speedup']:.2f}x)"
        )
    summary = report["summary"]
    print(
        f"\nacross the 10x decade to {summary['store_max_trees']} trees: "
        f"warm window latency x{summary['store_warm_flat_ratio']:.2f} "
        f"(gate <= {summary['thresholds']['flat']:.1f}), ingest RSS "
        f"x{summary['store_ingest_rss_ratio']:.2f} "
        f"(gate <= {summary['thresholds']['rss']:.1f}), repair "
        f"{summary['store_repair_median_speedup_at_max_size']:.2f}x "
        f"(gate >= {summary['thresholds']['repair']:.1f}) — "
        f"{'pass' if summary['pass'] else 'FAIL'}"
    )


def _print_kernel_report(report: Dict) -> None:
    print(f"unified-kernel benchmark (seed={report['seed']}, "
          f"quick={report['quick']})")
    print(f"\n{len(report['kernel']['queries'])} IR-expressible queries "
          f"per batch, tree sizes cycling up to "
          f"{report['kernel']['max_tree_size']} nodes; speedups are "
          "against the warm per-tree fast batch:")
    current = None
    for row in report["kernel"]["rows"]:
        if row["n"] != current:
            current = row["n"]
            print(f"  {current} trees ({row['nodes']} nodes):")
        print(
            f"    {row['mode']:<12} "
            f"{row['seconds'] * 1000:>8.1f}ms  "
            f"speedup={row['speedup']:>5.2f}x"
        )
    summary = report["summary"]
    print(
        f"\nmedian speedups at {summary['kernel_max_trees']} trees: "
        f"stacked shard "
        f"{summary['kernel_median_speedup_at_max_size']:.2f}x, "
        f"engine=auto "
        f"{summary['kernel_auto_median_speedup_at_max_size']:.2f}x "
        f"(gate: {summary['thresholds']['vectorized']:.1f}x on the "
        f"stacked shard — "
        f"{'pass' if summary['pass'] else 'FAIL'})"
    )


def _print_planner_report(report: Dict) -> None:
    print(f"adaptive planner benchmark (seed={report['seed']}, "
          f"quick={report['quick']})")
    print("\nengine=\"auto\" vs manual engine choices "
          "(est/act = estimated vs actual result rows):")
    current = None
    for row in report["planner"]["rows"]:
        if row["n"] != current:
            current = row["n"]
            print(f"  n={current}:")
        pick = "=" if row["picked_fastest"] else "!"
        print(
            f"    {row['kind']:<21} {row['chosen']:<9} "
            f"[{pick}{row['best_engine']}] "
            f"auto={row['auto_seconds'] * 1000:>7.3f}ms "
            f"x{row['auto_vs_best']:>4.2f} of best  "
            f"est/act={row['estimated_rows']}/{row['actual_rows']}"
            + (f"  replans={row['replans']}" if row["replans"] else "")
        )
    summary = report["summary"]
    print(
        f"\nat n={summary['planner_max_size']}: auto is "
        f"{summary['planner_median_speedup_at_max_size']:.1f}x the "
        f"reference (median), picked the fastest engine on "
        f"{summary['planner_pick_fraction']:.0%} of cells "
        f"(gate {summary['thresholds']['pick_fraction']:.0%}), median "
        f"overhead x{summary['planner_median_auto_vs_best_at_max_size']:.2f} "
        f"of the best manual choice "
        f"(gate x{summary['thresholds']['auto_vs_best']:.1f}, worst "
        f"x{summary['planner_worst_auto_vs_best_at_max_size']:.2f}), median "
        f"estimate q-error "
        f"{summary['planner_median_estimate_q_error']:.2f}, "
        f"{summary['planner_replans']} re-plans — "
        f"{'pass' if summary['pass'] else 'FAIL'}"
    )


def _print_corpus_report(report: Dict) -> None:
    print(f"corpus batch benchmark (seed={report['seed']}, "
          f"quick={report['quick']})")
    print(f"\n{len(report['corpus']['queries'])} queries per batch, "
          f"tree sizes cycling up to {report['corpus']['max_tree_size']} "
          "nodes; speedups are against the naive per-call loop:")
    current = None
    for row in report["corpus"]["rows"]:
        if row["n"] != current:
            current = row["n"]
            print(f"  {current} trees ({row['nodes']} nodes):")
        print(
            f"    {row['mode']:<12} "
            f"{row['seconds'] * 1000:>8.1f}ms  "
            f"speedup={row['speedup']:>5.2f}x"
        )
    summary = report["summary"]
    print(
        f"\nmedian speedups at {summary['corpus_max_trees']} trees: "
        f"4-worker batch "
        f"{summary['corpus_median_speedup_at_max_size']:.2f}x vs the "
        f"naive loop, warm serial "
        f"{summary['corpus_warm_median_speedup_at_max_size']:.2f}x vs "
        f"cold (gates: {summary['thresholds']['batch']:.1f}x / "
        f"{summary['thresholds']['warm']:.1f}x — "
        f"{'pass' if summary['pass'] else 'FAIL'})"
    )


def _print_walk_report(report: Dict) -> None:
    print(f"walking-engine benchmark (seed={report['seed']}, "
          f"quick={report['quick']})")
    print("\nCaterpillar walk relations (per-context reference vs "
          "one stacked BFS):")
    for row in report["caterpillar"]["rows"]:
        print(
            f"  n={row['n']:>4}  {row['expression']:<18} "
            f"ref={row['reference_seconds'] * 1000:>10.2f}ms  "
            f"eng={row['engine_seconds'] * 1000:>8.3f}ms  "
            f"speedup={row['speedup']:>6.1f}x"
        )
    print("\nGuard-free TWA runs (step interpreter vs memoised plan):")
    for row in report["twa"]["rows"]:
        print(
            f"  n={row['n']:>4}  {row['automaton']:<14} "
            f"steps={row['steps']:>5}  "
            f"ref={row['reference_seconds'] * 1000:>8.3f}ms  "
            f"eng={row['engine_seconds'] * 1000:>8.3f}ms  "
            f"speedup={row['speedup']:>6.1f}x"
        )
    summary = report["summary"]
    print(
        f"\nmedian speedups: caterpillar "
        f"{summary['caterpillar_median_speedup_at_max_size']:.1f}x "
        f"at n={summary['caterpillar_max_size']}, "
        f"TWA {summary['twa_median_speedup_at_max_size']:.1f}x "
        f"at n={summary['twa_max_size']} "
        f"(gates: {summary['thresholds']['caterpillar']:.0f}x / "
        f"{summary['thresholds']['twa']:.0f}x — "
        f"{'pass' if summary['pass'] else 'FAIL'})"
    )


def _percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) by nearest-rank on sorted values."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def _serve_client_loop(
    address,
    client_id: int,
    tree_count: int,
    expected_rows,
    duration: float,
    faults_every: int,
    out: List[Dict],
) -> None:
    """One closed-loop client: query a sliding window, check the
    answers against the precomputed truth, think, repeat."""
    from .service import ServiceClient
    from .service.protocol import ServiceError

    latencies: List[float] = []
    requests = wrong = errors = degraded = 0
    window = min(SERVE_WINDOW, tree_count)
    span = max(1, tree_count - window)
    with ServiceClient(*address) as client:
        deadline = time.perf_counter() + duration
        i = 0
        while time.perf_counter() < deadline:
            start = (client_id * 7 + i * window) % span
            options = {"start": start, "stop": start + window}
            if faults_every and i % faults_every == 0:
                options["faults"] = {"0": {"at": 2, "kind": "error"}}
            began = time.perf_counter()
            try:
                response = client.query_with_retry(
                    [SERVE_QUERY], attempts=4, **options
                )
            except ServiceError:
                errors += 1
            else:
                latencies.append(time.perf_counter() - began)
                requests += 1
                degraded += response.get("degraded_chunks", 0)
                if response["results"] != expected_rows[start:start + window]:
                    wrong += 1
            i += 1
            time.sleep(SERVE_THINK_SECONDS)
    out.append(
        {
            "requests": requests,
            "errors": errors,
            "wrong": wrong,
            "degraded": degraded,
            "latencies": latencies,
        }
    )


def _serve_load_round(
    address,
    clients: int,
    tree_count: int,
    expected_rows,
    duration: float,
    faults_every: int = 0,
) -> Dict:
    """Drive ``clients`` concurrent closed-loop sessions; aggregate."""
    import threading

    results: List[Dict] = []
    threads = [
        threading.Thread(
            target=_serve_client_loop,
            args=(
                address, c, tree_count, expected_rows, duration,
                faults_every, results,
            ),
        )
        for c in range(clients)
    ]
    began = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - began
    latencies = [lat for r in results for lat in r["latencies"]]
    requests = sum(r["requests"] for r in results)
    errors = sum(r["errors"] for r in results)
    total = requests + errors
    return {
        "clients": clients,
        "faulted": bool(faults_every),
        "requests": requests,
        "errors": errors,
        "error_rate": errors / total if total else 0.0,
        "wrong_answers": sum(r["wrong"] for r in results),
        "degraded_chunks": sum(r["degraded"] for r in results),
        "seconds": elapsed,
        "throughput_rps": requests / elapsed if elapsed else 0.0,
        "p50_ms": _percentile(latencies, 50) * 1000.0,
        "p99_ms": _percentile(latencies, 99) * 1000.0,
    }


def run_serve_suite(
    quick: bool = False, seed: int = 0, repeats: int = 1
) -> Dict:
    """The query-service sweep (``--suite serve``) as a JSON-ready dict.

    Closed-loop clients (think time :data:`SERVE_THINK_SECONDS`) at
    1/8/32 concurrency measure aggregate throughput and p50/p99
    latency, then a chaos round at 8 clients injects an engine fault
    into every :data:`SERVE_FAULT_EVERY`-th request — those chunks must
    degrade to the reference engine with the *correct* answers, and the
    fault-free sessions' p99 must stay within
    :data:`SERVE_FAULT_P99_THRESHOLD` of the calm round's.  Every
    response is checked against a precomputed truth table; a single
    wrong answer fails the suite, faults or none."""
    from .corpus import TreeCorpus
    from .service import AdmissionController, Dispatcher, QueryServer

    tree_count = SERVE_TREE_COUNT_QUICK if quick else SERVE_TREE_COUNT
    duration = SERVE_DURATION_QUICK if quick else SERVE_DURATION
    client_counts = SERVE_CLIENT_COUNTS[:2] if quick else SERVE_CLIENT_COUNTS
    errors: List[str] = []
    corpus = TreeCorpus.random(
        tree_count, max_size=SERVE_MAX_TREE_SIZE, seed=seed
    ).prepare()
    expected_rows = json.loads(json.dumps(corpus.run([SERVE_QUERY]).rows))
    dispatcher = Dispatcher(
        corpus,
        admission=AdmissionController(
            max_inflight=max(SERVE_CLIENT_COUNTS) + 8, quota_steps=None
        ),
        default_timeout_ms=10_000,
        allow_faults=True,
    )
    rows: List[Dict] = []
    fault_row: Optional[Dict] = None
    with QueryServer(dispatcher).start_in_thread() as server:
        for clients in client_counts:
            row = _guarded_case(
                errors, f"serve:{clients}",
                lambda clients=clients: _serve_load_round(
                    server.address, clients, tree_count, expected_rows,
                    duration,
                ),
            )
            if row is not None:
                rows.append(row)
        fault_row = _guarded_case(
            errors, "serve:faults",
            lambda: _serve_load_round(
                server.address, 8, tree_count, expected_rows, duration,
                faults_every=SERVE_FAULT_EVERY,
            ),
        )
        stats = dispatcher.handle({"op": "stats"}, dispatcher.open_session())
    corpus.close()
    by_clients = {row["clients"]: row for row in rows}
    throughput_1 = by_clients.get(1, {}).get("throughput_rps", 0.0)
    throughput_8 = by_clients.get(8, {}).get("throughput_rps", 0.0)
    scale = throughput_8 / throughput_1 if throughput_1 else 0.0
    calm_p99 = by_clients.get(8, {}).get("p99_ms", 0.0)
    fault_p99 = fault_row["p99_ms"] if fault_row else 0.0
    fault_p99_ratio = fault_p99 / calm_p99 if calm_p99 else 0.0
    wrong = sum(row["wrong_answers"] for row in rows) + (
        fault_row["wrong_answers"] if fault_row else 0
    )
    fault_error_rate = fault_row["error_rate"] if fault_row else 1.0
    fault_degraded = fault_row["degraded_chunks"] if fault_row else 0
    return {
        "schema": SERVE_SCHEMA,
        "generated_by": "python -m repro.bench --suite serve"
        + (" --quick" if quick else ""),
        "seed": seed,
        "repeats": repeats,
        "quick": quick,
        "errors": errors,
        "serve": {
            "tree_count": tree_count,
            "window": min(SERVE_WINDOW, tree_count),
            "duration_seconds": duration,
            "think_seconds": SERVE_THINK_SECONDS,
            "query": {"kind": SERVE_QUERY.kind, "text": SERVE_QUERY.text},
            "fault_every": SERVE_FAULT_EVERY,
            "rows": rows,
            "fault_row": fault_row,
            "server_stats": {
                k: v for k, v in stats.items() if k != "ok"
            },
        },
        "summary": {
            "serve_throughput_rps_1": throughput_1,
            "serve_throughput_rps_8": throughput_8,
            # closed-loop scaling: how much of 8 clients' think/RTT
            # time one server overlaps (NOT CPU parallelism)
            "serve_scale_at_8_clients": scale,
            "serve_calm_p99_ms": calm_p99,
            "serve_fault_p99_ms": fault_p99,
            "serve_fault_p99_ratio": fault_p99_ratio,
            "serve_fault_error_rate": fault_error_rate,
            "serve_fault_degraded_chunks": fault_degraded,
            "serve_wrong_answers": wrong,
            "thresholds": {
                "scale": SERVE_SCALE_THRESHOLD,
                "fault_p99_ratio": SERVE_FAULT_P99_THRESHOLD,
            },
            # Wrong answers and chaos-round errors fail any sweep,
            # quick included; the scale and p99 gates bind full only.
            "pass": not errors
            and wrong == 0
            and fault_error_rate == 0.0
            and fault_degraded > 0
            and (
                quick
                or (
                    scale >= SERVE_SCALE_THRESHOLD
                    and 0.0 < fault_p99_ratio <= SERVE_FAULT_P99_THRESHOLD
                )
            ),
        },
    }


def _print_serve_report(report: Dict) -> None:
    print(f"query-service benchmark (seed={report['seed']}, "
          f"quick={report['quick']})")
    serve = report["serve"]
    print(
        f"\nclosed-loop clients over {serve['tree_count']} trees "
        f"(window {serve['window']}, think "
        f"{serve['think_seconds'] * 1000:.0f}ms, "
        f"{serve['duration_seconds']:.1f}s per round):"
    )
    for row in serve["rows"] + ([serve["fault_row"]] if serve["fault_row"] else []):
        chaos = " +faults" if row["faulted"] else ""
        print(
            f"  {row['clients']:>2} clients{chaos:<8} "
            f"{row['throughput_rps']:>7.1f} req/s  "
            f"p50={row['p50_ms']:>6.2f}ms  p99={row['p99_ms']:>7.2f}ms  "
            f"errors={row['errors']}  wrong={row['wrong_answers']}  "
            f"degraded={row['degraded_chunks']}"
        )
    summary = report["summary"]
    print(
        f"\nscale at 8 clients: x{summary['serve_scale_at_8_clients']:.2f} "
        f"(gate >= {summary['thresholds']['scale']:.1f}), chaos p99 "
        f"x{summary['serve_fault_p99_ratio']:.2f} of calm "
        f"(gate <= {summary['thresholds']['fault_p99_ratio']:.1f}), "
        f"chaos error rate {summary['serve_fault_error_rate']:.1%}, "
        f"{summary['serve_wrong_answers']} wrong answers — "
        f"{'pass' if summary['pass'] else 'FAIL'}"
    )


#: One cold window in a fresh process: open the store (sidecars on or
#: off), answer the fixed vectorized window, and report wall time, the
#: rows, and how many packed lanes the executor assembled — all shared
#: caches are necessarily empty because the process is new.
_COLDPATH_CHILD = """
import json, sys, time
sys.path.insert(0, sys.argv[1])
from repro.corpus.store import CorpusStore
from repro.corpus.query import CorpusQuery

path, window = sys.argv[2], int(sys.argv[3])
sidecars = sys.argv[4] == "1"
queries = [CorpusQuery(k, t, ()) for k, t in json.loads(sys.argv[5])]

store = CorpusStore.open(path, readonly=True, sidecars=sidecars)
# Compile the query plans on a single-tree window first, identically
# in both modes: the timed region below then isolates the variable
# under test — how the window's indexes get into memory — not the
# (mode-independent, cached-per-process) query-to-IR compilation.
store.run(queries, stop=1, engine="vectorized")
t0 = time.perf_counter()
result = store.run(queries, stop=window, engine="vectorized")
seconds = time.perf_counter() - t0
from repro.corpus import executor
lanes = len(executor._WORKER_LANES)
store.close()
print(json.dumps({
    "seconds": seconds,
    "packed_lanes": lanes,
    "rows": result.rows,
}))
"""


def _coldpath_child(path: str, window: int, sidecars: bool) -> Dict:
    """Run one cold window in a child process; returns its
    ``{seconds, packed_lanes, rows}`` measurement."""
    import os
    import subprocess

    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))
    spec = json.dumps([[q.kind, q.text] for q in COLDPATH_QUERIES])
    result = subprocess.run(
        [
            sys.executable, "-c", _COLDPATH_CHILD,
            package_root, path, str(window),
            "1" if sidecars else "0", spec,
        ],
        capture_output=True, text=True, check=False,
    )
    if result.returncode != 0:  # pragma: no cover - child guard
        raise RuntimeError(
            f"coldpath child failed: {result.stderr.strip()[-500:]}"
        )
    return json.loads(result.stdout.strip().splitlines()[-1])


def _coldpath_size_row(path: str, count: int, seed: int, runs: int) -> Dict:
    """One corpus size: child-process ingest, then the same cold window
    measured in fresh children with and without sidecars — every run's
    rows must agree with each other and with the naive per-call loop."""
    from .corpus import CorpusStore

    ingest = _ingest_store(path, count, seed, sizes=COLDPATH_TREE_SIZES)
    window = min(COLDPATH_WINDOW, count)
    store = CorpusStore.open(path, readonly=True)
    try:
        window_trees = [store.tree(i) for i in range(window)]
        expected = json.loads(json.dumps(
            _naive_corpus_rows(window_trees, COLDPATH_QUERIES)
        ))
    finally:
        store.close()
    sidecar_samples: List[float] = []
    rebuild_samples: List[float] = []
    packed_lanes = 0
    disagreements = 0
    for _ in range(max(runs, 3)):
        side = _coldpath_child(path, window, sidecars=True)
        plain = _coldpath_child(path, window, sidecars=False)
        sidecar_samples.append(side["seconds"])
        rebuild_samples.append(plain["seconds"])
        packed_lanes = max(packed_lanes, side["packed_lanes"])
        for sample in (side, plain):
            if sample["rows"] != expected:
                disagreements += 1
    if packed_lanes == 0:  # pragma: no cover - wiring guard
        raise AssertionError(
            f"packed lane path never engaged at {count} trees"
        )
    sidecar_s = statistics.median(sidecar_samples)
    rebuild_s = statistics.median(rebuild_samples)
    return {
        "n": count,
        "window": window,
        "ingest_seconds": ingest["seconds"],
        "cold_sidecar_seconds": sidecar_s,
        "cold_rebuild_seconds": rebuild_s,
        "packed_lanes": packed_lanes,
        "disagreements": disagreements,
        "speedup": rebuild_s / sidecar_s,
    }


def _coldpath_cache_row(path: str, count: int) -> Dict:
    """Replay distinct windows against a caching dispatcher: each
    window pays one miss through the full pipeline, then
    :data:`COLDPATH_CACHE_HITS` replays must answer from memory with
    byte-identical results."""
    from .corpus import CorpusStore
    from .service import Dispatcher

    window = min(COLDPATH_WINDOW, count)
    store = CorpusStore.open(path, readonly=True)
    try:
        dispatcher = Dispatcher(
            store, workers=0, result_cache=2 * COLDPATH_CACHE_WINDOWS
        )
        session = dispatcher.open_session()
        starts = [
            i * window
            for i in range(COLDPATH_CACHE_WINDOWS)
            if (i + 1) * window <= store.tree_count
        ]
        query_objects = [
            {"kind": q.kind, "text": q.text} for q in COLDPATH_QUERIES
        ]
        miss_ms: List[float] = []
        hit_ms: List[float] = []
        wrong = 0
        for start in starts:
            payload = {
                "op": "query",
                "queries": query_objects,
                "options": {
                    "start": start,
                    "stop": start + window,
                    "engine": "vectorized",
                },
            }
            t0 = time.perf_counter()
            first = dispatcher.handle(payload, session)
            miss_ms.append((time.perf_counter() - t0) * 1000.0)
            if not first.get("ok") or first.get("cached"):
                raise AssertionError(
                    f"first window [{start}, {start + window}) was not "
                    f"a clean miss: {first.get('error', first)!r}"
                )
            for _ in range(COLDPATH_CACHE_HITS):
                t0 = time.perf_counter()
                replay = dispatcher.handle(payload, session)
                hit_ms.append((time.perf_counter() - t0) * 1000.0)
                if (
                    not replay.get("ok")
                    or replay.get("cached") is not True
                    or replay["results"] != first["results"]
                ):
                    wrong += 1
        stats = dispatcher.handle({"op": "stats"}, session)
        cache_info = stats.get("result_cache", {})
    finally:
        store.close()
    miss_p50 = statistics.median(miss_ms)
    hit_p50 = statistics.median(hit_ms)
    return {
        "n": count,
        "window": window,
        "windows": len(starts),
        "hits_per_window": COLDPATH_CACHE_HITS,
        "miss_p50_ms": miss_p50,
        "hit_p50_ms": hit_p50,
        "wrong_answers": wrong,
        "cache_info": cache_info,
        "speedup": miss_p50 / hit_p50 if hit_p50 else 0.0,
    }


def run_coldpath_suite(
    quick: bool = False, seed: int = 0, repeats: int = 1
) -> Dict:
    """The zero-rebuild sweep (``--suite coldpath``) as a JSON-ready
    dict: cold sidecar windows vs rebuild-from-pickle windows in fresh
    child processes, plus the generation-keyed result cache replaying
    the same windows through the dispatcher.  Rows are checked against
    the naive per-call loop in both modes; a single disagreement or
    wrong cached answer fails the suite, quick included."""
    import shutil
    import tempfile

    tree_counts = (
        COLDPATH_TREE_COUNTS_QUICK if quick else COLDPATH_TREE_COUNTS
    )
    errors: List[str] = []
    rows: List[Dict] = []
    cache_rows: List[Dict] = []
    for count in tree_counts:
        tmp = tempfile.mkdtemp(prefix="repro-bench-coldpath-")
        try:
            path = f"{tmp}/store"
            row = _guarded_case(
                errors, f"coldpath:{count}",
                lambda count=count, path=path: _coldpath_size_row(
                    path, count, seed, repeats
                ),
            )
            if row is not None:
                rows.append(row)
                cache_row = _guarded_case(
                    errors, f"coldpath-cache:{count}",
                    lambda count=count, path=path: _coldpath_cache_row(
                        path, count
                    ),
                )
                if cache_row is not None:
                    cache_rows.append(cache_row)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    top = tree_counts[-1]
    by_count = {row["n"]: row for row in rows}
    cache_by_count = {row["n"]: row for row in cache_rows}
    sidecar_speedup = by_count.get(top, {}).get("speedup", 0.0)
    cache_speedup = cache_by_count.get(top, {}).get("speedup", 0.0)
    disagreements = sum(row["disagreements"] for row in rows)
    wrong = sum(row["wrong_answers"] for row in cache_rows)
    return {
        "schema": COLDPATH_SCHEMA,
        "generated_by": "python -m repro.bench --suite coldpath"
        + (" --quick" if quick else ""),
        "seed": seed,
        "repeats": repeats,
        "quick": quick,
        "errors": errors,
        "coldpath": {
            "tree_counts": list(tree_counts),
            "window": COLDPATH_WINDOW,
            "queries": [
                {"kind": q.kind, "text": q.text} for q in COLDPATH_QUERIES
            ],
            "rows": rows,
            "cache_rows": cache_rows,
        },
        "summary": {
            "coldpath_max_trees": top,
            # cold sidecar window vs cold rebuild-from-pickle window
            "coldpath_sidecar_speedup_at_max_size": sidecar_speedup,
            # first uncached answer vs cached replay (both p50)
            "coldpath_cache_speedup_at_max_size": cache_speedup,
            "coldpath_disagreements": disagreements,
            "coldpath_wrong_answers": wrong,
            "thresholds": {
                "sidecar": COLDPATH_SIDECAR_THRESHOLD,
                "cache": COLDPATH_CACHE_THRESHOLD,
            },
            "errors": len(errors),
            # Correctness binds every sweep, quick included; the two
            # speedup gates bind only the full-size sweep.
            "pass": not errors
            and disagreements == 0
            and wrong == 0
            and (
                quick
                or (
                    sidecar_speedup >= COLDPATH_SIDECAR_THRESHOLD
                    and cache_speedup >= COLDPATH_CACHE_THRESHOLD
                )
            ),
        },
    }


def _print_coldpath_report(report: Dict) -> None:
    print(f"zero-rebuild cold-path benchmark (seed={report['seed']}, "
          f"quick={report['quick']})")
    cold = report["coldpath"]
    print(f"\ncold window of {cold['window']} trees, "
          f"{len(cold['queries'])} IR-eligible queries, fresh process "
          "per measurement:")
    for row in cold["rows"]:
        print(
            f"  {row['n']:>7} trees: sidecars "
            f"{row['cold_sidecar_seconds'] * 1000:>7.1f}ms, rebuild "
            f"{row['cold_rebuild_seconds'] * 1000:>7.1f}ms, speedup "
            f"{row['speedup']:>5.2f}x "
            f"({row['packed_lanes']} packed lanes, "
            f"{row['disagreements']} disagreements)"
        )
    print("\ncached window replay through the dispatcher:")
    for row in cold["cache_rows"]:
        print(
            f"  {row['n']:>7} trees: miss p50 "
            f"{row['miss_p50_ms']:>7.2f}ms, hit p50 "
            f"{row['hit_p50_ms']:>7.3f}ms, speedup "
            f"{row['speedup']:>6.1f}x over {row['windows']} windows "
            f"({row['wrong_answers']} wrong answers)"
        )
    summary = report["summary"]
    print(
        f"\nat {summary['coldpath_max_trees']} trees: sidecar cold path "
        f"{summary['coldpath_sidecar_speedup_at_max_size']:.2f}x "
        f"(gate >= {summary['thresholds']['sidecar']:.1f}), cached "
        f"replay {summary['coldpath_cache_speedup_at_max_size']:.1f}x "
        f"(gate >= {summary['thresholds']['cache']:.1f}), "
        f"{summary['coldpath_disagreements']} disagreements, "
        f"{summary['coldpath_wrong_answers']} wrong answers — "
        f"{'pass' if summary['pass'] else 'FAIL'}"
    )


def check_reports(paths: Sequence[Path]) -> List[str]:
    """Scan committed trajectories; return human-readable failures.

    Every ``*_median_speedup_at_max_size`` entry in each report's
    summary must clear :data:`CHECK_FLOOR` — a trajectory where the
    engine lost to the reference is a regression, full stop.  Every
    report must also carry zero per-case errors, and a (full-size)
    planner trajectory must additionally clear its pick-rate and
    overhead gates.
    """
    failures = []
    for path in paths:
        try:
            report = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            failures.append(f"{path}: unreadable ({exc})")
            continue
        schema = report.get("schema", "")
        if not str(schema).startswith("repro-bench-"):
            failures.append(f"{path}: unrecognised schema {schema!r}")
            continue
        summary = report.get("summary", {})
        errors = summary.get("errors", 0)
        if errors:
            failures.append(f"{path}: {errors} per-case errors recorded")
        if str(schema).startswith("repro-bench-serve"):
            # The serve trajectory has no reference engine to beat —
            # its gates are correctness, chaos tolerance, and (full
            # size only) closed-loop throughput scaling.
            wrong = summary.get("serve_wrong_answers")
            if wrong != 0:
                failures.append(
                    f"{path}: serve_wrong_answers = {wrong!r} "
                    "(must be exactly 0)"
                )
            chaos_errors = summary.get("serve_fault_error_rate")
            if chaos_errors != 0.0:
                failures.append(
                    f"{path}: serve_fault_error_rate = {chaos_errors!r} "
                    "(injected faults must degrade, not error)"
                )
            if not report.get("quick", False):
                scale = summary.get("serve_scale_at_8_clients")
                if (
                    not isinstance(scale, (int, float))
                    or scale < SERVE_SCALE_THRESHOLD
                ):
                    failures.append(
                        f"{path}: serve_scale_at_8_clients = {scale!r} "
                        f"is below the {SERVE_SCALE_THRESHOLD:.1f}x gate"
                    )
                ratio = summary.get("serve_fault_p99_ratio")
                if (
                    not isinstance(ratio, (int, float))
                    or not 0.0 < ratio <= SERVE_FAULT_P99_THRESHOLD
                ):
                    failures.append(
                        f"{path}: serve_fault_p99_ratio = {ratio!r} "
                        f"exceeds the {SERVE_FAULT_P99_THRESHOLD:.1f}x "
                        "chaos-latency gate"
                    )
            continue
        if str(schema).startswith("repro-bench-coldpath"):
            # The coldpath trajectory measures the engine against its
            # own cold start, not the reference — its gates are answer
            # agreement everywhere plus (full size only) the sidecar
            # and result-cache speedup floors.
            disagreements = summary.get("coldpath_disagreements")
            if disagreements != 0:
                failures.append(
                    f"{path}: coldpath_disagreements = "
                    f"{disagreements!r} (sidecar and rebuild answers "
                    "must agree with the naive loop)"
                )
            wrong = summary.get("coldpath_wrong_answers")
            if wrong != 0:
                failures.append(
                    f"{path}: coldpath_wrong_answers = {wrong!r} "
                    "(cached replays must be byte-identical)"
                )
            if not report.get("quick", False):
                sidecar = summary.get(
                    "coldpath_sidecar_speedup_at_max_size"
                )
                if (
                    not isinstance(sidecar, (int, float))
                    or sidecar < COLDPATH_SIDECAR_THRESHOLD
                ):
                    failures.append(
                        f"{path}: coldpath_sidecar_speedup_at_max_size "
                        f"= {sidecar!r} is below the "
                        f"{COLDPATH_SIDECAR_THRESHOLD:.1f}x gate"
                    )
                cache = summary.get("coldpath_cache_speedup_at_max_size")
                if (
                    not isinstance(cache, (int, float))
                    or cache < COLDPATH_CACHE_THRESHOLD
                ):
                    failures.append(
                        f"{path}: coldpath_cache_speedup_at_max_size = "
                        f"{cache!r} is below the "
                        f"{COLDPATH_CACHE_THRESHOLD:.1f}x gate"
                    )
            continue
        medians = {
            key: value
            for key, value in summary.items()
            if key.endswith("_median_speedup_at_max_size")
        }
        if not medians:
            failures.append(f"{path}: summary has no median speedups")
            continue
        for key, value in sorted(medians.items()):
            if not isinstance(value, (int, float)) or value < CHECK_FLOOR:
                failures.append(
                    f"{path}: {key} = {value!r} is below the "
                    f"{CHECK_FLOOR:.1f}x floor"
                )
        if str(schema).startswith("repro-bench-planner") and not report.get(
            "quick", False
        ):
            pick = summary.get("planner_pick_fraction")
            if (
                not isinstance(pick, (int, float))
                or pick < PLANNER_PICK_THRESHOLD
            ):
                failures.append(
                    f"{path}: planner_pick_fraction = {pick!r} is below "
                    f"the {PLANNER_PICK_THRESHOLD:.0%} gate"
                )
            overhead = summary.get("planner_median_auto_vs_best_at_max_size")
            if (
                not isinstance(overhead, (int, float))
                or overhead > PLANNER_OVERHEAD_THRESHOLD
            ):
                failures.append(
                    f"{path}: planner_median_auto_vs_best_at_max_size = "
                    f"{overhead!r} exceeds the "
                    f"{PLANNER_OVERHEAD_THRESHOLD:.1f}x gate"
                )
        if str(schema).startswith("repro-bench-store") and not report.get(
            "quick", False
        ):
            flat = summary.get("store_warm_flat_ratio")
            if (
                not isinstance(flat, (int, float))
                or not 0.0 < flat <= STORE_FLAT_THRESHOLD
            ):
                failures.append(
                    f"{path}: store_warm_flat_ratio = {flat!r} exceeds "
                    f"the {STORE_FLAT_THRESHOLD:.1f}x flat-latency gate"
                )
            rss = summary.get("store_ingest_rss_ratio")
            if (
                not isinstance(rss, (int, float))
                or not 0.0 < rss <= STORE_RSS_THRESHOLD
            ):
                failures.append(
                    f"{path}: store_ingest_rss_ratio = {rss!r} exceeds "
                    f"the {STORE_RSS_THRESHOLD:.1f}x sublinear-RSS gate"
                )
            repair = summary.get("store_repair_median_speedup_at_max_size")
            if (
                not isinstance(repair, (int, float))
                or repair < STORE_REPAIR_THRESHOLD
            ):
                failures.append(
                    f"{path}: store_repair_median_speedup_at_max_size = "
                    f"{repair!r} is below the "
                    f"{STORE_REPAIR_THRESHOLD:.1f}x gate"
                )
        if str(schema).startswith("repro-bench-kernel") and not report.get(
            "quick", False
        ):
            stacked = summary.get("kernel_median_speedup_at_max_size")
            if (
                not isinstance(stacked, (int, float))
                or stacked < KERNEL_THRESHOLD
            ):
                failures.append(
                    f"{path}: kernel_median_speedup_at_max_size = "
                    f"{stacked!r} is below the "
                    f"{KERNEL_THRESHOLD:.1f}x gate"
                )
    return failures


def _print_report(report: Dict) -> None:
    print(f"engine benchmark (seed={report['seed']}, "
          f"quick={report['quick']})")
    print("\nFO satisfying-assignment relations (reference vs engine):")
    for row in report["fo"]["rows"]:
        print(
            f"  n={row['n']:>4}  {row['formula']:<18} "
            f"ref={row['reference_seconds'] * 1000:>10.2f}ms  "
            f"eng={row['engine_seconds'] * 1000:>8.3f}ms  "
            f"speedup={row['speedup']:>8.1f}x"
        )
    print("\nXPath selections from the root (reference vs engine):")
    for row in report["xpath"]["rows"]:
        print(
            f"  n={row['n']:>4}  {row['expression']:<14} "
            f"ref={row['reference_seconds'] * 1000:>8.3f}ms  "
            f"eng={row['engine_seconds'] * 1000:>8.3f}ms  "
            f"speedup={row['speedup']:>6.1f}x"
        )
    summary = report["summary"]
    print(
        f"\nmedian speedups: FO {summary['fo_median_speedup_at_max_size']:.1f}x "
        f"at n={summary['fo_max_size']}, "
        f"XPath {summary['xpath_median_speedup_at_max_size']:.1f}x "
        f"at n={summary['xpath_max_size']} "
        f"(gates: {summary['thresholds']['fo']:.0f}x / "
        f"{summary['thresholds']['xpath']:.0f}x — "
        f"{'pass' if summary['pass'] else 'FAIL'})"
    )


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the indexed engines against the reference "
        "evaluators and write the trajectory to a JSON file.",
    )
    parser.add_argument(
        "--suite",
        choices=(
            "engine", "walk", "corpus", "planner", "kernel", "store",
            "serve", "coldpath",
        ),
        default="engine",
        help="engine: FO + XPath vs the indexed engines "
        "(BENCH_engine.json); walk: caterpillar + TWA vs the "
        "compiled walking engine (BENCH_walk.json); corpus: "
        "set-at-a-time batches vs the naive per-call loop "
        "(BENCH_corpus.json); planner: engine=auto vs the manual "
        "engine choices (BENCH_planner.json); kernel: the stacked "
        "shard executor vs warm per-tree batches (BENCH_kernel.json); "
        "store: disk-backed corpus ingest, fixed-window batches and "
        "incremental index repair (BENCH_store.json); serve: the "
        "concurrent query service under closed-loop load and injected "
        "faults (BENCH_serve.json); coldpath: cold sidecar windows vs "
        "rebuild-from-pickle plus the generation-keyed result cache "
        "(BENCH_coldpath.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny sizes only (seconds, for smoke tests and CI)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=f"output JSON path (default: ./{DEFAULT_OUTPUT} or "
        f"./{WALK_DEFAULT_OUTPUT} per --suite)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="timing repetitions per measurement (median; the "
        "sub-millisecond engine side always gets at least 3)",
    )
    parser.add_argument(
        "--check",
        nargs="*",
        metavar="JSON",
        default=None,
        help="instead of benchmarking, verify committed BENCH_*.json "
        "trajectories never report a median speedup below 1.0 "
        "(default: all BENCH_*.json in the current directory)",
    )
    opts = parser.parse_args(argv)
    if opts.check is not None:
        paths = [Path(p) for p in opts.check] or sorted(
            Path(".").glob("BENCH_*.json")
        )
        if not paths:
            print("bench-check: no BENCH_*.json files found")
            return 1
        failures = check_reports(paths)
        for line in failures:
            print(f"bench-check: {line}")
        if not failures:
            print(f"bench-check: {len(paths)} trajectories clear the "
                  f"{CHECK_FLOOR:.1f}x floor")
        return 1 if failures else 0
    if opts.suite == "coldpath":
        report = run_coldpath_suite(
            quick=opts.quick, seed=opts.seed, repeats=opts.repeats
        )
        _print_coldpath_report(report)
        default_output = COLDPATH_DEFAULT_OUTPUT
    elif opts.suite == "serve":
        report = run_serve_suite(
            quick=opts.quick, seed=opts.seed, repeats=opts.repeats
        )
        _print_serve_report(report)
        default_output = SERVE_DEFAULT_OUTPUT
    elif opts.suite == "store":
        report = run_store_suite(
            quick=opts.quick, seed=opts.seed, repeats=opts.repeats
        )
        _print_store_report(report)
        default_output = STORE_DEFAULT_OUTPUT
    elif opts.suite == "kernel":
        report = run_kernel_suite(
            quick=opts.quick, seed=opts.seed, repeats=opts.repeats
        )
        _print_kernel_report(report)
        default_output = KERNEL_DEFAULT_OUTPUT
    elif opts.suite == "planner":
        report = run_planner_suite(
            quick=opts.quick, seed=opts.seed, repeats=opts.repeats
        )
        _print_planner_report(report)
        default_output = PLANNER_DEFAULT_OUTPUT
    elif opts.suite == "corpus":
        report = run_corpus_suite(
            quick=opts.quick, seed=opts.seed, repeats=opts.repeats
        )
        _print_corpus_report(report)
        default_output = CORPUS_DEFAULT_OUTPUT
    elif opts.suite == "walk":
        report = run_walk_benchmark(
            quick=opts.quick, seed=opts.seed, repeats=opts.repeats
        )
        _print_walk_report(report)
        default_output = WALK_DEFAULT_OUTPUT
    else:
        report = run_benchmark(
            quick=opts.quick, seed=opts.seed, repeats=opts.repeats
        )
        _print_report(report)
        default_output = DEFAULT_OUTPUT
    path = Path(opts.output if opts.output is not None else default_output)
    path.write_text(json.dumps(report, ensure_ascii=False, indent=2) + "\n")
    print(f"\nwrote {path}")
    return 0 if report["summary"]["pass"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
