"""Tree-walking tree transducers — the §8 "further research" output
model, built in the stripped-down-XSLT shape of [4].

>>> from repro.trees import parse_term, format_term
>>> from repro.transducer import identity_transducer, run_transducer
>>> t = parse_term("a(b[a=1], c)")
>>> run_transducer(identity_transducer(), t) == t
True
"""

from .model import (
    Apply,
    AttrSource,
    COPY_LABEL,
    ConstAttr,
    CopyAttr,
    CopyLabel,
    Out,
    OutNode,
    TWTransducer,
    Template,
    TransducerError,
    apply_templates,
    out,
    run_transducer,
)
from .examples import (
    catalog_report_transducer,
    flatten_leaves_transducer,
    identity_transducer,
    prune_spec,
    prune_transducer,
)

__all__ = [
    "Apply",
    "AttrSource",
    "COPY_LABEL",
    "ConstAttr",
    "CopyAttr",
    "CopyLabel",
    "Out",
    "OutNode",
    "TWTransducer",
    "Template",
    "TransducerError",
    "apply_templates",
    "out",
    "run_transducer",
    "catalog_report_transducer",
    "flatten_leaves_transducer",
    "identity_transducer",
    "prune_spec",
    "prune_transducer",
]
