"""Stock transducers with specifications.

* :func:`identity_transducer` — copies the input tree verbatim;
* :func:`prune_transducer` — copies but drops every subtree rooted at a
  given label;
* :func:`flatten_leaves_transducer` — replaces the document with a flat
  list of its leaves;
* :func:`catalog_report_transducer` — the XSLT-motivating scenario:
  turns a catalog into a per-department report.
"""

from __future__ import annotations

from typing import Sequence

from ..logic import tree_fo as T
from ..logic.exists_star import X, Y, children_selector, leaves_selector, selector
from ..trees.tree import Tree
from .model import (
    COPY_LABEL,
    CopyAttr,
    TWTransducer,
    Template,
    apply_templates,
    out,
)


def _copy_attrs(attributes: Sequence[str]):
    return {name: CopyAttr(name) for name in attributes}


def identity_transducer(attributes: Sequence[str] = ("a",)) -> TWTransducer:
    """Copies the input: one generic template that emits the current
    node (label and attributes copied) and recurses over the children."""
    body = out(
        COPY_LABEL,
        _copy_attrs(attributes),
        apply_templates(children_selector(), "copy"),
    )
    return TWTransducer(
        templates=(Template("copy", (body,)),),
        initial="copy",
        name="identity",
    )


def prune_transducer(
    drop_label: str, attributes: Sequence[str] = ("a",)
) -> TWTransducer:
    """Copies the input but silently drops every subtree whose root is
    labelled ``drop_label`` (the dropping template produces nothing)."""
    copy_body = out(
        COPY_LABEL,
        _copy_attrs(attributes),
        apply_templates(children_selector(), "copy"),
    )
    return TWTransducer(
        templates=(
            Template("copy", (), label=drop_label),  # matched first: emit nothing
            Template("copy", (copy_body,)),
        ),
        initial="copy",
        name=f"prune-{drop_label}",
    )


def prune_spec(tree: Tree, drop_label: str) -> Tree:
    """Reference implementation of pruning (direct recursion)."""
    from ..trees.tree import TreeNode
    from ..trees.values import BOTTOM

    def build(node) -> TreeNode:
        builder = TreeNode(tree.label(node))
        for attr in tree.attributes:
            value = tree.val(attr, node)
            if value is not BOTTOM:
                builder.attrs[attr] = value
        for child in tree.children(node):
            if tree.label(child) != drop_label:
                builder.children.append(build(child))
        return builder

    if tree.label(()) == drop_label:
        raise ValueError("cannot prune the root itself")
    return Tree.build(build(()), attributes=tree.attributes)


def flatten_leaves_transducer(
    attributes: Sequence[str] = ("a",), list_label: str = "leaves"
) -> TWTransducer:
    """Document → flat list of its leaf nodes, attributes preserved."""
    leaf_body = out(COPY_LABEL, _copy_attrs(attributes))
    root_or_leaf = selector(
        T.disj(
            T.conj(T.Desc(X, Y), T.Leaf(Y)),
            T.conj(T.NodeEq(X, Y), T.Leaf(Y)),
        )
    )
    return TWTransducer(
        templates=(
            Template(
                "start",
                (out(list_label, {}, apply_templates(root_or_leaf, "leaf")),),
            ),
            Template("leaf", (leaf_body,)),
        ),
        initial="start",
        name="flatten-leaves",
    )


def catalog_report_transducer() -> TWTransducer:
    """catalog(dept(item…)…) → report(dept-line(item-ref…)…).

    The XSLT pattern the paper's introduction gestures at: templates
    drive structural recursion through XPath-selected nodes.
    """
    item_ref = out("item-ref", {"cur": CopyAttr("cur"), "price": CopyAttr("price")})
    dept_line = out(
        "dept-line",
        {"name": CopyAttr("name")},
        # XPath string selector; in the paper's dialect a relative
        # path's first test applies to the context node (the dept).
        apply_templates("dept/item", "item"),
    )
    report = out("report", {}, apply_templates("catalog/dept", "dept"))
    return TWTransducer(
        templates=(
            Template("start", (report,), label="catalog"),
            Template("dept", (dept_line,), label="dept"),
            Template("item", (item_ref,), label="item"),
        ),
        initial="start",
        name="catalog-report",
        missing_template="error",
    )
