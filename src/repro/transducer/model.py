"""Tree-walking tree transducers — the output side the paper defers.

Section 8: "one immediate drawback of the current approach is that the
formalisms under consideration do not generate output.  This is the
subject of further research."  This module supplies that missing piece
in the shape the paper itself motivates: stripped-down XSLT ([4]) —
*templates* matched on (state, label, position) whose bodies build
output forests and recurse via ``apply-templates`` over FO(∃*)
selectors (the paper's ``atp``, now producing trees instead of
relations).

Semantics of ``process(u, q)``:

* find the unique template matching state q at node u (label + position
  tests), else the configured fallback (empty output / error);
* instantiate the body: an :class:`OutNode` becomes an output node —
  label either fixed or copied from u, attributes either constants or
  copied from u's attributes; an :class:`Apply` splices in the
  concatenation of ``process(v, q')`` over the selected nodes v in
  document order;
* a (node, state) pair re-entered while still being processed is an
  infinite recursion — error (the transduction is not defined).

``run_transducer`` returns the output :class:`Tree` (the result forest
wrapped in a root when requested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..automata.rules import ANYWHERE, PositionTest
from ..logic.exists_star import ExistsStarQuery
from ..trees.node import NodeId
from ..trees.tree import Tree, TreeNode
from ..trees.values import BOTTOM, DataValue, MaybeValue


class TransducerError(RuntimeError):
    """Raised on missing templates (strict mode), ambiguity, or
    divergence."""


# -- attribute sources -------------------------------------------------------------


@dataclass(frozen=True)
class ConstAttr:
    """Emit a fixed value."""

    value: DataValue


@dataclass(frozen=True)
class CopyAttr:
    """Copy the current input node's attribute (⊥ values are omitted)."""

    name: str


AttrSource = Union[ConstAttr, CopyAttr]


class CopyLabel:
    """Sentinel: use the current input node's label."""

    _instance = None

    def __new__(cls) -> "CopyLabel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<copy-label>"


COPY_LABEL = CopyLabel()


# -- output templates ----------------------------------------------------------------


@dataclass(frozen=True)
class OutNode:
    """One output element; children interleave nested nodes and
    apply-templates holes."""

    label: Union[str, CopyLabel]
    attrs: Tuple[Tuple[str, AttrSource], ...] = ()
    children: Tuple["Out", ...] = ()


@dataclass(frozen=True)
class Apply:
    """``apply-templates select=φ mode=state`` — the transducer's atp."""

    selector: ExistsStarQuery
    state: str


Out = Union[OutNode, Apply]


@dataclass(frozen=True)
class Template:
    """Matched on (state, label?, position); body is an output forest."""

    state: str
    output: Tuple[Out, ...]
    label: Optional[str] = None
    position: PositionTest = ANYWHERE


@dataclass(frozen=True)
class TWTransducer:
    """A deterministic tree-walking tree transducer."""

    templates: Tuple[Template, ...]
    initial: str
    name: str = "T"
    missing_template: str = "empty"  # or "error"

    def __post_init__(self) -> None:
        if self.missing_template not in ("empty", "error"):
            raise TransducerError(
                f"missing_template must be 'empty' or 'error', got "
                f"{self.missing_template!r}"
            )

    def states(self) -> Tuple[str, ...]:
        out = {self.initial}
        for template in self.templates:
            out.add(template.state)
            for piece in template.output:
                out |= _applied_states(piece)
        return tuple(sorted(out))


def _applied_states(piece: Out) -> Set[str]:
    if isinstance(piece, Apply):
        return {piece.state}
    out: Set[str] = set()
    for child in piece.children:
        out |= _applied_states(child)
    return out


# -- construction helpers (the template DSL) ---------------------------------------------


def out(
    label: Union[str, CopyLabel],
    attrs: Optional[Dict[str, Union[AttrSource, DataValue]]] = None,
    *children: Out,
) -> OutNode:
    """Build an output node; plain attribute values become constants."""
    resolved: List[Tuple[str, AttrSource]] = []
    for name, source in (attrs or {}).items():
        if isinstance(source, (ConstAttr, CopyAttr)):
            resolved.append((name, source))
        else:
            resolved.append((name, ConstAttr(source)))
    return OutNode(label, tuple(resolved), tuple(children))


def apply_templates(
    selector: Union[ExistsStarQuery, str], state: str
) -> Apply:
    """``apply-templates``: selector is an FO(∃*) query or an XPath
    string (compiled via §2.3)."""
    if isinstance(selector, str):
        from ..xpath.compiler import compile_xpath
        from ..xpath.parser import parse_xpath

        selector = compile_xpath(parse_xpath(selector))
    return Apply(selector, state)


# -- execution ------------------------------------------------------------------------------


@dataclass
class _RunState:
    fuel: int
    produced: int = 0
    active: Set[Tuple[NodeId, str]] = field(default_factory=set)


def _find_template(
    transducer: TWTransducer, tree: Tree, node: NodeId, state: str
) -> Optional[Template]:
    """First matching template wins — the XSLT priority convention
    (put specific templates before generic fallbacks)."""
    label = tree.label(node)
    for template in transducer.templates:
        if template.state != state:
            continue
        if template.label is not None and template.label != label:
            continue
        if not template.position.matches(tree, node):
            continue
        return template
    return None


def _instantiate(
    transducer: TWTransducer,
    tree: Tree,
    node: NodeId,
    piece: Out,
    run: _RunState,
) -> List[TreeNode]:
    if isinstance(piece, Apply):
        forest: List[TreeNode] = []
        for target in piece.selector.select(tree, node):
            forest.extend(_process(transducer, tree, target, piece.state, run))
        return forest
    run.produced += 1
    if run.produced > run.fuel:
        raise TransducerError(f"output budget {run.fuel} exhausted")
    label = tree.label(node) if isinstance(piece.label, CopyLabel) else piece.label
    builder = TreeNode(label)
    for name, source in piece.attrs:
        if isinstance(source, ConstAttr):
            builder.attrs[name] = source.value
        else:
            # XSLT-style leniency: an attribute the document does not
            # declare reads as ⊥ and is omitted from the output.
            value = (
                tree.val(source.name, node)
                if source.name in tree.attributes
                else BOTTOM
            )
            if value is not BOTTOM:
                builder.attrs[name] = value
    for child in piece.children:
        builder.children.extend(
            _instantiate(transducer, tree, node, child, run)
        )
    return [builder]


def _process(
    transducer: TWTransducer,
    tree: Tree,
    node: NodeId,
    state: str,
    run: _RunState,
) -> List[TreeNode]:
    key = (node, state)
    if key in run.active:
        raise TransducerError(
            f"infinite recursion: ({node!r}, {state!r}) re-entered"
        )
    template = _find_template(transducer, tree, node, state)
    if template is None:
        if transducer.missing_template == "error":
            raise TransducerError(
                f"no template for state {state!r} at {node!r} "
                f"(label {tree.label(node)!r})"
            )
        return []
    run.active.add(key)
    try:
        forest: List[TreeNode] = []
        for piece in template.output:
            forest.extend(_instantiate(transducer, tree, node, piece, run))
        return forest
    finally:
        run.active.discard(key)


def run_transducer(
    transducer: TWTransducer,
    tree: Tree,
    wrap_root: Optional[str] = None,
    fuel: int = 100_000,
) -> Tree:
    """Transform ``tree``; the result forest must be a single tree
    unless ``wrap_root`` names a synthetic root to hold it."""
    run = _RunState(fuel=fuel)
    forest = _process(transducer, tree, (), transducer.initial, run)
    if wrap_root is not None:
        root = TreeNode(wrap_root)
        root.children.extend(forest)
        return Tree.build(root)
    if len(forest) != 1:
        raise TransducerError(
            f"transduction produced {len(forest)} roots; pass wrap_root= "
            f"to collect a forest"
        )
    return Tree.build(forest[0])
