"""Strings as monadic trees.

Section 4 of the paper works over strings, i.e. monadic trees: the
string ``d₀d₁d₂d₃`` is the tree ``σ(σ(σ(σ)))`` whose single attribute
``a`` takes the values ``d₀, …, d₃`` top-down.  These helpers convert
between Python sequences and that representation, including the *split
strings* ``f#g`` of the communication-complexity argument.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .node import NodeId
from .tree import Tree
from .values import DataValue

#: Default label of every position of a monadic tree.
STRING_LABEL = "σ"
#: Default attribute carrying the letters.
STRING_ATTR = "a"
#: The split marker of Section 4.
HASH = "#"


def string_tree(
    values: Sequence[DataValue],
    label: str = STRING_LABEL,
    attr: str = STRING_ATTR,
) -> Tree:
    """The monadic tree encoding of a data string.

    ``string_tree([d0, d1, d2])`` is σ(σ(σ)) with attribute ``a``
    holding d0 at the root, d1 at its child, d2 below.
    """
    if not values:
        raise ValueError("the paper's trees are nonempty; need >= 1 value")
    labels = {}
    attrs: dict = {attr: {}}
    address: NodeId = ()
    for value in values:
        labels[address] = label
        attrs[attr][address] = value
        address = address + (0,)
    return Tree(labels, attrs, [attr])


def tree_string(
    tree: Tree, attr: str = STRING_ATTR
) -> List[DataValue]:
    """Inverse of :func:`string_tree` — read the letters top-down."""
    out: List[DataValue] = []
    node: Optional[NodeId] = ()
    while node is not None:
        kids = tree.children(node)
        if len(kids) > 1:
            raise ValueError("tree is not monadic (a node has several children)")
        value = tree.val(attr, node)
        out.append(value)  # type: ignore[arg-type]
        node = kids[0] if kids else None
    return out


def split_string_tree(
    left: Sequence[DataValue],
    right: Sequence[DataValue],
    label: str = STRING_LABEL,
    attr: str = STRING_ATTR,
) -> Tree:
    """The split string ``f#g`` as a monadic tree.

    The marker ``#`` must not occur in ``left`` or ``right`` (Section 4
    requires f and g to be #-free).
    """
    if HASH in left or HASH in right:
        raise ValueError("f and g must not contain the # marker")
    return string_tree(list(left) + [HASH] + list(right), label, attr)


def split_positions(
    values: Sequence[DataValue],
) -> Tuple[Sequence[DataValue], int, Sequence[DataValue]]:
    """Split a data string at its unique ``#``; returns (f, index_of_#, g)."""
    marks = [i for i, v in enumerate(values) if v == HASH]
    if len(marks) != 1:
        raise ValueError(f"expected exactly one # marker, found {len(marks)}")
    b = marks[0]
    return values[:b], b, values[b + 1 :]
