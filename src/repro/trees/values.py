"""The data domain D and its distinguished non-member ⊥.

The paper fixes an infinite, recursively enumerable domain
``D = {a₁, a₂, …}`` from which attribute values are drawn, and a
symbol ``⊥ ∉ D`` carried by the attributes of delimiter nodes and by
uninitialised registers.  We model D as the set of Python strings and
ints — only *equality* on D is ever used by the logic (metafinite
structures, Grädel–Gurevich style), so any infinite hashable carrier is
adequate.
"""

from __future__ import annotations

from typing import Union


class _Bottom:
    """The unique ⊥ value.  Singleton; compares equal only to itself."""

    _instance = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __hash__(self) -> int:
        return hash("_Bottom_singleton_")

    def __reduce__(self):
        return (_Bottom, ())


BOTTOM = _Bottom()

#: A data value proper (member of D).
DataValue = Union[str, int]

#: A data value or ⊥ (what a register or delimiter attribute may hold).
MaybeValue = Union[str, int, _Bottom]


def is_data_value(value: object) -> bool:
    """True iff ``value`` is a member of D (excludes ⊥ and booleans)."""
    if isinstance(value, bool):
        return False
    return isinstance(value, (str, int))


def require_data_value(value: object) -> DataValue:
    """Validate and return ``value`` as a member of D."""
    if not is_data_value(value):
        raise TypeError(f"not a data value (member of D): {value!r}")
    return value  # type: ignore[return-value]
