"""Term syntax for attributed trees.

The concrete syntax mirrors the paper's ``σ(t₁, …, tₙ)`` notation,
extended with attribute annotations::

    a(b, c(d))                     -- plain tree
    item[price=30, cur="EUR"]      -- leaf with two attributes
    dept[name="db"](item[price=1]) -- nested

Attribute values are integers, double-quoted strings, bare identifiers
(treated as strings), or ``⊥`` / ``_|_`` for the BOTTOM value.
:func:`format_term` is the exact inverse of :func:`parse_term`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..resilience.errors import ParseError
from .tree import Tree, TreeError, TreeNode
from .values import BOTTOM, MaybeValue


class TermSyntaxError(TreeError, ParseError):
    """Raised on malformed term syntax, with position information."""

    def __init__(self, message: str, text: str, pos: int) -> None:
        super().__init__(f"{message} at position {pos}: ...{text[pos:pos + 20]!r}")
        self.pos = pos


_IDENT_EXTRA = "_-▽▷◁△#σδ"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in _IDENT_EXTRA


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, ch: str) -> None:
        self.skip_ws()
        if self.peek() != ch:
            raise TermSyntaxError(f"expected {ch!r}", self.text, self.pos)
        self.pos += 1

    def ident(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and _is_ident_char(self.text[self.pos]):
            self.pos += 1
        if self.pos == start:
            raise TermSyntaxError("expected a label or identifier", self.text, self.pos)
        return self.text[start : self.pos]

    def value(self) -> MaybeValue:
        self.skip_ws()
        ch = self.peek()
        if ch == '"':
            self.pos += 1
            out: List[str] = []
            while True:
                if self.pos >= len(self.text):
                    raise TermSyntaxError("unterminated string", self.text, self.pos)
                c = self.text[self.pos]
                self.pos += 1
                if c == '"':
                    break
                if c == "\\":
                    if self.pos >= len(self.text):
                        raise TermSyntaxError("dangling escape", self.text, self.pos)
                    out.append(self.text[self.pos])
                    self.pos += 1
                else:
                    out.append(c)
            return "".join(out)
        if ch == "⊥":
            self.pos += 1
            return BOTTOM
        if ch == "-" or ch.isdigit():
            start = self.pos
            if ch == "-":
                self.pos += 1
            while self.pos < len(self.text) and self.text[self.pos].isdigit():
                self.pos += 1
            if self.pos == start or self.text[start:self.pos] == "-":
                raise TermSyntaxError("expected a number", self.text, start)
            return int(self.text[start : self.pos])
        word = self.ident()
        if word == "_|_":
            return BOTTOM
        return word


def _parse_node(sc: _Scanner) -> TreeNode:
    label = sc.ident()
    node = TreeNode(label)
    sc.skip_ws()
    if sc.peek() == "[":
        sc.expect("[")
        sc.skip_ws()
        if sc.peek() != "]":
            while True:
                name = sc.ident()
                sc.expect("=")
                node.attrs[name] = sc.value()
                sc.skip_ws()
                if sc.peek() == ",":
                    sc.expect(",")
                    continue
                break
        sc.expect("]")
        sc.skip_ws()
    if sc.peek() == "(":
        sc.expect("(")
        sc.skip_ws()
        if sc.peek() != ")":
            while True:
                node.children.append(_parse_node(sc))
                sc.skip_ws()
                if sc.peek() == ",":
                    sc.expect(",")
                    continue
                break
        sc.expect(")")
    return node


def parse_term(text: str, attributes: Optional[Sequence[str]] = None) -> Tree:
    """Parse term syntax into a :class:`Tree`.

    ``attributes`` fixes the attribute set A explicitly; by default A is
    the set of attribute names that occur in the term.
    """
    sc = _Scanner(text)
    root = _parse_node(sc)
    sc.skip_ws()
    if sc.pos != len(sc.text):
        raise TermSyntaxError("trailing input", sc.text, sc.pos)
    return Tree.build(root, attributes)


def _format_value(value: MaybeValue) -> str:
    if value is BOTTOM:
        return "⊥"
    if isinstance(value, int):
        return str(value)
    if value.isalnum() and not value.isdigit() and value:
        return value
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def format_term(tree: Tree, node: Tuple[int, ...] = ()) -> str:
    """Render ``tree`` (from ``node`` down) back into term syntax.

    Attributes that are ⊥ on a node are omitted, so
    ``parse_term(format_term(t))`` reproduces ``t`` whenever A is
    inferable (every attribute has a non-⊥ value somewhere).
    """
    parts = [tree.label(node)]
    attr_items = [
        (a, tree.val(a, node))
        for a in tree.attributes
        if tree.val(a, node) is not BOTTOM
    ]
    if attr_items:
        inner = ", ".join(f"{a}={_format_value(v)}" for a, v in attr_items)
        parts.append(f"[{inner}]")
    kids = tree.children(node)
    if kids:
        inner = ", ".join(format_term(tree, k) for k in kids)
        parts.append(f"({inner})")
    return "".join(parts)


def iter_term_stream(stream) -> "Iterator[Tree]":
    """Incrementally parse newline-delimited term syntax.

    One term per line; blank lines and ``#`` comment lines are skipped.
    Reading is line-at-a-time, so — like
    :func:`repro.trees.xmlio.iter_xml_stream` — memory stays bounded by
    one record however long the input is."""
    if isinstance(stream, str):
        import io

        stream = io.StringIO(stream)
    for line in stream:
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        yield parse_term(text)
