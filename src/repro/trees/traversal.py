"""Traversals and node numberings.

Section 7 of the paper represents work-tape contents as numbers via the
*in-order* of the tree ("the root represents zero"), so in-order
numbering is a first-class citizen here, together with the usual
pre/post orders and utility walks.

For unranked trees we use the standard generalisation of in-order:
visit the first child's subtree, then the node itself, then the
remaining children's subtrees.  On monadic trees (strings) this
degenerates sensibly, and the root of a leaf-only tree is number 0 —
matching the paper's "the tape initially contains 0, [so] the tape
pebble is placed on the root" only up to choice of order; what the
constructions actually need is *some* fixed bijection Dom(t) → {0, …,
|t|−1} that a walker can compute locally, which all three orders
provide.  We expose all three.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .node import NodeId
from .tree import Tree


def preorder(tree: Tree) -> Tuple[NodeId, ...]:
    """Document order (already cached on the tree)."""
    return tree.nodes


def postorder(tree: Tree) -> Tuple[NodeId, ...]:
    """Children before parents (already cached on the tree)."""
    return tree.nodes_postorder


def inorder(tree: Tree) -> Tuple[NodeId, ...]:
    """Generalised in-order: first child, node, remaining children."""
    out: List[NodeId] = []

    def visit(u: NodeId) -> None:
        kids = tree.children(u)
        if kids:
            visit(kids[0])
        out.append(u)
        for kid in kids[1:]:
            visit(kid)

    visit(())
    return tuple(out)


def numbering(
    tree: Tree, order: Callable[[Tree], Tuple[NodeId, ...]] = inorder
) -> Dict[NodeId, int]:
    """The bijection Dom(t) → {0, …, |t|−1} induced by ``order``."""
    return {u: i for i, u in enumerate(order(tree))}


def node_at(
    tree: Tree, index: int, order: Callable[[Tree], Tuple[NodeId, ...]] = inorder
) -> NodeId:
    """The node numbered ``index`` under ``order``."""
    seq = order(tree)
    if not 0 <= index < len(seq):
        raise IndexError(f"index {index} out of range for tree of size {len(seq)}")
    return seq[index]


def depth_first_edges(tree: Tree) -> Iterator[Tuple[NodeId, NodeId, str]]:
    """The Euler tour of a tree as (from, to, direction) walker moves.

    Yields the exact sequence of ↓/→/↑ moves a depth-first tree-walking
    automaton performs; useful for tests of walker completeness.
    """
    def visit(u: NodeId) -> Iterator[Tuple[NodeId, NodeId, str]]:
        kids = tree.children(u)
        if not kids:
            return
        yield (u, kids[0], "down")
        yield from visit(kids[0])
        prev = kids[0]
        for kid in kids[1:]:
            yield (prev, kid, "right")
            yield from visit(kid)
            prev = kid
        yield (prev, u, "up")

    yield from visit(())


def leaves(tree: Tree) -> Tuple[NodeId, ...]:
    """All leaves in document order."""
    return tuple(u for u in tree.nodes if tree.is_leaf(u))


def depth_of_tree(tree: Tree) -> int:
    """Length of the longest root-to-leaf path (single node ⇒ 0)."""
    return max(len(u) for u in tree.nodes)


def lowest_common_ancestor(tree: Tree, u: NodeId, v: NodeId) -> NodeId:
    """The deepest node that is an ancestor-or-self of both ``u`` and ``v``."""
    tree.require(u)
    tree.require(v)
    cut = 0
    while cut < len(u) and cut < len(v) and u[cut] == v[cut]:
        cut += 1
    return u[:cut]


def walk_path(tree: Tree, start: NodeId, moves: str) -> Optional[NodeId]:
    """Apply a string of moves (``U``p/``D``own-first-child/``L``eft/``R``ight)
    from ``start``; returns None as soon as a move falls off the tree."""
    current: Optional[NodeId] = tree.require(start)
    steps = {
        "U": tree.parent,
        "D": tree.first_child,
        "L": tree.left_sibling,
        "R": tree.right_sibling,
    }
    for move in moves:
        if current is None:
            return None
        try:
            step = steps[move]
        except KeyError:
            raise ValueError(f"unknown move {move!r}; use U/D/L/R") from None
        current = step(current)
    return current
