"""Seeded synthetic generators for attributed trees.

The paper's motivating data are XML documents; since PODS 2002 ships no
datasets, the experiment harness generates documents here.  All
generators take an explicit :class:`random.Random` (or a seed) so every
experiment is exactly reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Union

from .node import NodeId
from .tree import Tree
from .values import DataValue

RandomLike = Union[int, random.Random, None]


def as_rng(seed: RandomLike) -> random.Random:
    """Coerce a seed to a :class:`random.Random`.

    An explicit ``random.Random`` instance is returned unchanged, so a
    single seeded stream can be threaded through many generator calls
    (the differential oracle relies on this: one seed, one stream, fully
    reproducible runs).  An int seeds a fresh generator; ``None`` draws
    a fresh OS-entropy generator and is therefore *not* reproducible.
    There is no hidden module-level RNG anywhere in :mod:`repro.trees`.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


_rng = as_rng


def random_tree(
    size: int,
    alphabet: Sequence[str] = ("σ", "δ"),
    attributes: Sequence[str] = ("a",),
    value_pool: Sequence[DataValue] = tuple(range(8)),
    max_children: int = 4,
    seed: RandomLike = 0,
) -> Tree:
    """A uniform-ish random attributed tree with exactly ``size`` nodes.

    Shapes are drawn by growing the tree node by node, attaching each
    new node under a random node that has not exceeded ``max_children``;
    labels and attribute values are drawn uniformly from the pools.
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    rng = _rng(seed)
    child_count: Dict[NodeId, int] = {(): 0}
    labels: Dict[NodeId, str] = {(): rng.choice(list(alphabet))}
    open_nodes: List[NodeId] = [()]
    while len(labels) < size:
        parent = rng.choice(open_nodes)
        node = parent + (child_count[parent],)
        child_count[parent] += 1
        if child_count[parent] >= max_children:
            open_nodes.remove(parent)
        child_count[node] = 0
        open_nodes.append(node)
        labels[node] = rng.choice(list(alphabet))
    attrs = {
        name: {u: rng.choice(list(value_pool)) for u in labels}
        for name in attributes
    }
    return Tree(labels, attrs, attributes)


def random_string_values(
    length: int,
    value_pool: Sequence[DataValue] = tuple(range(8)),
    seed: RandomLike = 0,
) -> List[DataValue]:
    """A random data string (for the Section 4 string experiments)."""
    rng = _rng(seed)
    return [rng.choice(list(value_pool)) for _ in range(length)]


def full_tree(
    depth: int,
    fanout: int,
    label: str = "σ",
    attributes: Sequence[str] = (),
    value: Optional[DataValue] = None,
) -> Tree:
    """The complete ``fanout``-ary tree of the given depth.

    With ``value`` set, every node's every attribute carries it —
    useful for worst-case benchmarks with controlled shape.
    """
    if depth < 0 or fanout < 1:
        raise ValueError("need depth >= 0 and fanout >= 1")
    labels: Dict[NodeId, str] = {}

    def grow(node: NodeId, remaining: int) -> None:
        labels[node] = label
        if remaining == 0:
            return
        for i in range(fanout):
            grow(node + (i,), remaining - 1)

    grow((), depth)
    attrs = {
        name: {u: value for u in labels} for name in attributes
    } if value is not None else {name: {} for name in attributes}
    return Tree(labels, attrs, attributes)


def chain_tree(
    length: int,
    label: str = "σ",
    attributes: Sequence[str] = (),
) -> Tree:
    """A monadic chain of ``length`` nodes (string skeleton)."""
    if length < 1:
        raise ValueError("length must be >= 1")
    labels = {(0,) * i: label for i in range(length)}
    return Tree(labels, {name: {} for name in attributes}, attributes)


def catalog_document(
    departments: int,
    items_per_department: int,
    currencies: Sequence[str] = ("EUR", "USD"),
    uniform_departments: bool = True,
    seed: RandomLike = 0,
) -> Tree:
    """A product-catalog document exercising Example 3.2's property.

    Shape: ``catalog(dept(item, …), …)`` where every ``item`` carries a
    ``cur`` attribute.  With ``uniform_departments`` every department's
    items share a currency (the Example 3.2 property *holds*);
    otherwise at least one department mixes currencies (it *fails*),
    provided ``items_per_department >= 2`` and two currencies exist.
    """
    rng = _rng(seed)
    labels: Dict[NodeId, str] = {(): "catalog"}
    cur: Dict[NodeId, DataValue] = {}
    for d in range(departments):
        dept = (d,)
        labels[dept] = "dept"
        dept_cur = rng.choice(list(currencies))
        for i in range(items_per_department):
            item = dept + (i,)
            labels[item] = "item"
            cur[item] = dept_cur
    if not uniform_departments:
        if departments < 1 or items_per_department < 2 or len(set(currencies)) < 2:
            raise ValueError("cannot break uniformity with these parameters")
        victim = (rng.randrange(departments), 0)
        others = [c for c in currencies if c != cur[victim]]
        cur[victim] = rng.choice(others)
    return Tree(labels, {"cur": cur}, ["cur"])


def auction_document(
    people: int = 4,
    items: int = 6,
    bids_per_item: int = 3,
    regions: Sequence[str] = ("europe", "namerica", "asia"),
    seed: RandomLike = 0,
) -> Tree:
    """An XMark-style auction site — the standard XML benchmark shape of
    the paper's era, for realistic query workloads.

    Structure::

        site(regions(<region>(item*)*), people(person*),
             open_auctions(auction(bid*)*))

    People carry ``name``/``country``; items ``id``/``category``;
    auctions reference an item by ``itemref``; bids carry
    ``personref``/``amount`` — so reference-chasing joins, the thing
    tree-walking with registers is for, have something to chase.
    """
    rng = _rng(seed)
    labels: Dict[NodeId, str] = {(): "site"}
    attrs: Dict[str, Dict[NodeId, DataValue]] = {
        name: {} for name in
        ("name", "country", "id", "category", "itemref", "personref", "amount")
    }

    # regions: a region element per name, items round-robin
    labels[(0,)] = "regions"
    for r, region in enumerate(regions):
        labels[(0, r)] = region
    per_region: Dict[int, int] = {r: 0 for r in range(len(regions))}
    for i in range(items):
        region = i % len(regions)
        node = (0, region, per_region[region])
        per_region[region] += 1
        labels[node] = "item"
        attrs["id"][node] = f"item{i}"
        attrs["category"][node] = rng.choice(["books", "music", "tools"])

    labels[(1,)] = "people"
    for p in range(people):
        node = (1, p)
        labels[node] = "person"
        attrs["name"][node] = f"person{p}"
        attrs["country"][node] = rng.choice(["BE", "US", "JP"])

    labels[(2,)] = "open_auctions"
    for i in range(items):
        auction = (2, i)
        labels[auction] = "auction"
        attrs["itemref"][auction] = f"item{i}"
        amount = rng.randint(5, 20)
        for b in range(bids_per_item):
            bid = auction + (b,)
            labels[bid] = "bid"
            attrs["personref"][bid] = f"person{rng.randrange(people)}"
            amount += rng.randint(1, 10)
            attrs["amount"][bid] = amount
    return Tree(labels, attrs, sorted(attrs))


def all_trees(
    size: int, alphabet: Sequence[str] = ("σ",)
) -> List[Tree]:
    """Every unranked tree shape with ``size`` nodes × every labelling.

    Exhaustive-enumeration fuel for small-instance theorem checks.
    Grows fast; intended for ``size <= 5`` with small alphabets.
    """
    if size < 1:
        raise ValueError("size must be >= 1")

    def shapes(n: int) -> List[List]:
        # A shape is a list of child shapes; n counts the root too.
        if n == 1:
            return [[]]
        out: List[List] = []
        for first in range(1, n):
            for head in shapes(first):
                for rest in forests(n - 1 - first):
                    out.append([head] + rest)
        return out

    def forests(n: int) -> List[List]:
        if n == 0:
            return [[]]
        out: List[List] = []
        for first in range(1, n + 1):
            for head in shapes(first):
                for rest in forests(n - first):
                    out.append([head] + rest)
        return out

    def label_assignments(count: int) -> List[List[str]]:
        if count == 0:
            return [[]]
        shorter = label_assignments(count - 1)
        return [[lab] + rest for lab in alphabet for rest in shorter]

    results: List[Tree] = []
    for shape in shapes(size):
        addresses: List[NodeId] = []

        def collect(node_shape: List, address: NodeId) -> None:
            addresses.append(address)
            for i, kid in enumerate(node_shape):
                collect(kid, address + (i,))

        collect(shape, ())
        for labelling in label_assignments(len(addresses)):
            results.append(
                Tree(dict(zip(addresses, labelling)), {}, [])
            )
    return results
