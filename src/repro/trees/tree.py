"""Attributed unranked Σ-trees (Definition 2.1 of the paper).

A :class:`Tree` is an unranked ordered tree whose nodes carry a label
from a finite alphabet Σ and, for every attribute name ``a`` in a fixed
finite set ``A``, a value ``λ_a(u)`` from the infinite domain D (or ⊥
for delimiter nodes).  Trees are immutable once built; all derived
structure (parent maps, document order, subtree sizes) is computed at
construction time so that navigation during automaton runs is O(1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .node import (
    NodeId,
    ROOT,
    is_ancestor,
    sibling_less,
)
from .values import BOTTOM, MaybeValue, is_data_value


class TreeError(ValueError):
    """Raised on structurally invalid tree constructions or lookups."""


class TreeNode:
    """A lightweight mutable builder node.

    Use :meth:`Tree.build` (or :func:`repro.trees.parser.parse_term`) to
    freeze a ``TreeNode`` into an immutable :class:`Tree`.
    """

    __slots__ = ("label", "children", "attrs")

    def __init__(
        self,
        label: str,
        children: Optional[Sequence["TreeNode"]] = None,
        attrs: Optional[Mapping[str, MaybeValue]] = None,
    ) -> None:
        self.label = label
        self.children: List[TreeNode] = list(children or [])
        self.attrs: Dict[str, MaybeValue] = dict(attrs or {})

    def add(self, child: "TreeNode") -> "TreeNode":
        """Append ``child`` and return it (for chained building)."""
        self.children.append(child)
        return child

    def __repr__(self) -> str:
        return f"TreeNode({self.label!r}, {len(self.children)} children)"


class Tree:
    """An immutable attributed unranked tree.

    Parameters
    ----------
    labels:
        Mapping from node address to Σ-label.  Must be prefix-closed and
        sibling-closed (if ``u+(i,)`` is present with ``i > 0`` then so
        is ``u+(i-1,)``).
    attrs:
        ``{attribute_name: {node: value}}``.  Every attribute present is
        totalised: nodes without an explicit value get ⊥ only if the
        tree is a delimited tree; otherwise a missing value is an error
        when ``attributes`` is given explicitly.
    attributes:
        The attribute set A.  Defaults to the keys of ``attrs``.
    """

    __slots__ = (
        "_labels",
        "_children",
        "_attrs",
        "_attributes",
        "_nodes",
        "_preorder_index",
        "_postorder",
        "_subtree_end",
        "_size",
    )

    def __init__(
        self,
        labels: Mapping[NodeId, str],
        attrs: Optional[Mapping[str, Mapping[NodeId, MaybeValue]]] = None,
        attributes: Optional[Sequence[str]] = None,
    ) -> None:
        if ROOT not in labels:
            raise TreeError("a tree must have a root node ε")
        self._labels: Dict[NodeId, str] = dict(labels)
        self._children: Dict[NodeId, Tuple[NodeId, ...]] = {}
        self._validate_and_index()
        attrs = attrs or {}
        if attributes is None:
            attributes = sorted(attrs.keys())
        self._attributes: Tuple[str, ...] = tuple(attributes)
        self._attrs: Dict[str, Dict[NodeId, MaybeValue]] = {}
        for name in self._attributes:
            table = dict(attrs.get(name, {}))
            for node in self._labels:
                if node not in table:
                    table[node] = BOTTOM
            for node, value in table.items():
                if node not in self._labels:
                    raise TreeError(
                        f"attribute {name!r} set on non-node {node!r}"
                    )
                if value is not BOTTOM and not is_data_value(value):
                    raise TreeError(
                        f"attribute {name!r} at {node!r} has non-D value "
                        f"{value!r}"
                    )
            self._attrs[name] = table

    # -- construction helpers ------------------------------------------------

    @classmethod
    def build(cls, root: TreeNode, attributes: Optional[Sequence[str]] = None) -> "Tree":
        """Freeze a :class:`TreeNode` builder into a :class:`Tree`."""
        labels: Dict[NodeId, str] = {}
        attrs: Dict[str, Dict[NodeId, MaybeValue]] = {}

        def visit(node: TreeNode, address: NodeId) -> None:
            labels[address] = node.label
            for name, value in node.attrs.items():
                attrs.setdefault(name, {})[address] = value
            for i, kid in enumerate(node.children):
                visit(kid, address + (i,))

        visit(root, ROOT)
        return cls(labels, attrs, attributes)

    @classmethod
    def leaf(cls, label: str, **attrs: MaybeValue) -> "Tree":
        """A single-node tree."""
        return cls.build(TreeNode(label, attrs=attrs))

    def _validate_and_index(self) -> None:
        nodes = sorted(self._labels, key=lambda u: (len(u), u))
        kids: Dict[NodeId, List[NodeId]] = {u: [] for u in nodes}
        for node in nodes:
            if node == ROOT:
                continue
            par = node[:-1]
            if par not in self._labels:
                raise TreeError(f"node {node!r} present without its parent")
            kids[par].append(node)
        for node, children in kids.items():
            children.sort(key=lambda u: u[-1])
            expected = [node + (i,) for i in range(len(children))]
            if children != expected:
                raise TreeError(
                    f"children of {node!r} are not consecutive from 0: "
                    f"{children!r}"
                )
            self._children[node] = tuple(children)
        # Document order (preorder).  ``_subtree_end[u]`` is the index
        # one past the last descendant of u in that order, so the
        # subtree of u is exactly the slice ``order[index(u):end(u)]``.
        order: List[NodeId] = []
        subtree_end: Dict[NodeId, int] = {}

        def pre(u: NodeId) -> None:
            order.append(u)
            for c in self._children[u]:
                pre(c)
            subtree_end[u] = len(order)

        post: List[NodeId] = []

        def po(u: NodeId) -> None:
            for c in self._children[u]:
                po(c)
            post.append(u)

        pre(ROOT)
        po(ROOT)
        self._nodes = tuple(order)
        self._postorder = tuple(post)
        self._preorder_index = {u: i for i, u in enumerate(order)}
        self._subtree_end = subtree_end
        self._size = len(order)

    # -- pickling -------------------------------------------------------------

    def __getstate__(self):
        """Only the defining data travels: labels, attribute tables and
        the attribute set.  Derived structure (children maps, document
        orders, subtree intervals) is a pure function of the labels and
        would roughly triple the payload, so it is rebuilt on load —
        what makes trees cheap to fan out to corpus worker processes."""
        return (self._labels, self._attrs, self._attributes)

    def __setstate__(self, state) -> None:
        labels, attrs, attributes = state
        self._labels = dict(labels)
        self._children = {}
        self._validate_and_index()
        # The tables were validated and totalised at construction time;
        # re-running the value checks on load would only slow fan-out.
        self._attributes = tuple(attributes)
        self._attrs = {name: dict(table) for name, table in attrs.items()}

    # -- basic structure -----------------------------------------------------

    @property
    def size(self) -> int:
        """Number of nodes, the paper's input-size measure ``|t|``."""
        return self._size

    def __len__(self) -> int:
        return self._size

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """All nodes in document (pre-)order."""
        return self._nodes

    @property
    def nodes_postorder(self) -> Tuple[NodeId, ...]:
        """All nodes in postorder (children before parents)."""
        return self._postorder

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attribute set A of this tree."""
        return self._attributes

    @property
    def alphabet(self) -> Tuple[str, ...]:
        """The set of labels actually occurring, sorted."""
        return tuple(sorted(set(self._labels.values())))

    def __contains__(self, node: NodeId) -> bool:
        return node in self._labels

    def require(self, node: NodeId) -> NodeId:
        """Validate that ``node`` belongs to Dom(t)."""
        if node not in self._labels:
            raise TreeError(f"node {node!r} is not in Dom(t)")
        return node

    def label(self, node: NodeId) -> str:
        """``lab_t(u)``: the Σ-label of ``node``."""
        try:
            return self._labels[node]
        except KeyError:
            raise TreeError(f"node {node!r} is not in Dom(t)") from None

    def children(self, node: NodeId) -> Tuple[NodeId, ...]:
        """The children of ``node`` in sibling order."""
        try:
            return self._children[node]
        except KeyError:
            raise TreeError(f"node {node!r} is not in Dom(t)") from None

    def degree(self, node: NodeId) -> int:
        """Number of children of ``node``."""
        return len(self.children(node))

    # -- navigation (the automaton's move functions m_d) ----------------------

    def parent(self, node: NodeId) -> Optional[NodeId]:
        """``m_↑``: the parent, or None at the root."""
        self.require(node)
        return node[:-1] if node else None

    def first_child(self, node: NodeId) -> Optional[NodeId]:
        """``m_↓``: the first child, or None at a leaf."""
        kids = self.children(node)
        return kids[0] if kids else None

    def last_child(self, node: NodeId) -> Optional[NodeId]:
        """The last child, or None at a leaf."""
        kids = self.children(node)
        return kids[-1] if kids else None

    def left_sibling(self, node: NodeId) -> Optional[NodeId]:
        """``m_←``: the left sibling, or None."""
        self.require(node)
        if not node or node[-1] == 0:
            return None
        return node[:-1] + (node[-1] - 1,)

    def right_sibling(self, node: NodeId) -> Optional[NodeId]:
        """``m_→``: the right sibling, or None."""
        self.require(node)
        if not node:
            return None
        cand = node[:-1] + (node[-1] + 1,)
        return cand if cand in self._labels else None

    # -- positional predicates (first/last child, root, leaf) ------------------

    def is_root(self, node: NodeId) -> bool:
        self.require(node)
        return node == ROOT

    def is_leaf(self, node: NodeId) -> bool:
        return not self.children(node)

    def is_first_child(self, node: NodeId) -> bool:
        self.require(node)
        return bool(node) and node[-1] == 0

    def is_last_child(self, node: NodeId) -> bool:
        self.require(node)
        return bool(node) and node[:-1] + (node[-1] + 1,) not in self._labels

    # -- the vocabulary relations (Section 2.2) --------------------------------

    def edge(self, u: NodeId, v: NodeId) -> bool:
        """``E(u, v)``: v is a child of u."""
        self.require(u)
        self.require(v)
        return len(v) == len(u) + 1 and v[: len(u)] == u

    def sibling_less(self, u: NodeId, v: NodeId) -> bool:
        """``u < v`` on siblings: same parent, u strictly earlier."""
        self.require(u)
        self.require(v)
        return sibling_less(u, v)

    def descendant(self, u: NodeId, v: NodeId) -> bool:
        """``u ≺ v``: v is a proper descendant of u."""
        self.require(u)
        self.require(v)
        return is_ancestor(u, v)

    def document_index(self, node: NodeId) -> int:
        """Position of ``node`` in document (pre-)order, 0-based."""
        self.require(node)
        return self._preorder_index[node]

    def subtree_interval(self, node: NodeId) -> Tuple[int, int]:
        """The half-open document-order interval ``[i, j)`` covering the
        subtree of ``node``: ``nodes[i] == node`` and ``nodes[i+1:j]``
        are exactly its proper descendants.  ``u ≺ v`` is equivalent to
        ``i(u) < i(v) < j(u)`` — an O(1) interval-containment test."""
        self.require(node)
        return self._preorder_index[node], self._subtree_end[node]

    def descendants(self, node: NodeId) -> Tuple[NodeId, ...]:
        """All proper descendants of ``node``, in document order (a
        contiguous slice of :attr:`nodes` — no per-node scans)."""
        start, end = self.subtree_interval(node)
        return self._nodes[start + 1 : end]

    # -- attributes -----------------------------------------------------------

    def val(self, attr: str, node: NodeId) -> MaybeValue:
        """``val_a(u) = λ_a(u)`` — the attribute value (possibly ⊥)."""
        self.require(node)
        try:
            return self._attrs[attr][node]
        except KeyError:
            raise TreeError(f"unknown attribute {attr!r}; A = {self._attributes}") from None

    def attr_table(self, attr: str) -> Mapping[NodeId, MaybeValue]:
        """The full λ_a map for one attribute (read-only view)."""
        if attr not in self._attrs:
            raise TreeError(f"unknown attribute {attr!r}; A = {self._attributes}")
        return dict(self._attrs[attr])

    def active_domain(self) -> frozenset:
        """All D-values occurring in any attribute of any node."""
        out = set()
        for table in self._attrs.values():
            for value in table.values():
                if value is not BOTTOM:
                    out.add(value)
        return frozenset(out)

    # -- derived trees ----------------------------------------------------------

    def subtree(self, node: NodeId) -> "Tree":
        """The subtree rooted at ``node``, re-addressed so ``node`` is ε."""
        self.require(node)
        cut = len(node)
        labels = {
            u[cut:]: lab
            for u, lab in self._labels.items()
            if u[:cut] == node
        }
        attrs = {
            name: {
                u[cut:]: v for u, v in table.items() if u[:cut] == node
            }
            for name, table in self._attrs.items()
        }
        return Tree(labels, attrs, self._attributes)

    def replace_subtree(self, node: NodeId, replacement: "Tree") -> "Tree":
        """A copy with the subtree at ``node`` replaced by
        ``replacement`` (re-addressed so its root sits at ``node``).

        The edit is a *single-subtree splice*: every node outside the
        subtree keeps its address, labels and values, which is what
        lets :func:`repro.engine.index.repair_index` patch an existing
        index instead of rebuilding it.  The attribute set of the
        result is the union (``self``'s attributes first)."""
        self.require(node)
        cut = len(node)
        labels = {
            u: lab for u, lab in self._labels.items() if u[:cut] != node
        }
        for v, lab in replacement._labels.items():
            labels[node + v] = lab
        names = list(self._attributes) + [
            a for a in replacement._attributes if a not in self._attributes
        ]
        attrs: Dict[str, Dict[NodeId, MaybeValue]] = {}
        for name in names:
            table: Dict[NodeId, MaybeValue] = {}
            mine = self._attrs.get(name)
            if mine:
                table.update(
                    (u, value)
                    for u, value in mine.items()
                    if u[:cut] != node
                )
            theirs = replacement._attrs.get(name)
            if theirs:
                table.update(
                    (node + v, value) for v, value in theirs.items()
                )
            attrs[name] = table
        return Tree(labels, attrs, tuple(names))

    def with_attribute(
        self, name: str, table: Mapping[NodeId, MaybeValue]
    ) -> "Tree":
        """A copy with attribute ``name`` added or replaced."""
        attrs = {a: dict(t) for a, t in self._attrs.items()}
        attrs[name] = dict(table)
        names = self._attributes if name in self._attributes else self._attributes + (name,)
        return Tree(self._labels, attrs, names)

    def relabel(self, mapping: Mapping[str, str]) -> "Tree":
        """A copy with labels renamed via ``mapping`` (identity elsewhere)."""
        labels = {u: mapping.get(lab, lab) for u, lab in self._labels.items()}
        return Tree(labels, self._attrs, self._attributes)

    # -- equality / hashing / display ------------------------------------------

    def _key(self) -> tuple:
        return (
            tuple(sorted(self._labels.items())),
            tuple(
                (name, tuple(sorted(table.items(), key=lambda kv: kv[0])))
                for name, table in sorted(self._attrs.items())
            ),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        from .parser import format_term  # local import to avoid a cycle

        text = format_term(self)
        if len(text) > 120:
            text = text[:117] + "..."
        return f"Tree({text})"

    def iter_edges(self) -> Iterator[Tuple[NodeId, NodeId]]:
        """All (parent, child) pairs in document order."""
        for u in self._nodes:
            for c in self._children[u]:
                yield (u, c)
