"""Node addresses for unranked trees.

Following the paper (Section 2.1), the set of nodes ``Dom(t)`` of a tree
is a prefix-closed subset of ``N*``: the root is the empty sequence
``ε`` and ``u·i`` is the *i*-th child of ``u``.  We represent addresses
as tuples of ints, 0-based internally (``()`` is the root, ``u + (i,)``
the (i+1)-st child of ``u``).  The functions here are pure address
arithmetic; they know nothing about any particular tree.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

NodeId = Tuple[int, ...]

ROOT: NodeId = ()


def parent(node: NodeId) -> Optional[NodeId]:
    """The parent address, or ``None`` for the root."""
    if not node:
        return None
    return node[:-1]


def child(node: NodeId, index: int) -> NodeId:
    """The address of the ``index``-th (0-based) child of ``node``."""
    if index < 0:
        raise ValueError(f"child index must be >= 0, got {index}")
    return node + (index,)


def child_index(node: NodeId) -> Optional[int]:
    """Position of ``node`` among its siblings (0-based), ``None`` for root."""
    if not node:
        return None
    return node[-1]


def left_sibling(node: NodeId) -> Optional[NodeId]:
    """Address of the left sibling, or ``None`` if first child or root."""
    if not node or node[-1] == 0:
        return None
    return node[:-1] + (node[-1] - 1,)


def right_sibling(node: NodeId) -> NodeId:
    """Address of the right sibling (may not exist in a given tree)."""
    if not node:
        raise ValueError("the root has no siblings")
    return node[:-1] + (node[-1] + 1,)


def depth(node: NodeId) -> int:
    """Distance from the root (the root has depth 0)."""
    return len(node)


def is_ancestor(u: NodeId, v: NodeId) -> bool:
    """True iff ``u`` is a *proper* ancestor of ``v`` (u ≺ v, u ≠ v)."""
    return len(u) < len(v) and v[: len(u)] == u


def is_ancestor_or_self(u: NodeId, v: NodeId) -> bool:
    """True iff ``u`` is ``v`` or a proper ancestor of it."""
    return len(u) <= len(v) and v[: len(u)] == u


def are_siblings(u: NodeId, v: NodeId) -> bool:
    """True iff ``u`` and ``v`` are distinct children of the same parent."""
    return bool(u) and bool(v) and u[:-1] == v[:-1] and u != v


def sibling_less(u: NodeId, v: NodeId) -> bool:
    """The paper's sibling order ``ui < uj`` iff ``i < j``."""
    return are_siblings(u, v) and u[-1] < v[-1]


def document_less(u: NodeId, v: NodeId) -> bool:
    """Strict document (pre-)order: ancestors precede descendants,
    earlier siblings precede later ones."""
    return u != v and (is_ancestor(u, v) or u < v)


def ancestors(node: NodeId) -> Iterable[NodeId]:
    """Proper ancestors of ``node``, closest first."""
    for cut in range(len(node) - 1, -1, -1):
        yield node[:cut]


def format_node(node: NodeId) -> str:
    """Human-readable address: ``ε`` for the root, else 1-based dotted path."""
    if not node:
        return "ε"
    return ".".join(str(i + 1) for i in node)


def parse_node(text: str) -> NodeId:
    """Inverse of :func:`format_node`."""
    text = text.strip()
    if text in ("", "ε", "e"):
        return ()
    try:
        parts = tuple(int(p) - 1 for p in text.split("."))
    except ValueError as exc:
        raise ValueError(f"bad node address {text!r}") from exc
    if any(p < 0 for p in parts):
        raise ValueError(f"node address components are 1-based: {text!r}")
    return parts
