"""A tiny XML-ish serialization for attributed trees.

The paper motivates attributed trees as abstractions of XML documents;
this module makes the abstraction concrete both ways.  The dialect is a
strict subset of XML: elements with attributes, no text nodes (mixed
content is modelled with dummy intermediate nodes per Section 2.1 of
the paper), no namespaces, no entities beyond the five standard ones.

Besides the whole-document ``to_xml``/``from_xml`` pair, the module has
a streaming half: :func:`iter_xml_stream` reads a concatenation of any
number of documents from a file-like object *incrementally* — it
buffers at most one document (plus one read chunk) at a time, which is
what lets :meth:`~repro.corpus.store.CorpusStore.ingest` build
million-tree corpora without ever holding the input in memory.
"""

from __future__ import annotations

import io
from typing import Dict, Iterator, List, Optional, Sequence, TextIO, Tuple, Union

from ..resilience.errors import ParseError
from .node import NodeId
from .tree import Tree, TreeError, TreeNode
from .values import BOTTOM, MaybeValue

_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;"), ('"', "&quot;"), ("'", "&apos;")]


def _escape(text: str) -> str:
    for raw, rep in _ESCAPES:
        text = text.replace(raw, rep)
    return text


def _unescape(text: str) -> str:
    for raw, rep in reversed(_ESCAPES):
        text = text.replace(rep, raw)
    return text


def to_xml(tree: Tree, indent: int = 2, stream: Optional[TextIO] = None) -> str:
    """Serialize a tree as XML.  Integer values get an ``int:`` prefix
    so the round-trip preserves the D-value's type; ⊥ values are
    omitted entirely.  With ``stream``, the document is also written to
    that file-like object (the text is returned either way)."""

    def fmt(value: MaybeValue) -> Optional[str]:
        if value is BOTTOM:
            return None
        if isinstance(value, int):
            return f"int:{value}"
        return _escape(value)

    lines: List[str] = []

    def emit(node: NodeId, level: int) -> None:
        pad = " " * (indent * level)
        attrs = []
        for name in tree.attributes:
            rendered = fmt(tree.val(name, node))
            if rendered is not None:
                attrs.append(f'{name}="{rendered}"')
        head = " ".join([tree.label(node)] + attrs)
        kids = tree.children(node)
        if not kids:
            lines.append(f"{pad}<{head}/>")
            return
        lines.append(f"{pad}<{head}>")
        for kid in kids:
            emit(kid, level + 1)
        lines.append(f"{pad}</{tree.label(node)}>")

    emit((), 0)
    text = "\n".join(lines) + "\n"
    if stream is not None:
        stream.write(text)
    return text


class XmlSyntaxError(TreeError, ParseError):
    """Raised on input outside the supported XML subset."""


class _XmlScanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def error(self, message: str) -> XmlSyntaxError:
        return XmlSyntaxError(f"{message} near ...{self.text[self.pos:self.pos + 30]!r}")

    def literal(self, text: str) -> bool:
        if self.text.startswith(text, self.pos):
            self.pos += len(text)
            return True
        return False

    def name(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-.:▽▷◁△σδ#"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start : self.pos]


def _parse_element(sc: _XmlScanner) -> TreeNode:
    sc.skip_ws()
    if not sc.literal("<"):
        raise sc.error("expected '<'")
    tag = sc.name()
    node = TreeNode(tag)
    while True:
        sc.skip_ws()
        if sc.literal("/>"):
            return node
        if sc.literal(">"):
            break
        attr = sc.name()
        sc.skip_ws()
        if not sc.literal("="):
            raise sc.error("expected '=' in attribute")
        sc.skip_ws()
        quote = sc.text[sc.pos : sc.pos + 1]
        if quote not in ("'", '"'):
            raise sc.error("expected quoted attribute value")
        sc.pos += 1
        end = sc.text.find(quote, sc.pos)
        if end < 0:
            raise sc.error("unterminated attribute value")
        raw = _unescape(sc.text[sc.pos : end])
        sc.pos = end + 1
        if raw.startswith("int:"):
            try:
                node.attrs[attr] = int(raw[4:])
            except ValueError:
                raise sc.error(f"bad int attribute value {raw!r}") from None
        else:
            node.attrs[attr] = raw
    # children until matching close tag
    while True:
        sc.skip_ws()
        if sc.literal("</"):
            close = sc.name()
            if close != tag:
                raise sc.error(f"mismatched close tag </{close}> for <{tag}>")
            sc.skip_ws()
            if not sc.literal(">"):
                raise sc.error("expected '>' after close tag")
            return node
        node.children.append(_parse_element(sc))


def from_xml(
    text: Union[str, TextIO], attributes: Optional[Sequence[str]] = None
) -> Tree:
    """Parse the XML subset back into a :class:`Tree`.

    ``text`` may be the document string or any file-like object with a
    ``read`` method (the whole stream is one document; use
    :func:`iter_xml_stream` for a stream of many)."""
    if not isinstance(text, str):
        text = text.read()
    sc = _XmlScanner(text)
    sc.skip_ws()
    if sc.literal("<?"):
        end = sc.text.find("?>", sc.pos)
        if end < 0:
            raise sc.error("unterminated XML declaration")
        sc.pos = end + 2
    root = _parse_element(sc)
    sc.skip_ws()
    if sc.pos != len(sc.text):
        raise sc.error("trailing content after document element")
    return Tree.build(root, attributes)


#: How much :func:`iter_xml_stream` reads per refill.  Small enough
#: that peak memory is ~one document, big enough that the scanner is
#: not syscall-bound.
_STREAM_CHUNK = 1 << 16


def iter_xml_stream(
    stream: Union[str, TextIO],
    attributes: Optional[Sequence[str]] = None,
    chunk_size: int = _STREAM_CHUNK,
) -> Iterator[Tree]:
    """Incrementally parse a concatenation of XML documents.

    The event-driven scanner tracks element nesting depth (respecting
    quoted attribute values, self-closing tags and ``<?…?>``
    declarations) and hands each complete top-level element to
    :func:`from_xml` as soon as its close tag arrives; consumed input
    is dropped immediately, so memory stays bounded by the largest
    single document regardless of stream length — the property the
    corpus ingester relies on.
    """
    if isinstance(stream, str):
        stream = io.StringIO(stream)
    buf = ""          # unconsumed input
    scan = 0          # how far the depth scanner has advanced in buf
    doc_start = -1    # offset of the current document's first "<"
    depth = 0
    exhausted = False

    def refill(keep_from: int) -> int:
        """Drop consumed input before ``keep_from``, read one more
        chunk, and return the (shifted) resume offset.  Raises at a
        mid-document end of stream."""
        nonlocal buf, doc_start, exhausted
        cut = doc_start if 0 <= doc_start < keep_from else keep_from
        if cut:
            buf = buf[cut:]
            if doc_start >= 0:
                doc_start -= cut
        chunk = stream.read(chunk_size)
        if chunk:
            buf += chunk
        else:
            exhausted = True
            if depth or doc_start >= 0 or buf[keep_from - cut:].strip():
                raise XmlSyntaxError("truncated document at end of stream")
        return keep_from - cut

    while True:
        lt = buf.find("<", scan)
        if lt < 0:
            tail = buf[scan:]
            if tail.strip():
                raise XmlSyntaxError(
                    f"expected '<', found {tail.strip()[:30]!r}"
                )
            if exhausted:
                return
            scan = refill(len(buf))
            continue
        if depth == 0 and doc_start < 0:
            if buf[scan:lt].strip():
                raise XmlSyntaxError(
                    f"expected '<', found {buf[scan:lt].strip()[:30]!r}"
                )
            doc_start = lt
        if buf.startswith("<?", lt):
            end = buf.find("?>", lt + 2)
            if end < 0:
                if exhausted:
                    raise XmlSyntaxError("unterminated XML declaration")
                if depth == 0:
                    doc_start = -1
                scan = refill(lt)
                continue
            if depth == 0:
                doc_start = -1  # a declaration is not the document
            scan = end + 2
            continue
        if len(buf) < lt + 2 and not exhausted:
            scan = refill(lt)  # can't yet tell "<x" from "</x"
            continue
        closing = buf.startswith("</", lt)
        # Find the tag's ">", skipping quoted attribute values.
        pos = lt + 1
        gt = -1
        while True:
            candidates = [
                found
                for found in (
                    buf.find(">", pos),
                    buf.find('"', pos),
                    buf.find("'", pos),
                )
                if found >= 0
            ]
            if not candidates:
                break
            hit = min(candidates)
            if buf[hit] == ">":
                gt = hit
                break
            mate = buf.find(buf[hit], hit + 1)
            if mate < 0:
                break
            pos = mate + 1
        if gt < 0:
            if exhausted:
                raise XmlSyntaxError("truncated document at end of stream")
            scan = refill(lt)  # incomplete tag: wait for more input
            continue
        scan = gt + 1
        if closing:
            depth -= 1
            if depth < 0:
                raise XmlSyntaxError("close tag without a matching open tag")
        elif buf[gt - 1] == "/":
            pass  # self-closing: depth unchanged
        else:
            depth += 1
        if depth == 0:
            yield from_xml(buf[doc_start : gt + 1], attributes)
            buf = buf[gt + 1 :]
            scan = 0
            doc_start = -1
