"""A tiny XML-ish serialization for attributed trees.

The paper motivates attributed trees as abstractions of XML documents;
this module makes the abstraction concrete both ways.  The dialect is a
strict subset of XML: elements with attributes, no text nodes (mixed
content is modelled with dummy intermediate nodes per Section 2.1 of
the paper), no namespaces, no entities beyond the five standard ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..resilience.errors import ParseError
from .node import NodeId
from .tree import Tree, TreeError, TreeNode
from .values import BOTTOM, MaybeValue

_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;"), ('"', "&quot;"), ("'", "&apos;")]


def _escape(text: str) -> str:
    for raw, rep in _ESCAPES:
        text = text.replace(raw, rep)
    return text


def _unescape(text: str) -> str:
    for raw, rep in reversed(_ESCAPES):
        text = text.replace(rep, raw)
    return text


def to_xml(tree: Tree, indent: int = 2) -> str:
    """Serialize a tree as XML.  Integer values get an ``int:`` prefix
    so the round-trip preserves the D-value's type; ⊥ values are
    omitted entirely."""

    def fmt(value: MaybeValue) -> Optional[str]:
        if value is BOTTOM:
            return None
        if isinstance(value, int):
            return f"int:{value}"
        return _escape(value)

    lines: List[str] = []

    def emit(node: NodeId, level: int) -> None:
        pad = " " * (indent * level)
        attrs = []
        for name in tree.attributes:
            rendered = fmt(tree.val(name, node))
            if rendered is not None:
                attrs.append(f'{name}="{rendered}"')
        head = " ".join([tree.label(node)] + attrs)
        kids = tree.children(node)
        if not kids:
            lines.append(f"{pad}<{head}/>")
            return
        lines.append(f"{pad}<{head}>")
        for kid in kids:
            emit(kid, level + 1)
        lines.append(f"{pad}</{tree.label(node)}>")

    emit((), 0)
    return "\n".join(lines) + "\n"


class XmlSyntaxError(TreeError, ParseError):
    """Raised on input outside the supported XML subset."""


class _XmlScanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def error(self, message: str) -> XmlSyntaxError:
        return XmlSyntaxError(f"{message} near ...{self.text[self.pos:self.pos + 30]!r}")

    def literal(self, text: str) -> bool:
        if self.text.startswith(text, self.pos):
            self.pos += len(text)
            return True
        return False

    def name(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-.:▽▷◁△σδ#"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start : self.pos]


def _parse_element(sc: _XmlScanner) -> TreeNode:
    sc.skip_ws()
    if not sc.literal("<"):
        raise sc.error("expected '<'")
    tag = sc.name()
    node = TreeNode(tag)
    while True:
        sc.skip_ws()
        if sc.literal("/>"):
            return node
        if sc.literal(">"):
            break
        attr = sc.name()
        sc.skip_ws()
        if not sc.literal("="):
            raise sc.error("expected '=' in attribute")
        sc.skip_ws()
        quote = sc.text[sc.pos : sc.pos + 1]
        if quote not in ("'", '"'):
            raise sc.error("expected quoted attribute value")
        sc.pos += 1
        end = sc.text.find(quote, sc.pos)
        if end < 0:
            raise sc.error("unterminated attribute value")
        raw = _unescape(sc.text[sc.pos : end])
        sc.pos = end + 1
        if raw.startswith("int:"):
            try:
                node.attrs[attr] = int(raw[4:])
            except ValueError:
                raise sc.error(f"bad int attribute value {raw!r}") from None
        else:
            node.attrs[attr] = raw
    # children until matching close tag
    while True:
        sc.skip_ws()
        if sc.literal("</"):
            close = sc.name()
            if close != tag:
                raise sc.error(f"mismatched close tag </{close}> for <{tag}>")
            sc.skip_ws()
            if not sc.literal(">"):
                raise sc.error("expected '>' after close tag")
            return node
        node.children.append(_parse_element(sc))


def from_xml(text: str, attributes: Optional[Sequence[str]] = None) -> Tree:
    """Parse the XML subset back into a :class:`Tree`."""
    sc = _XmlScanner(text)
    sc.skip_ws()
    if sc.literal("<?"):
        end = sc.text.find("?>", sc.pos)
        if end < 0:
            raise sc.error("unterminated XML declaration")
        sc.pos = end + 2
    root = _parse_element(sc)
    sc.skip_ws()
    if sc.pos != len(sc.text):
        raise sc.error("trailing content after document element")
    return Tree.build(root, attributes)
