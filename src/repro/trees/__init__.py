"""Attributed unranked Σ-trees — the data model of the paper (§2.1, §3).

Public surface:

* :class:`Tree`, :class:`TreeNode`, :class:`TreeError` — the tree type;
* :data:`BOTTOM`, :func:`is_data_value` — the data domain D and ⊥;
* :func:`parse_term` / :func:`format_term` — term syntax ``a(b, c[x=1])``;
* :func:`to_xml` / :func:`from_xml` — XML subset I/O;
* :func:`delim` / :func:`undelim` — the paper's delimited trees;
* :func:`string_tree` / :func:`tree_string` / :func:`split_string_tree`
  — strings as monadic trees (§4);
* traversals, numberings and seeded generators.
"""

from .node import (
    NodeId,
    ROOT,
    format_node,
    parse_node,
)
from .values import BOTTOM, DataValue, MaybeValue, is_data_value, require_data_value
from .tree import Tree, TreeError, TreeNode
from .parser import TermSyntaxError, format_term, iter_term_stream, parse_term
from .delimited import (
    DELIMITERS,
    LEAF_DELIM,
    LEFT_DELIM,
    RIGHT_DELIM,
    ROOT_DELIM,
    delim,
    is_delimiter,
    is_original_leaf,
    original_nodes,
    undelim,
)
from .strings import (
    HASH,
    STRING_ATTR,
    STRING_LABEL,
    split_positions,
    split_string_tree,
    string_tree,
    tree_string,
)
from .traversal import (
    depth_of_tree,
    inorder,
    leaves,
    lowest_common_ancestor,
    node_at,
    numbering,
    postorder,
    preorder,
    walk_path,
)
from .generators import (
    RandomLike,
    all_trees,
    as_rng,
    auction_document,
    catalog_document,
    chain_tree,
    full_tree,
    random_string_values,
    random_tree,
)
from .render import render_run, render_tree
from .xmlio import XmlSyntaxError, from_xml, iter_xml_stream, to_xml

__all__ = [
    "NodeId",
    "ROOT",
    "format_node",
    "parse_node",
    "BOTTOM",
    "DataValue",
    "MaybeValue",
    "is_data_value",
    "require_data_value",
    "Tree",
    "TreeError",
    "TreeNode",
    "TermSyntaxError",
    "format_term",
    "iter_term_stream",
    "parse_term",
    "DELIMITERS",
    "LEAF_DELIM",
    "LEFT_DELIM",
    "RIGHT_DELIM",
    "ROOT_DELIM",
    "delim",
    "is_delimiter",
    "is_original_leaf",
    "original_nodes",
    "undelim",
    "HASH",
    "STRING_ATTR",
    "STRING_LABEL",
    "split_positions",
    "split_string_tree",
    "string_tree",
    "tree_string",
    "depth_of_tree",
    "inorder",
    "leaves",
    "lowest_common_ancestor",
    "node_at",
    "numbering",
    "postorder",
    "preorder",
    "walk_path",
    "RandomLike",
    "all_trees",
    "as_rng",
    "auction_document",
    "catalog_document",
    "chain_tree",
    "full_tree",
    "random_string_values",
    "random_tree",
    "render_run",
    "render_tree",
    "XmlSyntaxError",
    "from_xml",
    "iter_xml_stream",
    "to_xml",
]
