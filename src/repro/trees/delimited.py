"""Delimited trees, the paper's ``delim(t)`` (Section 3).

Two-way string automata traditionally work on ``▷ w ◁``; the paper does
the analogous thing for trees with extra symbols.  The figure in the
published text is garbled, so we fix the following concrete reading
(documented in DESIGN.md), under which Example 3.2 works verbatim:

* a new root labelled ``▽`` is attached above the original root;
* every child sequence (including the ▽-root's) is wrapped with a left
  sentinel ``▷`` and a right sentinel ``◁``;
* every original *leaf* receives a single child labelled ``△`` — this
  matches Example 3.2's "leaf-descendants … are the parents of the
  △-labelled nodes";
* all delimiter attributes are ⊥ (⊥ ∉ D).

``delim`` is injective and :func:`undelim` is its exact inverse.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .node import NodeId
from .tree import Tree, TreeError
from .values import BOTTOM, MaybeValue

#: Label of the new super-root.
ROOT_DELIM = "▽"
#: Label of the left sentinel child.
LEFT_DELIM = "▷"
#: Label of the right sentinel child.
RIGHT_DELIM = "◁"
#: Label of the child marking an original leaf.
LEAF_DELIM = "△"

DELIMITERS = frozenset({ROOT_DELIM, LEFT_DELIM, RIGHT_DELIM, LEAF_DELIM})


def is_delimiter(label: str) -> bool:
    """True iff ``label`` is one of the four delimiter symbols."""
    return label in DELIMITERS


def delim(tree: Tree) -> Tree:
    """The delimited version of ``tree``.

    The original alphabet must not use the delimiter symbols.
    """
    for u in tree.nodes:
        if is_delimiter(tree.label(u)):
            raise TreeError(
                f"input tree already uses delimiter symbol {tree.label(u)!r}"
            )

    labels: Dict[NodeId, str] = {(): ROOT_DELIM}
    attrs: Dict[str, Dict[NodeId, MaybeValue]] = {a: {} for a in tree.attributes}

    def place(src: NodeId, dst: NodeId) -> None:
        labels[dst] = tree.label(src)
        for a in tree.attributes:
            attrs[a][dst] = tree.val(a, src)
        kids = tree.children(src)
        if not kids:
            labels[dst + (0,)] = LEAF_DELIM
            return
        labels[dst + (0,)] = LEFT_DELIM
        for i, kid in enumerate(kids):
            place(kid, dst + (i + 1,))
        labels[dst + (len(kids) + 1,)] = RIGHT_DELIM

    # The ▽-root's children: ▷, the original root, ◁.
    labels[(0,)] = LEFT_DELIM
    place((), (1,))
    labels[(2,)] = RIGHT_DELIM
    return Tree(labels, attrs, tree.attributes)


def undelim(tree: Tree) -> Tree:
    """Inverse of :func:`delim`.  Raises if ``tree`` is not delimited."""
    if tree.label(()) != ROOT_DELIM:
        raise TreeError("not a delimited tree: root is not ▽")

    labels: Dict[NodeId, str] = {}
    attrs: Dict[str, Dict[NodeId, MaybeValue]] = {a: {} for a in tree.attributes}

    def lift(src: NodeId, dst: NodeId) -> None:
        lab = tree.label(src)
        if is_delimiter(lab):
            raise TreeError(f"unexpected delimiter at interior node {src!r}")
        labels[dst] = lab
        for a in tree.attributes:
            attrs[a][dst] = tree.val(a, src)
        kids = tree.children(src)
        if len(kids) == 1 and tree.label(kids[0]) == LEAF_DELIM:
            return
        if (
            len(kids) < 2
            or tree.label(kids[0]) != LEFT_DELIM
            or tree.label(kids[-1]) != RIGHT_DELIM
        ):
            raise TreeError(f"node {src!r} lacks ▷/◁ sentinels")
        for i, kid in enumerate(kids[1:-1]):
            lift(kid, dst + (i,))

    root_kids = tree.children(())
    if (
        len(root_kids) != 3
        or tree.label(root_kids[0]) != LEFT_DELIM
        or tree.label(root_kids[2]) != RIGHT_DELIM
    ):
        raise TreeError("▽-root must have exactly the children ▷, t, ◁")
    lift(root_kids[1], ())
    return Tree(labels, attrs, tree.attributes)


def original_nodes(tree: Tree) -> Tuple[NodeId, ...]:
    """Nodes of a delimited tree carrying original (non-delimiter) labels."""
    return tuple(u for u in tree.nodes if not is_delimiter(tree.label(u)))


def is_original_leaf(tree: Tree, node: NodeId) -> bool:
    """In a delimited tree: ``node`` was a leaf of the original tree."""
    if is_delimiter(tree.label(node)):
        return False
    kids = tree.children(node)
    return len(kids) == 1 and tree.label(kids[0]) == LEAF_DELIM
