"""ASCII rendering of attributed trees and run traces.

For terminals and test failure messages::

    catalog
    ├── dept name=db
    │   ├── item cur=EUR price=30
    │   └── item cur=EUR price=2
    └── dept
        └── item cur=USD
"""

from __future__ import annotations

from typing import List, Optional

from .node import NodeId
from .tree import Tree
from .values import BOTTOM


def _node_line(tree: Tree, node: NodeId, show_attrs: bool) -> str:
    text = tree.label(node)
    if show_attrs:
        attrs = [
            f"{name}={tree.val(name, node)!r}"
            for name in tree.attributes
            if tree.val(name, node) is not BOTTOM
        ]
        if attrs:
            text += " " + " ".join(attrs)
    return text


def render_tree(
    tree: Tree,
    node: NodeId = (),
    show_attrs: bool = True,
    max_depth: Optional[int] = None,
) -> str:
    """Render the subtree at ``node`` as a box-drawing outline."""
    lines: List[str] = [_node_line(tree, node, show_attrs)]

    def visit(current: NodeId, prefix: str, depth: int) -> None:
        kids = tree.children(current)
        if max_depth is not None and depth >= max_depth:
            if kids:
                lines.append(f"{prefix}└── … ({len(kids)} children)")
            return
        for index, kid in enumerate(kids):
            last = index == len(kids) - 1
            connector = "└── " if last else "├── "
            lines.append(prefix + connector + _node_line(tree, kid, show_attrs))
            extension = "    " if last else "│   "
            visit(kid, prefix + extension, depth + 1)

    visit(node, "", 0)
    return "\n".join(lines)


def render_run(trace: List[str], limit: int = 40) -> str:
    """Render an automaton trace (``RunResult.trace``) with elision."""
    if len(trace) <= limit:
        shown = trace
        elided = 0
    else:
        head = limit * 2 // 3
        tail = limit - head
        shown = trace[:head] + [f"… ({len(trace) - limit} steps elided) …"] + trace[-tail:]
        elided = len(trace) - limit
    numbered = []
    step = 0
    for line in shown:
        if line.startswith("…"):
            numbered.append(f"      {line}")
            step += elided
        else:
            numbered.append(f"{step:4}  {line}")
            step += 1
    return "\n".join(numbered)
