"""repro — an executable reproduction of Neven, *On the Power of Walking
for Querying Tree-Structured Data* (PODS 2002).

The package implements every formal system the paper defines or relies
on, as real running code:

* :mod:`repro.trees` — attributed unranked Σ-trees, delimited trees,
  strings-as-monadic-trees, generators and XML I/O (§2.1, §3, §4);
* :mod:`repro.logic` — FO over the tree vocabulary τ_{Σ,A}, the
  FO(∃*) fragment with its extra predicates, and k-variable types (§2.2,
  §2.3, Lemma 4.3);
* :mod:`repro.store` — finite relations over D, register stores, and
  active-domain FO used for automaton guards/updates (§3);
* :mod:`repro.xpath` — the paper's XPath fragment and its compilation
  into FO(∃*) (§2.3);
* :mod:`repro.automata` — the tree-walking classes tw, tw^l, tw^r,
  tw^{r,l} of Definitions 3.1 and 5.1, with full ``atp`` look-ahead
  semantics;
* :mod:`repro.machines` — XML Turing machines (xTMs), alternation,
  resource metering, ordinary TMs and the tree encoding of Theorem 6.2;
* :mod:`repro.simulation` — the constructive directions of Theorem 7.1
  and Proposition 7.2 (pebble arithmetic, configuration graphs,
  tape-as-relation, register elimination);
* :mod:`repro.mso` — DFAs, unranked hedge automata, and look-ahead
  simulation of regular tree languages;
* :mod:`repro.hypersets` — i-hypersets, their string encodings, and the
  language L^m of Section 4;
* :mod:`repro.protocol` — the two-party communication protocol of
  Lemma 4.5 and the counting analysis of Lemma 4.6;
* :mod:`repro.queries` — a user-facing ``TreeDatabase`` facade.
"""

__version__ = "1.0.0"

from . import (  # noqa: F401  (re-exported subpackages)
    automata,
    caterpillar,
    hypersets,
    logic,
    machines,
    mso,
    pebbleautomata,
    protocol,
    queries,
    simulation,
    store,
    transducer,
    trees,
    xpath,
)
from .queries import TreeDatabase  # noqa: F401  (the headline entry point)

__all__ = [
    "automata",
    "caterpillar",
    "hypersets",
    "logic",
    "machines",
    "mso",
    "pebbleautomata",
    "protocol",
    "queries",
    "simulation",
    "store",
    "transducer",
    "trees",
    "xpath",
    "TreeDatabase",
    "__version__",
]
