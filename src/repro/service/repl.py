"""The interactive REPL: one command per line, answers printed flat.

The REPL is transport-agnostic: it drives any ``handle(request) ->
response`` callable — a local :class:`~repro.service.session.Dispatcher`
bound to one session (``repro repl FILE…``), or a
:class:`~repro.service.client.ServiceClient` pointed at a running
server (``repro repl --connect HOST:PORT``).  Because both ends speak
the same request dicts, every REPL command exercises exactly the code
path the wire protocol does.

Commands::

    xpath EXPR          ask SENTENCE        select QUERY
    cat EXPR            catrel EXPR         — one query over the corpus
    engine NAME         timeout MS          window START [STOP]
    health              stats               ping
    help                quit

Session options (``engine``/``timeout``/``window``) persist until
changed; errors print as ``error CODE: message`` and never end the
REPL — matching the server's own isolation contract.
"""

from __future__ import annotations

import sys
from typing import Callable, Optional, TextIO

from .protocol import ServiceError, raise_for_error

__all__ = ["run_repl"]

_KIND_COMMANDS = {
    "xpath": "xpath",
    "ask": "ask",
    "select": "select",
    "cat": "caterpillar",
    "catrel": "caterpillar-relation",
}

_HELP = """\
commands:
  xpath EXPR | ask SENTENCE | select QUERY | cat EXPR | catrel EXPR
  engine fast|reference|auto|vectorized    (current engine)
  timeout MS                               (per-query deadline; 0 = none)
  window START [STOP]                      (tree range; no args = all)
  health | stats | ping | help | quit
"""


def _format_cell(kind: str, cell) -> str:
    if isinstance(cell, bool):
        return "true" if cell else "false"
    if not cell:
        return "(none)"
    if kind == "caterpillar-relation":
        return ", ".join(
            f"{_node(source)}->{_node(target)}" for source, target in cell
        )
    return ", ".join(_node(node) for node in cell)


def _node(node_id) -> str:
    return "/" + "/".join(str(step) for step in node_id) if node_id else "/"


def run_repl(
    handle: Callable[[dict], dict],
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
    prompt: str = "repro> ",
    interactive: Optional[bool] = None,
) -> int:
    """Drive ``handle`` from ``stdin`` until EOF or ``quit``.

    Returns an exit code: 0 normally, 1 if the connection died."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    if interactive is None:
        interactive = stdin.isatty()
    options = {"engine": "fast"}
    window = {}

    def emit(text: str) -> None:
        print(text, file=stdout)

    while True:
        if interactive:
            stdout.write(prompt)
            stdout.flush()
        line = stdin.readline()
        if not line:
            break
        command, _, rest = line.strip().partition(" ")
        rest = rest.strip()
        if not command:
            continue
        if command in ("quit", "exit"):
            break
        if command == "help":
            emit(_HELP.rstrip())
            continue
        if command == "engine":
            if rest not in ("fast", "reference", "auto", "vectorized"):
                emit(f"error BAD_REQUEST: unknown engine {rest!r}")
                continue
            options["engine"] = rest
            continue
        if command == "timeout":
            try:
                ms = int(rest)
            except ValueError:
                emit("error BAD_REQUEST: timeout needs an integer of ms")
                continue
            if ms <= 0:
                options.pop("timeout_ms", None)
            else:
                options["timeout_ms"] = ms
            continue
        if command == "window":
            parts = rest.split()
            try:
                if not parts:
                    window.clear()
                elif len(parts) <= 2:
                    window["start"] = int(parts[0])
                    if len(parts) == 2:
                        window["stop"] = int(parts[1])
                    else:
                        window.pop("stop", None)
                else:
                    raise ValueError
            except ValueError:
                emit("error BAD_REQUEST: window takes START [STOP] integers")
            continue
        if command in ("health", "stats", "ping"):
            request = {"op": command}
        elif command in _KIND_COMMANDS:
            if not rest:
                emit(f"error BAD_REQUEST: {command} needs a query text")
                continue
            request = {
                "op": "query",
                "queries": [{"kind": _KIND_COMMANDS[command], "text": rest}],
                "options": {**options, **window},
            }
        else:
            emit(f"error BAD_REQUEST: unknown command {command!r} (try help)")
            continue
        try:
            response = raise_for_error(handle(request))
        except ServiceError as exc:
            suffix = (
                f" (retry after {exc.retry_after_ms}ms)"
                if exc.retry_after_ms is not None
                else ""
            )
            emit(f"error {exc.code}: {exc.message}{suffix}")
            continue
        except (ConnectionError, OSError) as exc:
            emit(f"connection lost: {exc}")
            return 1
        if request["op"] == "query":
            kind = request["queries"][0]["kind"]
            start = request["options"].get("start", 0)
            for offset, row in enumerate(response["results"]):
                emit(f"tree {start + offset}: {_format_cell(kind, row[0])}")
            emit(
                f"[{response['trees']} trees in "
                f"{response['elapsed_ms']:.1f}ms"
                + (
                    f", {response['degraded_chunks']} chunks degraded]"
                    if response.get("degraded_chunks")
                    else "]"
                )
            )
        else:
            emit(_format_payload(response))
    return 0


def _format_payload(response: dict) -> str:
    import json

    payload = {k: v for k, v in response.items() if k != "ok"}
    return json.dumps(payload, indent=2, ensure_ascii=False, sort_keys=True)
