"""Wire protocol of the query service: length-prefixed JSON frames.

A frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON.  The prefix makes torn input *detectable*: a reader that
gets EOF mid-body knows the frame was cut, and a prefix larger than
:data:`MAX_FRAME` is rejected before a single payload byte is read —
a hostile or confused client cannot make the server buffer gigabytes.

Requests are JSON objects with an ``op`` key::

    {"op": "query", "queries": [{"kind": "xpath", "text": "//δ"}],
     "options": {"timeout_ms": 500}}
    {"op": "health"}
    {"op": "stats"}
    {"op": "ping"}

Responses either succeed::

    {"ok": true, ...op-specific payload...}

or carry one structured error (never a traceback)::

    {"ok": false, "error": {"code": "OVERLOADED",
                            "message": "...",
                            "retry_after_ms": 25}}

The error codes are a closed set (:data:`ERROR_CODES`) so clients can
switch on them; everything unexpected maps to ``INTERNAL`` and the
*session stays up* — one bad query never costs the connection.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional, Tuple

__all__ = [
    "MAX_FRAME",
    "ERROR_CODES",
    "PARSE_ERROR",
    "RESOURCE_EXHAUSTED",
    "DEADLINE",
    "OVERLOADED",
    "BAD_REQUEST",
    "INTERNAL",
    "SHUTDOWN",
    "FrameError",
    "FrameTooLarge",
    "TornFrame",
    "ServiceError",
    "encode_frame",
    "decode_payload",
    "split_frame",
    "read_frame_from_socket",
    "error_response",
    "ok_response",
]

#: Hard cap on one frame's JSON body (1 MiB) — enforced by both ends.
MAX_FRAME = 1 << 20

#: Struct format of the length prefix: 4-byte big-endian unsigned.
_PREFIX = struct.Struct(">I")
PREFIX_SIZE = _PREFIX.size

PARSE_ERROR = "PARSE_ERROR"
RESOURCE_EXHAUSTED = "RESOURCE_EXHAUSTED"
DEADLINE = "DEADLINE"
OVERLOADED = "OVERLOADED"
BAD_REQUEST = "BAD_REQUEST"
INTERNAL = "INTERNAL"
SHUTDOWN = "SHUTDOWN"

#: The closed set of error codes a response may carry.
ERROR_CODES = (
    PARSE_ERROR,
    RESOURCE_EXHAUSTED,
    DEADLINE,
    OVERLOADED,
    BAD_REQUEST,
    INTERNAL,
    SHUTDOWN,
)


class FrameError(Exception):
    """A frame that cannot be read: torn, oversized, or undecodable."""


class FrameTooLarge(FrameError):
    """The length prefix exceeds :data:`MAX_FRAME`."""


class TornFrame(FrameError):
    """EOF arrived mid-prefix or mid-body."""


class ServiceError(Exception):
    """A structured error response, raised client-side.

    ``code`` is one of :data:`ERROR_CODES`; ``retry_after_ms`` is set
    only for ``OVERLOADED`` rejections."""

    def __init__(
        self,
        code: str,
        message: str,
        retry_after_ms: Optional[int] = None,
    ) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.retry_after_ms = retry_after_ms


# -- encoding ----------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """One wire frame for ``payload``: length prefix + compact JSON."""
    body = json.dumps(
        payload, ensure_ascii=False, separators=(",", ":")
    ).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameTooLarge(
            f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return _PREFIX.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """The JSON object inside a frame body.

    Raises :class:`FrameError` for non-JSON bodies and non-object
    payloads — the protocol only ever carries objects."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"undecodable frame body: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def split_frame(buffer: bytes) -> Tuple[Optional[bytes], bytes]:
    """``(body, rest)`` if ``buffer`` starts with one complete frame,
    else ``(None, buffer)``.  Raises :class:`FrameTooLarge` as soon as
    the prefix alone condemns the frame."""
    if len(buffer) < PREFIX_SIZE:
        return None, buffer
    (length,) = _PREFIX.unpack_from(buffer)
    if length > MAX_FRAME:
        raise FrameTooLarge(
            f"announced frame of {length} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    end = PREFIX_SIZE + length
    if len(buffer) < end:
        return None, buffer
    return buffer[PREFIX_SIZE:end], buffer[end:]


def read_frame_from_socket(sock: socket.socket) -> dict:
    """Blocking read of one frame from a connected socket (client side).

    Raises :class:`TornFrame` on EOF mid-frame and propagates a clean
    ``ConnectionError``/``TornFrame`` on a closed peer."""
    prefix = _read_exact(sock, PREFIX_SIZE, "length prefix")
    (length,) = _PREFIX.unpack(prefix)
    if length > MAX_FRAME:
        raise FrameTooLarge(
            f"announced frame of {length} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return decode_payload(_read_exact(sock, length, "frame body"))


def _read_exact(sock: socket.socket, count: int, what: str) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise TornFrame(f"EOF after {count - remaining}/{count} bytes of {what}")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- response shapes ---------------------------------------------------------


def ok_response(**payload) -> dict:
    return {"ok": True, **payload}


def error_response(
    code: str, message: str, retry_after_ms: Optional[int] = None
) -> dict:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    error = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = int(retry_after_ms)
    return {"ok": False, "error": error}


def raise_for_error(response: dict) -> dict:
    """Client-side: return a successful response, raise
    :class:`ServiceError` for an error one."""
    if response.get("ok"):
        return response
    error = response.get("error") or {}
    raise ServiceError(
        error.get("code", INTERNAL),
        error.get("message", "unspecified error"),
        error.get("retry_after_ms"),
    )
