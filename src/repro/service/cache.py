"""Generation-keyed window result caching for the query service.

A served corpus answers the same windows over and over — dashboards
refresh the same slice, clients page through stable ranges — and the
whole batch pipeline below the dispatcher is deterministic: one
``(corpus version, engine, window, queries)`` tuple has exactly one
response.  :class:`ResultCache` memoizes those responses in a bounded
thread-safe LRU.

The cache key leads with the **corpus token**
(:attr:`repro.corpus.CorpusStore.token`), which embeds the store's
manifest generation: every mutation — ``append``, ``replace``,
``compact``, ``recover`` — bumps the generation, changes the token,
and thereby orphans every cached window of the old corpus without the
cache ever being told.  Invalidation is by construction, not by
callback; a stale entry can never be *returned*, only evicted.

Entries are whole response dicts (the dispatcher's JSON-ready payload).
Hits are returned as shallow copies with ``"cached": True`` stamped on,
so a client can tell a replay from a fresh evaluation; fault-injected
requests bypass the cache entirely in both directions.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple

from ..caching import KeyedLRU
from ..corpus.query import CorpusQuery

__all__ = ["ResultCache"]


class ResultCache:
    """A bounded LRU of window responses; ``maxsize=0`` disables it."""

    __slots__ = ("_lru", "_hits", "_misses", "_lock")

    def __init__(self, maxsize: int = 128) -> None:
        self._lru = KeyedLRU(maxsize, name="window-results")
        # KeyedLRU's get/put are statistics-free by contract; the
        # hit/miss story the ``stats`` verb tells is counted here.
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()

    @staticmethod
    def key(
        token: str,
        engine: str,
        start: int,
        stop: int,
        queries: Sequence[CorpusQuery],
    ) -> Tuple:
        """The cache key for one window request.  ``stop`` must be the
        *effective* stop (clamped to the tree count), so ``stop=None``
        and ``stop=tree_count`` share an entry; the query fingerprint
        is the exact ``(kind, text, context)`` triple sequence."""
        return (
            token,
            engine,
            start,
            stop,
            tuple((q.kind, q.text, q.context) for q in queries),
        )

    def get(self, key: Tuple) -> Optional[dict]:
        hit = self._lru.get(key)
        with self._lock:
            if hit is None:
                self._misses += 1
            else:
                self._hits += 1
        # Shallow copies on both sides of the cache: the caller's dict
        # stays theirs to mutate, the stored one stays pristine.
        return None if hit is None else dict(hit)

    def put(self, key: Tuple, response: dict) -> None:
        self._lru.put(key, dict(response))

    def info(self) -> Dict[str, int]:
        """Hit/miss/occupancy counters for the ``stats`` verb."""
        stats = self._lru.cache_info()
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": stats.currsize,
                "maxsize": stats.maxsize,
            }

    def clear(self) -> None:
        self._lru.cache_clear()
        with self._lock:
            self._hits = 0
            self._misses = 0
