"""Admission control: bounded in-flight work plus per-session quotas.

Two independent gates, both checked *before* a query runs:

* a global **in-flight token bucket** — at most ``max_inflight``
  queries execute at once, across every session.  A full bucket is an
  explicit ``OVERLOADED`` rejection carrying ``retry_after_ms``, never
  an unbounded queue: the client knows immediately and backs off.
* a per-session **step-quota bucket** — each session may spend at most
  ``quota_steps`` of budget fuel per ``window_seconds``, refilling
  continuously.  Queries are *priced* up front from the planner's
  modeled cost (estimate × trees in the window) and **reconciled**
  against the actual fuel the executor reports, so a cheap query that
  was pessimistically priced gives its overcharge back.

Both gates are thread-safe; the dispatcher calls them from concurrent
session threads.  ``AdmissionController.counters()`` feeds the
``stats`` protocol verb.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from .protocol import OVERLOADED, ServiceError

__all__ = ["AdmissionController", "AdmissionTicket", "Overloaded"]


class Overloaded(ServiceError):
    """An explicit admission rejection (maps to ``OVERLOADED``)."""

    def __init__(self, message: str, retry_after_ms: int) -> None:
        super().__init__(OVERLOADED, message, retry_after_ms)


class _QuotaBucket:
    """A continuously-refilling token bucket measured in budget steps."""

    __slots__ = ("capacity", "rate", "tokens", "stamp")

    def __init__(self, capacity: float, window_seconds: float, now: float) -> None:
        self.capacity = capacity
        self.rate = capacity / window_seconds
        self.tokens = capacity
        self.stamp = now

    def _refill(self, now: float) -> None:
        # max(0, ...) guards a caller clock captured before our stamp:
        # time must never *drain* a bucket.
        self.tokens = min(
            self.capacity,
            self.tokens + max(0.0, now - self.stamp) * self.rate,
        )
        self.stamp = max(now, self.stamp)

    def try_spend(self, amount: float, now: float) -> Optional[float]:
        """Spend ``amount`` tokens (clamped to capacity, so one huge
        query drains a full bucket rather than being unadmittable); on
        refusal return the seconds until enough tokens will exist."""
        self._refill(now)
        charge = min(amount, self.capacity)
        if charge <= self.tokens:
            self.tokens -= charge
            return None
        return (charge - self.tokens) / self.rate

    def credit(self, amount: float, now: float) -> None:
        self._refill(now)
        self.tokens = min(self.capacity, self.tokens + amount)


class AdmissionTicket:
    """Proof of admission for one query; settle exactly once.

    ``settle(actual_steps)`` releases the in-flight slot and reconciles
    the priced estimate against what the executor actually spent."""

    __slots__ = ("_controller", "_session_id", "_priced", "_settled")

    def __init__(self, controller, session_id, priced) -> None:
        self._controller = controller
        self._session_id = session_id
        self._priced = priced
        self._settled = False

    def settle(self, actual_steps: Optional[int] = None) -> None:
        if self._settled:
            return
        self._settled = True
        self._controller._settle(self._session_id, self._priced, actual_steps)


class AdmissionController:
    """The service-wide gatekeeper (see module docstring)."""

    def __init__(
        self,
        max_inflight: int = 8,
        quota_steps: Optional[int] = 2_000_000,
        window_seconds: float = 1.0,
        min_price: int = 100,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if quota_steps is not None and quota_steps < 1:
            raise ValueError("quota_steps must be >= 1 (or None to disable)")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        self.max_inflight = max_inflight
        self.quota_steps = quota_steps
        self.window_seconds = window_seconds
        self.min_price = min_price
        self._inflight = 0
        self._buckets: Dict[str, _QuotaBucket] = {}
        self._lock = threading.Lock()
        # Counters surfaced by the ``stats`` verb.
        self.admitted = 0
        self.rejected_inflight = 0
        self.rejected_quota = 0

    # -- the gate ------------------------------------------------------

    def admit(self, session_id: str, estimated_steps: float) -> AdmissionTicket:
        """Admit one query or raise :class:`Overloaded`.

        ``estimated_steps`` is the planner-derived price; it is clamped
        below by ``min_price`` so even "free" estimates cannot bypass
        the quota, and above by the bucket capacity so one huge query
        is admissible (it just drains the session for a while)."""
        now = time.monotonic()
        priced = max(float(self.min_price), float(estimated_steps))
        if self.quota_steps is not None:
            # The ticket must remember what was actually charged, or a
            # clamped price would later "refund" steps never spent.
            priced = min(priced, float(self.quota_steps))
        with self._lock:
            if self._inflight >= self.max_inflight:
                self.rejected_inflight += 1
                raise Overloaded(
                    f"{self._inflight} queries in flight "
                    f"(max_inflight={self.max_inflight})",
                    retry_after_ms=25,
                )
            if self.quota_steps is not None:
                bucket = self._buckets.get(session_id)
                if bucket is None:
                    bucket = self._buckets[session_id] = _QuotaBucket(
                        float(self.quota_steps), self.window_seconds, now
                    )
                wait = bucket.try_spend(priced, now)
                if wait is not None:
                    self.rejected_quota += 1
                    raise Overloaded(
                        f"session step quota exhausted "
                        f"({self.quota_steps} steps per "
                        f"{self.window_seconds:g}s window)",
                        retry_after_ms=max(1, int(wait * 1000) + 1),
                    )
            self._inflight += 1
            self.admitted += 1
        return AdmissionTicket(self, session_id, priced)

    def _settle(
        self, session_id: str, priced: float, actual_steps: Optional[int]
    ) -> None:
        now = time.monotonic()
        with self._lock:
            self._inflight -= 1
            if self.quota_steps is None or actual_steps is None:
                return
            bucket = self._buckets.get(session_id)
            if bucket is None:
                return
            overcharge = priced - float(actual_steps)
            if overcharge > 0:
                bucket.credit(overcharge, now)
            elif overcharge < 0:
                bucket.try_spend(-overcharge, now)  # owed; may go to zero

    # -- lifecycle and introspection ----------------------------------

    def forget_session(self, session_id: str) -> None:
        """Drop a disconnected session's bucket (frees its memory; a
        reconnecting client starts with a full quota)."""
        with self._lock:
            self._buckets.pop(session_id, None)

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "admitted": self.admitted,
                "rejected_inflight": self.rejected_inflight,
                "rejected_quota": self.rejected_quota,
                "sessions_with_quota": len(self._buckets),
            }
