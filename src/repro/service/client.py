"""A blocking client for the query service (and the remote REPL's legs).

:class:`ServiceClient` speaks the length-prefixed JSON protocol over
one TCP connection — one request, one response, in order.  Errors come
back as raised :class:`~repro.service.protocol.ServiceError` (with the
structured code), and :meth:`query_with_retry` implements the polite
reaction to ``OVERLOADED``: exponential backoff seeded by the server's
own ``retry_after_ms`` hint, bounded attempts, then the error is the
caller's.
"""

from __future__ import annotations

import socket
import time
from typing import List, Optional, Sequence, Union

from ..corpus.query import CorpusQuery
from .protocol import (
    OVERLOADED,
    ServiceError,
    encode_frame,
    raise_for_error,
    read_frame_from_socket,
)

__all__ = ["ServiceClient"]

QueryLike = Union[CorpusQuery, dict, str]


def _query_payload(query: QueryLike) -> dict:
    """One wire query from a CorpusQuery, a dict, or a bare XPath text."""
    if isinstance(query, CorpusQuery):
        payload = {"kind": query.kind, "text": query.text}
        if query.context:
            payload["context"] = list(query.context)
        return payload
    if isinstance(query, dict):
        return query
    return {"kind": "xpath", "text": query}


class ServiceClient:
    """One connection to a :class:`~repro.service.server.QueryServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -- transport -----------------------------------------------------

    def request_raw(self, payload: dict) -> dict:
        """Send one request, return the raw response dict (even errors)."""
        self._sock.sendall(encode_frame(payload))
        return read_frame_from_socket(self._sock)

    def request(self, payload: dict) -> dict:
        """Send one request; raise :class:`ServiceError` on an error
        response, return the successful payload otherwise."""
        return raise_for_error(self.request_raw(payload))

    # -- verbs ---------------------------------------------------------

    def query(
        self, queries: Sequence[QueryLike], **options
    ) -> dict:
        return self.request(
            {
                "op": "query",
                "queries": [_query_payload(q) for q in queries],
                "options": options,
            }
        )

    def query_with_retry(
        self,
        queries: Sequence[QueryLike],
        attempts: int = 5,
        max_backoff: float = 1.0,
        **options,
    ) -> dict:
        """Like :meth:`query`, but back off and retry on ``OVERLOADED``.

        The first wait honours the server's ``retry_after_ms`` hint;
        subsequent waits double it (capped), so a persistently full
        server sheds this client's pressure instead of amplifying it."""
        backoff = None
        for attempt in range(attempts):
            try:
                return self.query(queries, **options)
            except ServiceError as exc:
                if exc.code != OVERLOADED or attempt == attempts - 1:
                    raise
                if backoff is None:
                    backoff = (exc.retry_after_ms or 25) / 1000.0
                time.sleep(min(backoff, max_backoff))
                backoff *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def health(self) -> dict:
        return self.request({"op": "health"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
