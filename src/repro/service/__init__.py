"""A fault-tolerant concurrent query service over a loaded corpus.

The paper's data-complexity stance — one fixed query program, many
instances arriving over time — becomes an actual server here:
``repro serve`` loads a :class:`~repro.corpus.TreeCorpus` (or opens a
:class:`~repro.corpus.CorpusStore` read-only) and answers concurrent
clients over a length-prefixed JSON TCP protocol; ``repro repl`` is the
interactive human face of the same dispatcher, locally or remotely.

The layering, inside out:

* :mod:`~repro.service.protocol` — frames, error codes, nothing else;
* :mod:`~repro.service.admission` — in-flight token bucket plus
  per-session step quotas priced off the planner's cost model;
* :mod:`~repro.service.cache` — the generation-keyed window result
  cache (``--result-cache``): repeated windows answer from memory
  until the corpus generation moves;
* :mod:`~repro.service.session` — the transport-free dispatcher
  (requests in, responses out, never raises);
* :mod:`~repro.service.server` — the asyncio TCP front end;
* :mod:`~repro.service.client` / :mod:`~repro.service.repl` — the
  blocking client with ``OVERLOADED`` backoff, and the line REPL.

>>> from repro.corpus import TreeCorpus
>>> from repro.service import Dispatcher, QueryServer, ServiceClient
>>> dispatcher = Dispatcher(TreeCorpus.from_terms(["σ(δ, σ)"]))
>>> with QueryServer(dispatcher).start_in_thread() as server:
...     with ServiceClient(*server.address) as client:
...         client.query(["//δ"])["results"]
[[[[0]]]]
"""

from .admission import AdmissionController, AdmissionTicket, Overloaded
from .cache import ResultCache
from .client import ServiceClient
from .protocol import (
    ERROR_CODES,
    MAX_FRAME,
    FrameError,
    ServiceError,
    encode_frame,
    read_frame_from_socket,
)
from .repl import run_repl
from .server import QueryServer
from .session import Dispatcher, SessionState

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "Dispatcher",
    "ERROR_CODES",
    "FrameError",
    "MAX_FRAME",
    "Overloaded",
    "QueryServer",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "SessionState",
    "encode_frame",
    "read_frame_from_socket",
    "run_repl",
]
