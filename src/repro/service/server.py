"""The asyncio TCP server: many sessions, one dispatcher, no fallout.

One :class:`QueryServer` wraps one
:class:`~repro.service.session.Dispatcher`.  The asyncio loop owns the
sockets and the framing; the dispatcher's blocking ``handle`` runs on a
bounded thread pool (``run_in_executor``), so a long query never stalls
the loop — other sessions keep reading, writing, and being admitted
or rejected while it runs.

Session isolation is structural: each connection is one task with its
own :class:`~repro.service.session.SessionState`.  A client that
disconnects mid-query, sends a torn frame, or triggers any error only
ever ends (or errors) *its own* task; the dispatcher's ``handle`` never
raises, and the task's ``finally`` closes just that session.  A frame
whose announced length exceeds the protocol cap is answered with
``BAD_REQUEST`` and the connection dropped — before a single payload
byte is buffered.

``start_in_thread()`` runs the whole loop on a daemon thread and
returns once the socket is listening (the test and bench harness
entry); ``serve_forever()`` blocks the calling thread (the CLI entry).
"""

from __future__ import annotations

import asyncio
import struct
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Set, Tuple

from .protocol import (
    BAD_REQUEST,
    INTERNAL,
    MAX_FRAME,
    SHUTDOWN,
    FrameError,
    decode_payload,
    encode_frame,
    error_response,
)
from .session import Dispatcher

__all__ = ["QueryServer"]

_PREFIX = struct.Struct(">I")


class QueryServer:
    """A concurrent TCP front end for one :class:`Dispatcher`."""

    def __init__(
        self,
        dispatcher: Dispatcher,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.dispatcher = dispatcher
        self.host = host
        self.port = port
        #: ``(host, port)`` actually bound — set once listening.
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stopping = False
        self._client_tasks: Set[asyncio.Task] = set()
        # Blocking dispatch needs one thread per admitted query plus
        # headroom for health/stats probes during overload.
        self._executor = ThreadPoolExecutor(
            max_workers=dispatcher.admission.max_inflight + 4,
            thread_name_prefix="repro-serve",
        )
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle -----------------------------------------------------

    def start_in_thread(self) -> "QueryServer":
        """Run the server loop on a daemon thread; return once bound."""
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.address is None:
            raise RuntimeError("server failed to start within 10s")
        return self

    def serve_forever(self) -> None:
        """Run the server loop on the calling thread (the CLI path)."""
        self._run_loop()
        if self._startup_error is not None:
            raise self._startup_error

    def stop(self) -> None:
        """Stop accepting, end every session, join the loop thread."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._begin_shutdown)
            except RuntimeError:
                pass  # loop already closed between the check and the call
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=10.0)
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- the loop ------------------------------------------------------

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface bind errors to the starter
            self._startup_error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        # The shutdown event must exist before ``stop()`` can observe
        # the loop, or an early stop races an AttributeError.
        self._shutdown = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        server = await asyncio.start_server(
            self._on_client, self.host, self.port
        )
        self.address = server.sockets[0].getsockname()[:2]
        self._ready.set()
        async with server:
            await self._shutdown.wait()
            server.close()
            for task in list(self._client_tasks):
                task.cancel()
            if self._client_tasks:
                await asyncio.gather(
                    *self._client_tasks, return_exceptions=True
                )

    def _begin_shutdown(self) -> None:
        self._stopping = True
        self._shutdown.set()

    # -- one session ---------------------------------------------------

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._client_tasks.add(task)
        session = self.dispatcher.open_session()
        try:
            await self._session_loop(reader, writer, session)
        except (
            asyncio.IncompleteReadError,  # torn frame / client vanished
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # this session's problem only; nothing to answer
        except asyncio.CancelledError:
            # Server shutdown: tell the client if the pipe still works.
            await self._try_send(
                writer, error_response(SHUTDOWN, "server shutting down")
            )
        finally:
            self._client_tasks.discard(task)
            self.dispatcher.close_session(session)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _session_loop(self, reader, writer, session) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopping:
            prefix = await reader.readexactly(_PREFIX.size)
            (length,) = _PREFIX.unpack(prefix)
            if length > MAX_FRAME:
                # Reject before buffering a byte; the stream is now
                # unframed garbage, so the connection must end.
                await self._try_send(
                    writer,
                    error_response(
                        BAD_REQUEST,
                        f"frame of {length} bytes exceeds "
                        f"MAX_FRAME={MAX_FRAME}",
                    ),
                )
                return
            body = await reader.readexactly(length)
            try:
                request = decode_payload(body)
            except FrameError as exc:
                # Framing survived, the JSON didn't: answer and keep
                # the session — one bad request is not a disconnect.
                await self._try_send(
                    writer, error_response(BAD_REQUEST, str(exc))
                )
                continue
            response = await loop.run_in_executor(
                self._executor, self.dispatcher.handle, request, session
            )
            try:
                frame = encode_frame(response)
            except FrameError:
                frame = encode_frame(
                    error_response(
                        INTERNAL, "response exceeded the frame size cap"
                    )
                )
            writer.write(frame)
            await writer.drain()

    async def _try_send(self, writer, response: dict) -> None:
        try:
            writer.write(encode_frame(response))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError, RuntimeError):
            pass
