"""The dispatcher: one request in, one response out, transport-free.

:class:`Dispatcher` is the service's whole brain with the network cut
away: it holds the loaded corpus (a
:class:`~repro.corpus.TreeCorpus` or :class:`~repro.corpus.CorpusStore`
— both expose the same ``run``/``statistics`` surface), the
:class:`~repro.service.admission.AdmissionController`, and the
service-wide counters, and turns one request dict into one response
dict.  The asyncio server calls it from worker threads; the local REPL
calls it directly; the tests call it without a socket in sight.

Isolation contract: :meth:`handle` **never raises**.  Every failure —
malformed request, parse error, exhausted budget, expired deadline,
admission rejection, even an unexpected internal exception — becomes a
structured error response for *that request alone*.  The session that
sent it, and every other session, keeps going.

Per-query robustness plumbing:

* ``timeout_ms`` becomes a cooperative ``budget_seconds`` deadline —
  the executor's fuel checkpoints notice the expiry mid-walk and the
  query fails with ``DEADLINE`` instead of running long;
* the corpus runs with ``on_exhausted="raise"``: an exhausted budget is
  *reported*, never silently degraded to a possibly-slower reference
  pass that would blow the deadline anyway;
* each session gets a stable ``route`` offset, spreading chunk → pool
  routing across sessions when the server runs worker pools;
* worker batches run with bounded ``worker_retries`` — a worker that
  dies mid-chunk is retried on a healed pool with exponential backoff
  before the chunk degrades to the in-process reference engine.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, Optional, Sequence

from ..corpus.executor import BatchResult, plan_queries
from ..corpus.query import KINDS, CorpusQuery
from ..resilience.errors import ParseError, ReproError, ResourceExhausted
from ..resilience.faults import Fault
from .admission import AdmissionController
from .cache import ResultCache
from .protocol import (
    BAD_REQUEST,
    DEADLINE,
    INTERNAL,
    PARSE_ERROR,
    RESOURCE_EXHAUSTED,
    ServiceError,
    error_response,
    ok_response,
)

__all__ = ["Dispatcher", "SessionState"]

#: Fallback price per (query, tree) cell when the planner cannot model
#: the corpus (e.g. an empty one).
_DEFAULT_CELL_PRICE = 50.0

_SESSION_IDS = itertools.count(1)


class SessionState:
    """Per-connection identity and counters (one per client)."""

    __slots__ = ("session_id", "route", "started", "queries", "errors")

    def __init__(self, session_id: Optional[str] = None) -> None:
        number = next(_SESSION_IDS)
        self.session_id = session_id or f"session-{number}"
        #: Stable routing offset so concurrent sessions spread their
        #: chunks across routed worker pools instead of piling onto
        #: pool 0.
        self.route = number
        self.started = time.monotonic()
        self.queries = 0
        self.errors = 0


class Dispatcher:
    """Turns request dicts into response dicts over one loaded corpus."""

    def __init__(
        self,
        corpus,
        admission: Optional[AdmissionController] = None,
        workers: int = 0,
        default_timeout_ms: Optional[int] = 10_000,
        max_budget_steps: Optional[int] = None,
        worker_retries: int = 2,
        retry_backoff: float = 0.02,
        allow_faults: bool = False,
        resilience_log=None,
        result_cache: int = 0,
    ) -> None:
        self.corpus = corpus
        self.admission = admission or AdmissionController()
        self.workers = workers
        self.default_timeout_ms = default_timeout_ms
        self.max_budget_steps = max_budget_steps
        self.worker_retries = worker_retries
        self.retry_backoff = retry_backoff
        #: Fault injection is opt-in (the chaos harness turns it on);
        #: a production server rejects fault-carrying requests.
        self.allow_faults = allow_faults
        self.resilience_log = resilience_log
        #: Generation-keyed window result cache (``repro serve
        #: --result-cache N``; 0 disables).  Keys lead with the corpus
        #: token, which embeds the store generation — any mutation
        #: changes the token and orphans every cached window.
        self.result_cache = (
            ResultCache(result_cache) if result_cache > 0 else None
        )
        self.started = time.monotonic()
        self._lock = threading.Lock()
        self._sessions: Dict[str, SessionState] = {}
        self._counters = {
            "queries_ok": 0,
            "errors": {},  # code -> count
            "degraded_chunks": 0,
            "worker_retries": 0,
            "cells_answered": 0,
        }

    # -- session lifecycle --------------------------------------------

    def open_session(self) -> SessionState:
        session = SessionState()
        with self._lock:
            self._sessions[session.session_id] = session
        return session

    def close_session(self, session: SessionState) -> None:
        with self._lock:
            self._sessions.pop(session.session_id, None)
        self.admission.forget_session(session.session_id)

    # -- the single entry point ---------------------------------------

    def handle(self, request: dict, session: SessionState) -> dict:
        """One response for one request; never raises (see module doc)."""
        try:
            if not isinstance(request, dict):
                raise _bad_request("request must be a JSON object")
            op = request.get("op")
            if op == "query":
                return self._handle_query(request, session)
            if op == "health":
                return self._handle_health()
            if op == "stats":
                return self._handle_stats()
            if op == "ping":
                return ok_response(pong=True)
            raise _bad_request(f"unknown op {op!r}")
        except ServiceError as exc:
            self._count_error(session, exc.code)
            return error_response(exc.code, exc.message, exc.retry_after_ms)
        except ParseError as exc:
            self._count_error(session, PARSE_ERROR)
            return error_response(PARSE_ERROR, str(exc))
        except ResourceExhausted as exc:
            code = DEADLINE if exc.resource == "deadline" else RESOURCE_EXHAUSTED
            self._count_error(session, code)
            return error_response(code, str(exc))
        except ReproError as exc:
            self._count_error(session, INTERNAL)
            return error_response(INTERNAL, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # the isolation backstop
            self._count_error(session, INTERNAL)
            return error_response(INTERNAL, f"{type(exc).__name__}: {exc}")

    # -- query ---------------------------------------------------------

    def _handle_query(self, request: dict, session: SessionState) -> dict:
        queries = self._parse_queries(request.get("queries"))
        options = request.get("options") or {}
        if not isinstance(options, dict):
            raise _bad_request("options must be an object")
        start = _int_option(options, "start", 0)
        stop = _int_option(options, "stop", None)
        engine = options.get("engine", "fast")
        if engine not in ("fast", "reference", "auto", "vectorized"):
            raise _bad_request(f"unknown engine {engine!r}")
        timeout_ms = _int_option(options, "timeout_ms", self.default_timeout_ms)
        budget_steps = _int_option(options, "budget_steps", None)
        if self.max_budget_steps is not None:
            budget_steps = (
                self.max_budget_steps
                if budget_steps is None
                else min(budget_steps, self.max_budget_steps)
            )
        faults = self._parse_faults(options.get("faults"))

        tree_count = self._tree_count()
        stop_at = tree_count if stop is None else min(stop, tree_count)
        if start < 0 or start > stop_at:
            raise _bad_request(f"bad tree range [{start}, {stop})")
        window = stop_at - start

        # Cache check before pricing and admission: a hit answers from
        # memory, burning neither a ticket nor a single engine step.
        # Fault-carrying requests bypass the cache in both directions —
        # injected chaos must hit the real pipeline, and its possibly
        # degraded responses must not be replayed to clean requests.
        cache_key = None
        if self.result_cache is not None and faults is None:
            token = getattr(self.corpus, "token", None)
            if token is not None:
                cache_key = ResultCache.key(
                    token, engine, start, stop_at, queries
                )
                hit = self.result_cache.get(cache_key)
                if hit is not None:
                    with self._lock:
                        session.queries += 1
                        self._counters["queries_ok"] += 1
                    response = dict(hit)
                    response["cached"] = True
                    return response

        price = self._price(queries, window)
        ticket = self.admission.admit(session.session_id, price)
        actual_steps: Optional[int] = None
        try:
            began = time.perf_counter()
            result = self.corpus.run(
                queries,
                workers=self.workers,
                engine=engine,
                start=start,
                stop=stop,
                budget_steps=budget_steps,
                budget_seconds=(
                    None if timeout_ms is None else timeout_ms / 1000.0
                ),
                on_exhausted="raise",
                faults=faults,
                route=session.route,
                worker_retries=self.worker_retries if self.workers else 0,
                retry_backoff=self.retry_backoff,
            )
            elapsed = time.perf_counter() - began
            actual_steps = sum(chunk.steps for chunk in result.chunks)
            response = self._query_response(result, session, elapsed)
            if cache_key is not None:
                self.result_cache.put(cache_key, response)
            return response
        finally:
            ticket.settle(actual_steps)

    def _parse_queries(self, raw) -> Sequence[CorpusQuery]:
        if not isinstance(raw, list) or not raw:
            raise _bad_request("queries must be a non-empty array")
        queries = []
        for item in raw:
            if not isinstance(item, dict):
                raise _bad_request("each query must be an object")
            kind = item.get("kind")
            text = item.get("text")
            if kind not in KINDS:
                raise _bad_request(
                    f"unknown query kind {kind!r}; expected one of {KINDS}"
                )
            if not isinstance(text, str):
                raise _bad_request("query text must be a string")
            context = item.get("context", [])
            if not isinstance(context, list):
                raise _bad_request("query context must be an array")
            queries.append(CorpusQuery(kind, text, tuple(context)))
        return queries

    def _parse_faults(self, raw) -> Optional[Dict[int, Fault]]:
        if raw is None:
            return None
        if not self.allow_faults:
            raise _bad_request(
                "fault injection is disabled on this server"
            )
        if not isinstance(raw, dict):
            raise _bad_request("faults must map chunk index to a fault")
        faults = {}
        for key, spec in raw.items():
            try:
                index = int(key)
            except (TypeError, ValueError):
                raise _bad_request(f"bad fault chunk index {key!r}")
            if not isinstance(spec, dict):
                raise _bad_request("each fault must be an object")
            kind = spec.get("kind", "error")
            if kind == "crash" and self.workers == 0:
                # An in-process "crash" would take the whole server
                # down — only a worker process may die for science.
                raise _bad_request(
                    "crash faults need worker pools (serve --workers N)"
                )
            try:
                faults[index] = Fault(
                    at_checkpoint=int(spec.get("at", 1)), kind=kind
                )
            except (TypeError, ValueError) as exc:
                raise _bad_request(f"bad fault spec: {exc}")
        return faults or None

    def _price(self, queries: Sequence[CorpusQuery], window: int) -> float:
        """Planner-derived admission price: modeled per-tree cost of
        each query, summed, times the window size."""
        try:
            plans = plan_queries(queries, self.corpus.statistics())
            per_tree = sum(plan.estimated_cost for plan in plans)
        except ParseError:
            raise  # malformed query: reject before admission
        except Exception:
            per_tree = _DEFAULT_CELL_PRICE * len(queries)
        return max(per_tree, _DEFAULT_CELL_PRICE * len(queries)) * max(window, 1)

    def _query_response(
        self, result: BatchResult, session: SessionState, elapsed: float
    ) -> dict:
        degraded = sum(1 for c in result.chunks if c.fell_back)
        retried = sum(c.retries for c in result.chunks)
        with self._lock:
            session.queries += 1
            self._counters["queries_ok"] += 1
            self._counters["degraded_chunks"] += degraded
            self._counters["worker_retries"] += retried
            self._counters["cells_answered"] += (
                result.tree_count * len(result.queries)
            )
        return ok_response(
            results=[
                [_jsonable(cell) for cell in row] for row in result.rows
            ],
            trees=result.tree_count,
            chunks=[
                {
                    "index": c.index,
                    "start": c.start,
                    "stop": c.stop,
                    "engine": c.engine,
                    "fell_back": c.fell_back,
                    "error": c.error,
                    "steps": c.steps,
                    "retries": c.retries,
                }
                for c in result.chunks
            ],
            degraded_chunks=degraded,
            elapsed_ms=elapsed * 1000.0,
        )

    # -- health / stats ------------------------------------------------

    def _handle_health(self) -> dict:
        pools = self._pool_health()
        degraded = any(not alive for alive in pools.values())
        return ok_response(
            status="degraded" if degraded else "ok",
            uptime_s=time.monotonic() - self.started,
            trees=self._tree_count(),
            workers=self.workers,
            pools={str(k): v for k, v in pools.items()},
            inflight=self.admission.inflight,
        )

    def _handle_stats(self) -> dict:
        with self._lock:
            counters = {
                "queries_ok": self._counters["queries_ok"],
                "errors": dict(self._counters["errors"]),
                "degraded_chunks": self._counters["degraded_chunks"],
                "worker_retries": self._counters["worker_retries"],
                "cells_answered": self._counters["cells_answered"],
            }
            sessions = {
                state.session_id: {
                    "queries": state.queries,
                    "errors": state.errors,
                    "age_s": time.monotonic() - state.started,
                }
                for state in self._sessions.values()
            }
        payload = ok_response(
            service=counters,
            admission=self.admission.counters(),
            sessions=sessions,
        )
        if self.result_cache is not None:
            payload["result_cache"] = self.result_cache.info()
        if self.resilience_log is not None:
            payload["resilience"] = self.resilience_log.snapshot()
        return payload

    def _pool_health(self) -> Dict[int, bool]:
        """Liveness of each routed pool slot the corpus currently holds
        (True = its worker process is running or not yet spawned)."""
        health: Dict[int, bool] = {}
        pools = getattr(self.corpus, "_pools", None)
        if not pools:
            return health
        for routed in pools.values():
            for slot, pool in enumerate(routed):
                processes = list(getattr(pool, "_processes", {}).values())
                alive = not getattr(pool, "_broken", False) and (
                    not processes or any(p.is_alive() for p in processes)
                )
                health[slot] = health.get(slot, True) and alive
        return health

    # -- internals -----------------------------------------------------

    def _tree_count(self) -> int:
        count = getattr(self.corpus, "tree_count", None)
        if count is None:
            return len(self.corpus)
        return count() if callable(count) else count

    def _count_error(self, session: SessionState, code: str) -> None:
        with self._lock:
            session.errors += 1
            errors = self._counters["errors"]
            errors[code] = errors.get(code, 0) + 1


def _bad_request(message: str) -> ServiceError:
    return ServiceError(BAD_REQUEST, message)


def _int_option(options: dict, key: str, default):
    value = options.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _bad_request(f"option {key!r} must be a number")
    return int(value)


def _jsonable(cell):
    """One result cell as JSON: bools pass through, node tuples become
    lists of lists, pair tuples become pairs of lists."""
    if isinstance(cell, bool):
        return cell
    return [
        [list(part) for part in item]
        if item and isinstance(item[0], tuple)
        else list(item)
        for item in cell
    ]
