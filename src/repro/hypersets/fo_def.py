"""Lemma 4.2: L^m is definable in FO — the formula, generated.

Strings are monadic trees (``repro.trees.strings``), so position order
is the descendant relation ``≺``, position successor is ``E``, and the
letter at a position is the ``a``-attribute.  For each fixed m the
sentence below holds on ``string_tree(w)`` iff ``w ∈ L^m``:

* **well-formedness** of both halves (each side is a valid level-m
  encoding: the half starts with the m-marker — or is empty for m ≥ 2;
  every marker v ≥ 2 is immediately followed by a (v−1)-marker; for
  m ≥ 2 every 1-marker is immediately preceded by a 2-marker; every
  plain value sits inside some 1-region);
* **mutual simulation**: every m-marker of f introduces an
  (m−1)-hyperset also introduced by some m-marker of g, and vice
  versa, with equality-of-introduced-hypersets unfolded recursively —
  the fixed nesting depth m is what makes this FO.

The formula size grows ~4^m (each equality level unfolds two
∀∃-copies); Lemma 4.2 only needs *some* FO sentence per fixed m.  The
E2 experiment checks this sentence against the decoder-based reference
:func:`repro.hypersets.encoding.in_lm` exhaustively on short strings.
"""

from __future__ import annotations

from typing import List

from ..logic import tree_fo as T
from ..logic.tree_fo import NVar, TreeFormula
from ..trees.strings import HASH, STRING_ATTR


def _val(x: NVar, value) -> TreeFormula:
    return T.ValConst(STRING_ATTR, x, value)


def _is_hash(x: NVar) -> TreeFormula:
    return _val(x, HASH)


def _is_marker(x: NVar, low: int, high: int) -> TreeFormula:
    """val(x) ∈ {low..high}."""
    return T.disj(*[_val(x, v) for v in range(low, high + 1)])


def _is_boundary(x: NVar, m: int) -> TreeFormula:
    """A marker or the # split point — anything that ends a 1-region."""
    return T.disj(_is_marker(x, 1, m), _is_hash(x))


def _is_value(x: NVar, m: int) -> TreeFormula:
    return T.Not(_is_boundary(x, m))


def _before(x: NVar, y: NVar) -> TreeFormula:
    """Strict position order (monadic trees: the descendant relation)."""
    return T.Desc(x, y)


def _at_or_after(x: NVar, y: NVar) -> TreeFormula:
    return T.disj(T.NodeEq(x, y), T.Desc(x, y))


def _no_boundary_between(
    start: NVar, end: NVar, m: int, threshold: int, scratch: NVar
) -> TreeFormula:
    """No marker ≥ ``threshold`` (nor #) strictly after ``start`` and at
    or before ``end``."""
    bad = T.conj(
        _before(start, scratch),
        _at_or_after(scratch, end),
        T.disj(_is_marker(scratch, threshold, m), _is_hash(scratch)),
    )
    return T.Not(T.Exists(scratch, bad))


def _eq_intro(u: NVar, u2: NVar, v: int, m: int, depth: int) -> TreeFormula:
    """The (v−1)-hypersets introduced by the v-markers at u and u2 are
    equal.  ``depth`` disambiguates nested variable names."""
    if v == 1:
        raise ValueError("eq_intro is defined for v >= 2")
    if v - 1 == 1:
        # Values of the 1-encoding at succ(u): positions after succ(u)
        # (the 1-marker) with no boundary in between.
        s, s2 = NVar(f"s{depth}"), NVar(f"t{depth}")
        w, w2 = NVar(f"w{depth}"), NVar(f"x{depth}")
        z = NVar(f"z{depth}")

        def values_included(a: NVar, sa: NVar, b: NVar, sb: NVar) -> TreeFormula:
            # ∀w (w a value of a's region → ∃w2 value of b's region, equal)
            in_a = T.conj(
                _before(sa, w),
                _no_boundary_between(sa, w, m, 1, z),
            )
            in_b = T.conj(
                _before(sb, w2),
                _no_boundary_between(sb, w2, m, 1, z),
                T.ValEq(STRING_ATTR, w, STRING_ATTR, w2),
            )
            return T.Forall(w, T.implies(in_a, T.Exists(w2, in_b)))

        both = T.conj(
            T.Edge(u, s),
            T.Edge(u2, s2),
            values_included(u, s, u2, s2),
            _swap_vars(values_included(u2, s2, u, s), {}),
        )
        return T.exists([s, s2], both)
    # v-1 >= 2: match the (v-1)-markers of each element region.
    z, z2 = NVar(f"e{depth}"), NVar(f"f{depth}")
    g = NVar(f"g{depth}")

    def intro(anchor: NVar, marker: NVar) -> TreeFormula:
        return T.conj(
            _val(marker, v - 1),
            _before(anchor, marker),
            _no_boundary_between(anchor, marker, m, v, g),
        )

    forward = T.Forall(
        z,
        T.implies(
            intro(u, z),
            T.Exists(
                z2,
                T.conj(intro(u2, z2), _eq_intro(z, z2, v - 1, m, depth + 1)),
            ),
        ),
    )
    backward = T.Forall(
        z2,
        T.implies(
            intro(u2, z2),
            T.Exists(
                z,
                T.conj(intro(u, z), _eq_intro(z2, z, v - 1, m, depth + 1)),
            ),
        ),
    )
    return T.conj(forward, backward)


def _swap_vars(formula: TreeFormula, _mapping) -> TreeFormula:
    """The symmetric copy is built by calling the builder with swapped
    arguments, so no substitution is needed."""
    return formula


def well_formedness(m: int) -> TreeFormula:
    """Both halves of the split string are valid level-m encodings."""
    x, y, h, z = NVar("wx"), NVar("wy"), NVar("wh"), NVar("wz")
    parts: List[TreeFormula] = []
    # Exactly one #.
    parts.append(
        T.Exists(
            h,
            T.conj(
                _is_hash(h),
                T.Not(
                    T.Exists(
                        z, T.conj(_is_hash(z), T.Not(T.NodeEq(z, h)))
                    )
                ),
            ),
        )
    )
    # The first position: the m-marker, or # itself when f is empty
    # (m >= 2 allows the empty encoding).
    first_ok = T.disj(_val(x, m), *([_is_hash(x)] if m >= 2 else []))
    parts.append(T.Forall(x, T.implies(T.Root(x), first_ok)))
    # Right after #: the m-marker (or nothing — # may be last for m>=2).
    succ_of_hash_ok = _val(y, m)
    parts.append(
        T.Forall(
            x,
            T.implies(
                _is_hash(x),
                T.Forall(y, T.implies(T.Edge(x, y), succ_of_hash_ok)),
            ),
        )
    )
    if m == 1:
        # Level-1 encodings are "1 d₁ … dₙ": each side has exactly one
        # 1-marker, at its start, and the g side is non-empty.
        parts.append(
            T.Forall(
                x,
                T.implies(
                    _val(x, 1),
                    T.disj(
                        T.Root(x),
                        T.Exists(y, T.conj(T.Edge(y, x), _is_hash(y))),
                    ),
                ),
            )
        )
        parts.append(
            T.Forall(
                x,
                T.implies(
                    _is_hash(x),
                    T.Exists(y, T.conj(T.Edge(x, y), _val(y, 1))),
                ),
            )
        )
    # Every marker v >= 2 is immediately followed by a (v-1)-marker.
    for v in range(2, m + 1):
        parts.append(
            T.Forall(
                x,
                T.implies(
                    _val(x, v),
                    T.Exists(y, T.conj(T.Edge(x, y), _val(y, v - 1))),
                ),
            )
        )
    # For m >= 2, every 1-marker is immediately preceded by a 2-marker.
    if m >= 2:
        parts.append(
            T.Forall(
                x,
                T.implies(
                    _val(x, 1),
                    T.Exists(y, T.conj(T.Edge(y, x), _val(y, 2))),
                ),
            )
        )
    # Every plain value lies in some 1-region.
    parts.append(
        T.Forall(
            x,
            T.implies(
                _is_value(x, m),
                T.Exists(
                    y,
                    T.conj(
                        _val(y, 1),
                        _before(y, x),
                        _no_boundary_between(y, x, m, 1, z),
                    ),
                ),
            ),
        )
    )
    return T.conj(*parts)


def lm_formula(m: int) -> TreeFormula:
    """The Lemma 4.2 sentence defining L^m over monadic string trees."""
    if m < 1:
        raise ValueError("m must be >= 1")
    u, u2, h, g = NVar("mu"), NVar("mv"), NVar("mh"), NVar("mg")

    def side_marker(marker: NVar, left: bool) -> TreeFormula:
        placement = _before(marker, h) if left else _before(h, marker)
        if m == 1:
            # level-1 top: the unique 1-marker of each side; its
            # "introduced set" is the whole side.  We treat the marker
            # itself as introducing via a virtual level-2 anchor below.
            return T.conj(_val(marker, 1), placement)
        return T.conj(_val(marker, m), placement)

    if m == 1:
        # f#g with f, g level-1: equality of the two value sets.
        w, w2, z = NVar("w"), NVar("w2"), NVar("z")

        def included(left_to_right: bool) -> TreeFormula:
            in_f = T.conj(
                _is_value(w, m),
                _before(w, h) if left_to_right else _before(h, w),
            )
            in_g = T.conj(
                _is_value(w2, m),
                _before(h, w2) if left_to_right else _before(w2, h),
                T.ValEq(STRING_ATTR, w, STRING_ATTR, w2),
            )
            return T.Forall(w, T.implies(in_f, T.Exists(w2, in_g)))

        body = T.conj(included(True), included(False))
        return T.conj(
            well_formedness(m),
            T.Forall(h, T.implies(_is_hash(h), body)),
        )

    forward = T.Forall(
        u,
        T.implies(
            side_marker(u, left=True),
            T.Exists(
                u2,
                T.conj(side_marker(u2, left=False), _eq_intro(u, u2, m, m, 0)),
            ),
        ),
    )
    backward = T.Forall(
        u2,
        T.implies(
            side_marker(u2, left=False),
            T.Exists(
                u,
                T.conj(side_marker(u, left=True), _eq_intro(u2, u, m, m, 0)),
            ),
        ),
    )
    return T.conj(
        well_formedness(m),
        T.Forall(h, T.implies(_is_hash(h), T.conj(forward, backward))),
    )
