"""Hypersets, their encodings, and the counting core of Section 4.

* :mod:`repro.hypersets.hyperset` — i-hypersets over D;
* :mod:`repro.hypersets.encoding` — the paper's string encodings,
  decoder, and the language L^m;
* :mod:`repro.hypersets.fo_def` — the Lemma 4.2 FO sentence per m;
* :mod:`repro.hypersets.counting` — exp-towers, hyperset counts, and
  the Lemma 4.6 dialogue-vs-hyperset crossover.
"""

from .hyperset import Hyperset, HypersetError, all_hypersets, random_hyperset
from .encoding import (
    EncodingError,
    check_domain,
    decode,
    encode,
    in_lm,
    is_marker,
    lm_word,
    markers,
    split_encoding,
)
from .fo_def import lm_formula, well_formedness
from .counting import (
    CrossoverReport,
    Tower,
    atomic_formula_count,
    count_hypersets,
    crossover,
    delta_bound,
    dialogue_bound,
    exp_tower,
    hyperset_tower,
    lemma_43_type_bound,
    tower_add_logs,
    tower_mul,
    tower_pow,
)

__all__ = [
    "Hyperset",
    "HypersetError",
    "all_hypersets",
    "random_hyperset",
    "EncodingError",
    "check_domain",
    "decode",
    "encode",
    "in_lm",
    "is_marker",
    "lm_word",
    "markers",
    "split_encoding",
    "lm_formula",
    "well_formedness",
    "CrossoverReport",
    "Tower",
    "atomic_formula_count",
    "count_hypersets",
    "crossover",
    "delta_bound",
    "dialogue_bound",
    "exp_tower",
    "hyperset_tower",
    "lemma_43_type_bound",
    "tower_add_logs",
    "tower_mul",
    "tower_pow",
]
