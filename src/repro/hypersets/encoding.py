"""String encodings of hypersets and the language L^m (Section 4).

Fix m > 0 and let D_m = D ∖ {1, …, m} (the small numbers become
markers).  The paper's encoding:

* ``1 d₁ d₂ ⋯ dₙ`` encodes the 1-hyperset {d₁, …, dₙ};
* for i ≤ m and encodings w₁ … wₙ of (i−1)-hypersets,
  ``i w₁ i w₂ ⋯ i wₙ`` encodes the i-hyperset {H(w₁), …, H(wₙ)}
  (n = 0 gives the empty string for the empty i-hyperset, i ≥ 2).

Encodings are not unique (element order and repetitions are free); the
decoder accepts any well-formed string.  ``L^m`` is the split-string
language {f#g : f, g encodings of m-hypersets over D_m ∖ {#} and
H(f) = H(g)} — FO-definable (Lemma 4.2, see
:mod:`repro.hypersets.fo_def`) yet not computable by any tw^{r,l}
(Theorem 4.1).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..trees.strings import HASH
from ..trees.values import DataValue
from .hyperset import Hyperset, HypersetError


class EncodingError(ValueError):
    """Raised on strings that are not well-formed encodings."""


def markers(m: int) -> Tuple[int, ...]:
    """The marker symbols 1..m."""
    if m < 1:
        raise EncodingError("level must be >= 1")
    return tuple(range(1, m + 1))


def is_marker(value: DataValue, m: int) -> bool:
    """True iff ``value`` is one of the markers 1..m (booleans are not
    D-values, let alone markers)."""
    return isinstance(value, int) and not isinstance(value, bool) and 1 <= value <= m


def check_domain(values: Sequence[DataValue], m: int) -> None:
    """D_m excludes the markers (and # which delimits split strings)."""
    for v in values:
        if is_marker(v, m):
            raise EncodingError(f"value {v!r} collides with a marker (1..{m})")
        if v == HASH:
            raise EncodingError("values may not be the # split marker")


def encode(hyperset: Hyperset, m: int = 0) -> List[DataValue]:
    """A canonical encoding (elements in sorted order).

    ``m`` defaults to the hyperset's level (the usual top-level call);
    pass a larger m to validate the value domain against deeper nesting
    contexts.
    """
    m = m or hyperset.level
    check_domain(sorted(hyperset.values(), key=repr), m)
    return _encode(hyperset)


def _encode(h: Hyperset) -> List[DataValue]:
    if h.level == 1:
        return [1] + sorted(h.elements, key=repr)
    out: List[DataValue] = []
    for element in sorted(h.elements, key=repr):
        out.append(h.level)
        out.extend(_encode(element))
    return out  # the empty i-hyperset (i >= 2) encodes as the empty string


def decode(word: Sequence[DataValue], m: int) -> Hyperset:
    """Parse a level-``m`` encoding (markers 1..m); raises
    :class:`EncodingError` on malformed input."""
    if m < 1:
        raise EncodingError("level must be >= 1")
    value, rest = _parse(list(word), m, m)
    if rest:
        raise EncodingError(f"trailing symbols after the encoding: {rest!r}")
    return value


def _parse(
    rest: List[DataValue], level: int, m: int
) -> Tuple[Hyperset, List[DataValue]]:
    if level == 1:
        if not rest or rest[0] != 1:
            raise EncodingError(
                f"level-1 encoding must start with the marker 1, got "
                f"{rest[:1]!r}"
            )
        values: List[DataValue] = []
        i = 1
        while i < len(rest) and not is_marker(rest[i], m):
            if rest[i] == HASH:
                raise EncodingError("# inside an encoding")
            values.append(rest[i])
            i += 1
        return Hyperset.of_values(values), rest[i:]
    # level >= 2: a (possibly empty) sequence of ``level w`` groups.
    elements = set()
    while rest and rest[0] == level:
        sub, rest = _parse(rest[1:], level - 1, m)
        elements.add(sub)
    return Hyperset(level, frozenset(elements)), rest


def split_encoding(word: Sequence[DataValue]) -> Tuple[List[DataValue], List[DataValue]]:
    """Split ``f#g`` at its unique #."""
    marks = [i for i, v in enumerate(word) if v == HASH]
    if len(marks) != 1:
        raise EncodingError(f"need exactly one #, found {len(marks)}")
    return list(word[: marks[0]]), list(word[marks[0] + 1 :])


def in_lm(word: Sequence[DataValue], m: int) -> bool:
    """Direct membership test for L^m (the decoder-based reference the
    FO definition of Lemma 4.2 is checked against)."""
    try:
        left, right = split_encoding(word)
        return decode(left, m) == decode(right, m)
    except EncodingError:
        return False


def lm_word(f: Hyperset, g: Hyperset) -> List[DataValue]:
    """The split string ``enc(f) # enc(g)``."""
    if f.level != g.level:
        raise HypersetError("f and g must have the same level")
    return encode(f) + [HASH] + encode(g)
