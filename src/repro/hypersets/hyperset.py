"""i-hypersets over D (Section 4).

A 1-hyperset is a finite subset of D; for i > 1 an i-hyperset is a
finite set of (i−1)-hypersets.  The inexpressibility proof counts them
(there are exp_i(|D|) many over a finite D) and encodes them as data
strings; this module is the mathematical object itself.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple, Union

from ..trees.values import DataValue, is_data_value


class HypersetError(ValueError):
    """Raised on level mismatches or malformed contents."""


@dataclass(frozen=True)
class Hyperset:
    """An i-hyperset: ``level`` ≥ 1 and a frozenset of elements —
    D-values at level 1, (level−1)-hypersets above."""

    level: int
    elements: FrozenSet

    def __post_init__(self) -> None:
        if self.level < 1:
            raise HypersetError(f"level must be >= 1, got {self.level}")
        for element in self.elements:
            if self.level == 1:
                if not is_data_value(element):
                    raise HypersetError(
                        f"level-1 elements must be D-values: {element!r}"
                    )
            else:
                if not isinstance(element, Hyperset):
                    raise HypersetError(
                        f"level-{self.level} elements must be hypersets: "
                        f"{element!r}"
                    )
                if element.level != self.level - 1:
                    raise HypersetError(
                        f"level-{self.level} element has level "
                        f"{element.level}, expected {self.level - 1}"
                    )

    @classmethod
    def of_values(cls, values: Iterable[DataValue]) -> "Hyperset":
        """A 1-hyperset."""
        return cls(1, frozenset(values))

    @classmethod
    def of_sets(cls, sets: Iterable["Hyperset"]) -> "Hyperset":
        """An (i+1)-hyperset from i-hypersets."""
        sets = frozenset(sets)
        if not sets:
            raise HypersetError(
                "use Hyperset(level, frozenset()) for the empty hyperset "
                "(its level is not inferable)"
            )
        level = next(iter(sets)).level
        return cls(level + 1, sets)

    def __len__(self) -> int:
        return len(self.elements)

    def values(self) -> FrozenSet[DataValue]:
        """All D-values occurring anywhere."""
        if self.level == 1:
            return frozenset(self.elements)
        out: FrozenSet[DataValue] = frozenset()
        for element in self.elements:
            out |= element.values()
        return out

    def __repr__(self) -> str:
        inner = ", ".join(sorted(repr(e) for e in self.elements))
        return f"H{self.level}{{{inner}}}"


def all_hypersets(level: int, domain: Sequence[DataValue]) -> List[Hyperset]:
    """Every ``level``-hyperset over ``domain`` — exp_level(|domain|)
    many, so keep the parameters tiny."""
    if level == 1:
        out = []
        for r in range(len(domain) + 1):
            for combo in itertools.combinations(sorted(domain, key=repr), r):
                out.append(Hyperset.of_values(combo))
        return out
    below = all_hypersets(level - 1, domain)
    out = []
    for r in range(len(below) + 1):
        for combo in itertools.combinations(below, r):
            out.append(Hyperset(level, frozenset(combo)))
    return out


def random_hyperset(
    level: int,
    domain: Sequence[DataValue],
    rng: random.Random,
    density: float = 0.5,
) -> Hyperset:
    """A random ``level``-hyperset; each candidate element is kept with
    probability ``density`` (candidates at high levels are sampled, not
    enumerated, to stay tractable)."""
    if level == 1:
        kept = [d for d in domain if rng.random() < density]
        return Hyperset.of_values(kept)
    width = max(1, int(len(domain) * density) + 1)
    elements = {
        random_hyperset(level - 1, domain, rng, density)
        for _ in range(rng.randint(0, width))
    }
    return Hyperset(level, frozenset(elements))
