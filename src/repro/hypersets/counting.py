"""The counting side of Section 4: exp-towers, hyperset counts, and the
Lemma 4.6 dialogue-vs-hyperset crossover.

The inexpressibility argument is purely quantitative:

* the protocol alphabet has |Δ| ≤ exp₃(p(N + |D|)) messages
  (Lemma 4.3(2) / Definition 4.4);
* a dialogue has ≤ 2|Δ| rounds, so there are < (|Δ|+1)^(2|Δ|)
  dialogues;
* there are exp_m(|D|) m-hypersets over D;

and for m > 6 (and |D| large enough) the tower of height m overtakes
the dialogue count, forcing a collision (Lemma 4.6).  Exact integers
overflow physical memory the moment a tower exceeds height ~3, so the
crossover is computed in *tower representation* with conservative
comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple


def exp_tower(height: int, base_value: int) -> int:
    """exp_0(n) = n, exp_k(n) = 2^exp_{k-1}(n) — exact, so only for
    values that fit in memory (height ≤ 2, say)."""
    if height < 0:
        raise ValueError("height must be >= 0")
    value = base_value
    for _ in range(height):
        value = 2**value
    return value


def count_hypersets(level: int, domain_size: int) -> int:
    """#(level-hypersets over a d-element D) = exp_level(d) — exact."""
    if level < 1:
        raise ValueError("level must be >= 1")
    return exp_tower(level, domain_size)


@dataclass(frozen=True)
class Tower:
    """``exp_height(top)`` with a real ``top`` ≥ 0 — numbers far beyond
    machine range, compared via their iterated logarithms.

    Normal form: ``top`` < 2^16 (raise the height otherwise), so two
    towers compare by (height, top) after aligning heights.
    """

    height: int
    top: float

    _CAP = 2.0**16

    def __post_init__(self) -> None:
        if self.top < 0:
            raise ValueError("tower top must be >= 0")

    @classmethod
    def of(cls, value: float) -> "Tower":
        return cls(0, float(value)).normalized()

    def normalized(self) -> "Tower":
        height, top = self.height, self.top
        while top >= self._CAP:
            top = math.log2(top)
            height += 1
        while height > 0 and top < 1.0:
            top = 2.0**top
            height -= 1
        return Tower(height, top)

    def log2(self) -> "Tower":
        """⌈log₂⌉ of the tower (exact for height ≥ 1)."""
        norm = self.normalized()
        if norm.height == 0:
            return Tower(0, math.log2(max(norm.top, 1.0))).normalized()
        return Tower(norm.height - 1, norm.top).normalized()

    def exp2(self) -> "Tower":
        """2^self."""
        norm = self.normalized()
        return Tower(norm.height + 1, norm.top).normalized()

    def __lt__(self, other: "Tower") -> bool:
        a, b = self.normalized(), other.normalized()
        if a.height != b.height:
            # Different heights in normal form with top in [1, 2^16):
            # the taller tower wins whenever its top ≥ 1 ⋅ (true since
            # normal form pushes tops ≥ 1 at height > 0).
            return a.height < b.height
        return a.top < b.top

    def __le__(self, other: "Tower") -> bool:
        return not other < self

    def __repr__(self) -> str:
        norm = self.normalized()
        return f"exp_{norm.height}({norm.top:.4g})"


def tower_mul(a: Tower, b: Tower) -> Tower:
    """a·b via log₂(ab) = log₂ a + log₂ b (upper-bound flavour; exact
    enough for crossover hunting where gaps are astronomical)."""
    la, lb = a.log2(), b.log2()
    return tower_add_logs(la, lb).exp2()


def tower_pow(base: Tower, exponent: Tower) -> Tower:
    """base^exponent = 2^(exponent · log₂ base)."""
    return tower_mul(exponent, base.log2()).exp2()


def tower_add_logs(a: Tower, b: Tower) -> Tower:
    """a + b, adequate at tower scale: max(a,b) ≤ a+b ≤ 2·max(a,b), and
    a factor 2 vanishes against any height difference."""
    big, small = (a, b) if b < a else (b, a)
    norm = big.normalized()
    small_norm = small.normalized()
    if norm.height == 0:
        top = norm.top + (small_norm.top if small_norm.height == 0 else norm.top)
        return Tower(0, top).normalized()
    # At height >= 1 the smaller addend at most doubles the value — a
    # nudge that vanishes after one log level.
    return Tower(norm.height, norm.top + 1e-9).normalized()


def hyperset_tower(level: int, domain_size: int) -> Tower:
    """exp_level(d) as a tower."""
    return Tower(level, float(domain_size)).normalized()


def delta_bound(n: int, d: int, poly: Callable[[int], int] = lambda v: v**2) -> Tower:
    """|Δ| ≤ exp₃(p(N + |D|)) (Definition 4.4 / Lemma 4.3(2))."""
    return Tower(3, float(poly(n + d))).normalized()


def dialogue_bound(n: int, d: int, poly: Callable[[int], int] = lambda v: v**2) -> Tower:
    """#dialogues < (|Δ|+1)^(2|Δ|) (Lemma 4.6's counting step)."""
    delta = delta_bound(n, d, poly)
    two_delta = tower_mul(Tower.of(2.0), delta)
    return tower_pow(tower_add_logs(delta, Tower.of(1.0)), two_delta)


@dataclass
class CrossoverReport:
    """Where hypersets overtake dialogues — 'who wins, and where'."""

    n: int
    d: int
    rows: List[Tuple[int, Tower, Tower, bool]]  # (m, hypersets, dialogues, hypersets_win)
    crossover_m: Optional[int]


def crossover(n: int, d: int, max_m: int = 10,
              poly: Callable[[int], int] = lambda v: v**2) -> CrossoverReport:
    """For m = 1..max_m compare exp_m(d) against the dialogue bound;
    report the first m where the hypersets win — the pigeonhole of
    Lemma 4.6 applies from there on."""
    dialogues = dialogue_bound(n, d, poly)
    rows = []
    first = None
    for m in range(1, max_m + 1):
        hypersets = hyperset_tower(m, d)
        win = dialogues < hypersets
        rows.append((m, hypersets, dialogues, win))
        if win and first is None:
            first = m
    return CrossoverReport(n, d, rows, first)


def lemma_43_type_bound(k: int, d: int,
                        poly: Callable[[int], int] = lambda v: v**2) -> Tower:
    """#(≡_k classes) ≤ exp₃(p(k + |D|)) — Lemma 4.3(2)."""
    return Tower(3, float(poly(k + d))).normalized()


def atomic_formula_count(k: int, d: int) -> int:
    """A concrete polynomial p for the string vocabulary: pairwise
    atoms (order/succ/equality/value-equality) plus per-variable value
    and boundary atoms — the counting step of the Lemma 4.3(2) proof."""
    pairwise = 5 * k * k        # <, =, succ both ways, val_eq
    unary = k * (d + 4)         # val=d for each d; first/second/last/second-last
    return pairwise + unary
