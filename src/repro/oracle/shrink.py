"""Delta-debugging shrinker for disagreeing oracle cases.

Greedy descent: propose strictly smaller variants of the failing case
(tree first — subtree promotions, node deletions, value normalisation —
then query variants from the pair), re-check each through the pair, and
commit to the first variant that reproduces the *same class* of
disagreement.  Repeat until no variant reproduces or the evaluation
budget runs out.  The result is what gets persisted to the corpus, so
keeping it tiny keeps the regression suite fast and the bug readable.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..trees.node import NodeId
from ..trees.tree import Tree, TreeNode
from ..trees.values import BOTTOM
from .pairs import Case, EnginePair, Outcome, crash_outcome


def _rebuild_without(tree: Tree, doomed: NodeId) -> Tree:
    """A copy of ``tree`` with the whole subtree at ``doomed`` removed
    (later siblings slide left).  ``doomed`` must not be the root."""

    def build(u: NodeId) -> TreeNode:
        node = TreeNode(
            tree.label(u),
            attrs={a: tree.val(a, u) for a in tree.attributes},
        )
        for child in tree.children(u):
            if child != doomed:
                node.add(build(child))
        return node

    return Tree.build(build(()), attributes=tree.attributes)


def _normalised_values(tree: Tree) -> Iterator[Tree]:
    """Variants with one attribute flattened to a single value —
    data-value noise rarely matters for a structural bug."""
    for attr in tree.attributes:
        values = {tree.val(attr, u) for u in tree.nodes}
        values.discard(BOTTOM)
        if len(values) > 1:
            base = sorted(values, key=repr)[0]
            yield tree.with_attribute(attr, {u: base for u in tree.nodes})


def _tree_candidates(tree: Tree) -> Iterator[Tree]:
    # Promote a child subtree to be the whole tree: the biggest single cut.
    for child in tree.children(()):
        yield tree.subtree(child)
    # Delete individual subtrees, shallowest (largest) first.
    for node in sorted(tree.nodes[1:], key=len):
        yield _rebuild_without(tree, node)
    yield from _normalised_values(tree)


def _candidates(pair: EnginePair, case: Case) -> Iterator[Case]:
    for tree in _tree_candidates(case.tree):
        context = case.context
        if context is not None and context not in tree:
            context = ()
        yield Case(tree, case.query, context)
    for query in pair.shrink_query(case.query):
        yield Case(case.tree, query, case.context)
    # A smaller query on a smaller tree often only reproduces jointly;
    # one combined round closes that gap without a full product search.
    for tree in _tree_candidates(case.tree):
        for query in pair.shrink_query(case.query):
            context = case.context
            if context is not None and context not in tree:
                context = ()
            yield Case(tree, query, context)


def _weight(case: Case) -> Tuple[int, int, int]:
    """Strictly decreasing along any accepted shrink step (tree size,
    then a textual proxy for query complexity, then attribute-value
    diversity), so the greedy descent terminates without ping-ponging
    between equal variants."""
    diversity = sum(
        len({case.tree.val(a, u) for u in case.tree.nodes})
        for a in case.tree.attributes
    )
    return case.tree.size, len(repr(case.query)), diversity


def shrink_case(
    pair: EnginePair, case: Case, max_evals: int = 400
) -> Tuple[Case, Outcome, int]:
    """Minimise a disagreeing case.

    Returns ``(smallest case, its outcome, checks spent)``.  If the
    given case does not actually disagree, it is returned unchanged.
    """
    try:
        outcome = pair.check(case)
    except Exception as exc:  # crash cases shrink like any other
        outcome = crash_outcome(exc)
    problem = outcome.problem_class
    evals = 1
    if problem is None:
        return case, outcome, evals
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _candidates(pair, case):
            if evals >= max_evals:
                break
            if _weight(candidate) >= _weight(case):
                continue
            try:
                result = pair.check(candidate)
            except Exception as exc:
                # A crashing variant reproduces a "crash" case; for a
                # mismatch case it is just a degenerate dead end.
                result = crash_outcome(exc)
            evals += 1
            if result.problem_class == problem:
                case, outcome = candidate, result
                improved = True
                break
    return case, outcome, evals
