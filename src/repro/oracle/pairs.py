"""Engine pairs: one differential check per equivalence in the paper.

Each :class:`EnginePair` knows how to *generate* a random (tree, query)
case, *check* it through two independent evaluation routes, *shrink* the
query part, and *encode*/*decode* the query as JSON for the corpus.

The fourteen pairs and the equivalence each one guards:

==============================  ====================================================
``xpath/fo``                    XPath evaluator vs its FO(∃*) compilation (§2.3),
                                plus LRU-cache determinism of ``TreeDatabase``
``xpath/caterpillar``           walking XPath sub-fragment vs its caterpillar
                                translation ([7]: child = down·right*)
``caterpillar/ntwa``            caterpillar NFA walk vs the compiled NTWA (§6)
``runner/memo``                 direct automaton runner vs the memoised
                                configuration-graph evaluator (Theorem 7.1)
``automaton/spec``              example automata vs their independent FO or
                                Python specifications (Definition 3.1 / Ex. 3.2)
``fo/enum``                     ``ExistsStarQuery.select`` vs a from-scratch
                                enumeration of the existential prefix
``fo/fast-fo``                  the assignment-at-a-time FO model checker vs the
                                indexed set-at-a-time engine (:mod:`repro.engine`),
                                on full FO with ∀/→/¬ freely nested
``auto/fast-fo``                the cost-based planner's ``auto`` route (with
                                guarded execution forced on) vs the fast FO
                                engine run directly
``xpath/fast-xpath``            the node-at-a-time XPath evaluator vs the
                                bitset/interval engine, with a raised variable cap
``caterpillar/fast-caterpillar``  the reference Thompson-NFA walk vs the compiled
                                product-graph walking engine
                                (:mod:`repro.engine.walk`), on the full denoted
                                relation (stacked ``all_pairs``) *and* one
                                per-context walk
``ntwa/fast-caterpillar``       the compiled NTWA (§6) vs the walking engine:
                                per-start acceptance equals per-start
                                nonemptiness of the compiled product
``corpus/sequential``           the set-at-a-time corpus batch executor
                                (:mod:`repro.corpus`) vs a loop of single-tree
                                facade calls, element-wise, under two chunkings
``vectorized/sequential``       the stacked shard executor — every tree of a
                                chunk packed into one wide integer per IR op —
                                vs the same per-tree loop, under two chunkings
``store/sequential``            a disk-backed :class:`~repro.corpus.CorpusStore`
                                batch (segment files, mmap-lazy loading) vs the
                                in-memory per-tree loop, under two chunkings
==============================  ====================================================
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from ..automata.nondet import ntwa_accepts
from ..automata.runner import ExecutionError, run
from ..caterpillar.ast import (
    Alt,
    Caterpillar,
    Concat,
    DOWN,
    Epsilon,
    LabelTest,
    Move,
    RIGHT,
    Star,
    concat,
    star,
)
from ..caterpillar.compile_ntwa import caterpillar_to_ntwa
from ..caterpillar.nfa import relation as caterpillar_relation, walk
from ..caterpillar.parser import format_caterpillar, parse_caterpillar
from ..engine import fo as fast_fo
from ..engine import walk as engine_walk
from ..engine import xpath as fast_xpath
from ..engine.planner import Planner
from ..resilience.log import ResilienceLog
from ..logic import tree_fo
from ..logic.exists_star import ExistsStarQuery, FragmentError
from ..logic.parser import format_formula, parse_formula
from ..logic.tree_fo import NVar, TreeFormula
from ..queries import TreeDatabase
from ..simulation.configgraph import evaluate_memo
from ..trees.delimited import delim
from ..trees.node import NodeId
from ..trees.tree import Tree
from ..xpath.ast import (
    Expr,
    NameTest,
    Path,
    SelfTest,
    Step,
    Union_,
    Wildcard,
)
from ..xpath.compiler import compile_xpath
from ..xpath.evaluator import select as xpath_select
from ..xpath.parser import parse_xpath
from . import generators as gen
from .generators import AutomatonSpecimen

#: Shared fuel for the runner/memo pair — finite so that genuinely
#: diverging tw^{r,l} runs surface as a (matching) FuelExhausted on both
#: sides instead of hanging the fuzzer.
FUEL = 200_000

X = NVar("x")
Y = NVar("y")


@dataclass(frozen=True)
class Case:
    """One differential test input: a tree, a pair-specific query
    payload, and (for node-selecting pairs) a context node."""

    tree: Tree
    query: object
    context: Optional[NodeId] = None


@dataclass(frozen=True)
class Outcome:
    """The two engines' verdicts on one case."""

    agree: bool
    left: str
    right: str
    left_seconds: float = 0.0
    right_seconds: float = 0.0
    left_steps: Optional[int] = None
    right_steps: Optional[int] = None
    error: Optional[str] = None

    @property
    def problem_class(self) -> Optional[str]:
        """What kind of failure this is (used to keep shrinking honest:
        a candidate must reproduce the *same* kind)."""
        if self.agree:
            return None
        if self.error and self.error.startswith("crash:"):
            return "crash"
        return "error" if self.error else "mismatch"


def crash_outcome(exc: BaseException) -> Outcome:
    """An engine exception demoted to a structured ``crash``
    disagreement — the driver persists these to the corpus like value
    mismatches instead of aborting the whole fuzzing run."""
    return Outcome(
        agree=False,
        left="?",
        right="?",
        error=f"crash: {type(exc).__name__}: {exc}",
    )


def _timed(thunk):
    started = time.perf_counter()
    value = thunk()
    return value, time.perf_counter() - started


def _summary(nodes: Sequence[NodeId]) -> str:
    return "{" + ", ".join(str(list(u)) for u in nodes) + "}"


class EnginePair:
    """Interface of one differential check."""

    name: str = "?"

    def generate(self, rng: random.Random, max_size: int) -> Case:
        raise NotImplementedError

    def check(self, case: Case) -> Outcome:
        raise NotImplementedError

    def shrink_query(self, query: object) -> Iterable[object]:
        """Strictly simpler query candidates (need not preserve
        semantics — the shrinker re-checks every candidate)."""
        return ()

    def encode_query(self, query: object) -> object:
        raise NotImplementedError

    def decode_query(self, payload: object) -> object:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<EnginePair {self.name}>"


# ---------------------------------------------------------------------------
# xpath/fo
# ---------------------------------------------------------------------------


def _shrink_path(path: Path) -> Iterable[Path]:
    if path.absolute:
        yield replace(path, absolute=False)
    for i in range(len(path.steps)):
        if len(path.steps) > 1:
            steps = path.steps[:i] + path.steps[i + 1 :]
            axes = path.axes[:i] + path.axes[i + 1 :] if i < len(path.axes) \
                else path.axes[: i - 1]
            yield replace(path, steps=steps, axes=axes)
        step = path.steps[i]
        for j in range(len(step.filters)):
            filters = step.filters[:j] + step.filters[j + 1 :]
            yield replace(
                path,
                steps=path.steps[:i]
                + (Step(step.test, filters),)
                + path.steps[i + 1 :],
            )
        for j, filt in enumerate(step.filters):
            for smaller in _shrink_path(filt):
                filters = step.filters[:j] + (smaller,) + step.filters[j + 1 :]
                yield replace(
                    path,
                    steps=path.steps[:i]
                    + (Step(step.test, filters),)
                    + path.steps[i + 1 :],
                )


def _shrink_xpath(expr: Expr) -> Iterable[Expr]:
    if isinstance(expr, Union_):
        yield from expr.alternatives
        if len(expr.alternatives) > 2:
            for i in range(len(expr.alternatives)):
                yield Union_(
                    expr.alternatives[:i] + expr.alternatives[i + 1 :]
                )
        for i, alt_path in enumerate(expr.alternatives):
            for smaller in _shrink_xpath(alt_path):
                yield Union_(
                    expr.alternatives[:i]
                    + (smaller,)
                    + expr.alternatives[i + 1 :]
                )
    else:
        yield from _shrink_path(expr)


class XPathVsFO(EnginePair):
    """XPath evaluator vs ``compile_xpath`` (§2.3), cross-checked at a
    random context node; also asserts that a cached re-evaluation
    through :class:`TreeDatabase` returns the identical answer."""

    name = "xpath/fo"

    def generate(self, rng: random.Random, max_size: int) -> Case:
        tree = gen.random_attributed_tree(rng, max_size)
        expr = gen.random_xpath(rng)
        return Case(tree, expr, gen.random_context(rng, tree))

    def check(self, case: Case) -> Outcome:
        expr: Expr = case.query
        left, left_s = _timed(
            lambda: xpath_select(expr, case.tree, case.context)
        )
        # LRU-cache determinism: the second (cached) evaluation through
        # the facade must return exactly what the first did.
        db = TreeDatabase(case.tree)
        text = repr(expr)
        first = db.xpath(text, case.context)
        second = db.xpath(text, case.context)
        info = db.cache_info()
        if first != second or info.hits < 1:
            return Outcome(
                False, _summary(first), _summary(second),
                error=f"xpath cache changed the answer (cache_info={info})",
            )
        query = compile_xpath(expr)
        right, right_s = _timed(lambda: query.select(case.tree, case.context))
        return Outcome(
            left == right, _summary(left), _summary(right), left_s, right_s
        )

    def shrink_query(self, query: Expr) -> Iterable[Expr]:
        return _shrink_xpath(query)

    def encode_query(self, query: Expr) -> object:
        return repr(query)

    def decode_query(self, payload: object) -> Expr:
        return parse_xpath(payload)


# ---------------------------------------------------------------------------
# xpath/caterpillar
# ---------------------------------------------------------------------------

#: One XPath child step as a caterpillar walk: first child, then any
#: number of right-sibling moves.
_CHILD_WALK = concat(Move(DOWN), star(Move(RIGHT)))
#: Proper descendant: one or more child walks.
_DESCENDANT_WALK = concat(_CHILD_WALK, star(_CHILD_WALK))


def path_to_caterpillar(path: Path) -> Caterpillar:
    """Translate a relative, filter-free path into a caterpillar
    expression denoting the same binary relation ([7], and the §6
    remark that caterpillars subsume such XPath navigation)."""
    if path.absolute:
        raise ValueError("only relative paths translate to walks")
    parts: List[Caterpillar] = []

    def test(step: Step) -> None:
        if step.filters:
            raise ValueError("filters do not translate to walks")
        if isinstance(step.test, NameTest):
            parts.append(LabelTest(step.test.name))
        # Wildcard / SelfTest constrain nothing.

    test(path.steps[0])
    for axis, step in zip(path.axes, path.steps[1:]):
        parts.append(_CHILD_WALK if axis == "child" else _DESCENDANT_WALK)
        test(step)
    return concat(*parts) if parts else Epsilon()


class XPathVsCaterpillar(EnginePair):
    """The walking XPath sub-fragment (relative, filter-free,
    union-free) vs its caterpillar translation."""

    name = "xpath/caterpillar"

    def generate(self, rng: random.Random, max_size: int) -> Case:
        tree = gen.random_attributed_tree(rng, max_size)
        path = gen.random_walking_xpath(rng)
        return Case(tree, path, gen.random_context(rng, tree))

    def check(self, case: Case) -> Outcome:
        path: Path = case.query
        left, left_s = _timed(
            lambda: xpath_select(path, case.tree, case.context)
        )
        expr = path_to_caterpillar(path)
        right, right_s = _timed(lambda: walk(expr, case.tree, case.context))
        return Outcome(
            tuple(left) == tuple(right),
            _summary(left), _summary(right), left_s, right_s,
        )

    def shrink_query(self, query: Path) -> Iterable[Path]:
        return (p for p in _shrink_path(query) if not p.absolute)

    def encode_query(self, query: Path) -> object:
        return repr(query)

    def decode_query(self, payload: object) -> Path:
        return parse_xpath(payload)


# ---------------------------------------------------------------------------
# caterpillar/ntwa
# ---------------------------------------------------------------------------


def _shrink_caterpillar(expr: Caterpillar) -> Iterable[Caterpillar]:
    if isinstance(expr, Star):
        yield expr.inner
        yield Epsilon()
    elif isinstance(expr, Concat):
        yield from expr.parts
        for i in range(len(expr.parts)):
            yield concat(*(expr.parts[:i] + expr.parts[i + 1 :]))
    elif isinstance(expr, Alt):
        yield from expr.options
        for i in range(len(expr.options)):
            yield alt_or_single(expr.options[:i] + expr.options[i + 1 :])
    elif not isinstance(expr, Epsilon):
        yield Epsilon()


def alt_or_single(options: Tuple[Caterpillar, ...]) -> Caterpillar:
    from ..caterpillar.ast import alt

    return alt(*options) if options else Epsilon()


class CaterpillarVsNTWA(EnginePair):
    """Caterpillar NFA semantics vs the compiled nondeterministic
    tree-walking automaton: from every start node, the walk reaches
    *some* node iff the NTWA accepts (§6 simulation)."""

    name = "caterpillar/ntwa"

    def generate(self, rng: random.Random, max_size: int) -> Case:
        tree = gen.random_attributed_tree(rng, max_size)
        expr = gen.random_caterpillar(rng, budget=rng.randint(2, 6))
        return Case(tree, expr)

    def check(self, case: Case) -> Outcome:
        expr: Caterpillar = case.query
        left, left_s = _timed(
            lambda: tuple(
                bool(walk(expr, case.tree, u)) for u in case.tree.nodes
            )
        )
        ntwa = caterpillar_to_ntwa(expr)
        right, right_s = _timed(
            lambda: tuple(
                ntwa_accepts(ntwa, case.tree, start=u)
                for u in case.tree.nodes
            )
        )
        return Outcome(left == right, str(left), str(right), left_s, right_s)

    def shrink_query(self, query: Caterpillar) -> Iterable[Caterpillar]:
        return _shrink_caterpillar(query)

    def encode_query(self, query: Caterpillar) -> object:
        return format_caterpillar(query)

    def decode_query(self, payload: object) -> Caterpillar:
        return parse_caterpillar(payload)


# ---------------------------------------------------------------------------
# runner/memo
# ---------------------------------------------------------------------------


def _verdict(thunk) -> Tuple[str, Optional[int], float, Optional[str]]:
    """(verdict text, steps, seconds, error class) — execution errors
    (nondeterminism, fuel exhaustion) become part of the verdict, so two
    engines agreeing on the *same* error still agree."""
    started = time.perf_counter()
    try:
        verdict, steps = thunk()
    except ExecutionError as exc:
        name = type(exc).__name__
        return name, None, time.perf_counter() - started, name
    return verdict, steps, time.perf_counter() - started, None


class RunnerVsMemo(EnginePair):
    """The direct runner vs the memoised configuration-graph evaluator
    (Theorem 7.1): identical accept/reject on every input, with the
    step counters of both sides recorded for the report."""

    name = "runner/memo"

    def generate(self, rng: random.Random, max_size: int) -> Case:
        tree = gen.random_attributed_tree(rng, max_size)
        return Case(tree, gen.random_automaton_specimen(rng))

    def check(self, case: Case) -> Outcome:
        specimen: AutomatonSpecimen = case.query
        automaton, delimited = specimen.build()
        tree = delim(case.tree) if delimited else case.tree

        def direct():
            result = run(automaton, tree, fuel=FUEL)
            return str(result.accepted), result.steps

        def memo():
            result = evaluate_memo(automaton, tree, fuel=FUEL)
            return str(result.accepted), result.stats.steps

        lv, ls, lt, le = _verdict(direct)
        rv, rs, rt, re_ = _verdict(memo)
        agree = lv == rv
        error = None
        if not agree and (le or re_):
            error = f"runner={le or 'ok'} memo={re_ or 'ok'}"
        return Outcome(agree, lv, rv, lt, rt, ls, rs, error)

    def shrink_query(self, query: AutomatonSpecimen) -> Iterable[AutomatonSpecimen]:
        return _shrink_specimen(query)

    def encode_query(self, query: AutomatonSpecimen) -> object:
        return {"template": query.template, "params": list(query.params)}

    def decode_query(self, payload: object) -> AutomatonSpecimen:
        return AutomatonSpecimen(payload["template"], tuple(payload["params"]))


def _shrink_specimen(specimen: AutomatonSpecimen) -> Iterable[AutomatonSpecimen]:
    pool = gen.TEMPLATES[specimen.template].param_pool
    for params in pool:
        if params != specimen.params:
            yield AutomatonSpecimen(specimen.template, params)


# ---------------------------------------------------------------------------
# automaton/spec
# ---------------------------------------------------------------------------


class AutomatonVsSpec(EnginePair):
    """Each library automaton vs the independent specification shipped
    with it — an FO sentence model-checked by :mod:`repro.logic.tree_fo`
    or a plain-Python reference predicate."""

    name = "automaton/spec"

    def generate(self, rng: random.Random, max_size: int) -> Case:
        tree = gen.random_attributed_tree(rng, max_size)
        return Case(tree, gen.random_automaton_specimen(rng))

    def check(self, case: Case) -> Outcome:
        specimen: AutomatonSpecimen = case.query
        automaton, delimited = specimen.build()
        tree = delim(case.tree) if delimited else case.tree
        kind, spec = specimen.spec()

        def automaton_side():
            result = run(automaton, tree, fuel=FUEL)
            return str(result.accepted), result.steps

        lv, ls, lt, le = _verdict(automaton_side)
        if kind == "fo":
            right_thunk = lambda: tree_fo.evaluate(spec, case.tree)
        else:
            right_thunk = lambda: spec(case.tree)
        right, right_s = _timed(right_thunk)
        rv = str(right)
        if le is not None:
            return Outcome(
                False, lv, rv, lt, right_s, ls, None,
                error=f"automaton raised {le}",
            )
        return Outcome(lv == rv, lv, rv, lt, right_s, ls, None)

    def shrink_query(self, query: AutomatonSpecimen) -> Iterable[AutomatonSpecimen]:
        return _shrink_specimen(query)

    def encode_query(self, query: AutomatonSpecimen) -> object:
        return {"template": query.template, "params": list(query.params)}

    def decode_query(self, payload: object) -> AutomatonSpecimen:
        return AutomatonSpecimen(payload["template"], tuple(payload["params"]))


# ---------------------------------------------------------------------------
# fo/enum
# ---------------------------------------------------------------------------


def _atom_holds(formula: TreeFormula, tree: Tree, env) -> bool:
    """From-scratch atom semantics — deliberately *not* routed through
    :func:`tree_fo.evaluate`, so the two sides share no code."""
    if isinstance(formula, tree_fo.TrueF):
        return True
    if isinstance(formula, tree_fo.FalseF):
        return False
    if isinstance(formula, tree_fo.Edge):
        u, v = env[formula.parent], env[formula.child]
        return len(v) == len(u) + 1 and v[: len(u)] == u
    if isinstance(formula, tree_fo.Desc):
        u, v = env[formula.ancestor], env[formula.descendant]
        return len(v) > len(u) and v[: len(u)] == u
    if isinstance(formula, tree_fo.SibLess):
        u, v = env[formula.left], env[formula.right]
        return bool(u) and bool(v) and u[:-1] == v[:-1] and u[-1] < v[-1]
    if isinstance(formula, tree_fo.Succ):
        u, v = env[formula.left], env[formula.right]
        return bool(u) and bool(v) and u[:-1] == v[:-1] and u[-1] + 1 == v[-1]
    if isinstance(formula, tree_fo.NodeEq):
        return env[formula.left] == env[formula.right]
    if isinstance(formula, tree_fo.Label):
        return tree.label(env[formula.var]) == formula.symbol
    if isinstance(formula, tree_fo.Root):
        return env[formula.var] == ()
    if isinstance(formula, tree_fo.Leaf):
        u = env[formula.var]
        return u + (0,) not in tree
    if isinstance(formula, tree_fo.First):
        u = env[formula.var]
        return len(u) >= 1 and u[-1] == 0
    if isinstance(formula, tree_fo.Last):
        u = env[formula.var]
        return len(u) >= 1 and u[:-1] + (u[-1] + 1,) not in tree
    if isinstance(formula, tree_fo.ValEq):
        left = tree.val(formula.attr_left, env[formula.left])
        right = tree.val(formula.attr_right, env[formula.right])
        return left == right
    if isinstance(formula, tree_fo.ValConst):
        return tree.val(formula.attr, env[formula.var]) == formula.value
    raise TypeError(f"not an atom: {formula!r}")


def _matrix_holds(formula: TreeFormula, tree: Tree, env) -> bool:
    if isinstance(formula, tree_fo.Not):
        return not _matrix_holds(formula.inner, tree, env)
    if isinstance(formula, tree_fo.And):
        return all(_matrix_holds(p, tree, env) for p in formula.parts)
    if isinstance(formula, tree_fo.Or):
        return any(_matrix_holds(p, tree, env) for p in formula.parts)
    if isinstance(formula, tree_fo.Implies):
        return (not _matrix_holds(formula.premise, tree, env)) or _matrix_holds(
            formula.conclusion, tree, env
        )
    return _atom_holds(formula, tree, env)


def enumerate_select(
    formula: TreeFormula, tree: Tree, context: NodeId
) -> Tuple[NodeId, ...]:
    """Reference semantics of a binary FO(∃*) selector: strip the
    ∃-prefix, enumerate all prefix assignments with
    :func:`itertools.product`, and apply matrix semantics written
    against raw node addresses.  Mirrors the documented
    ``ExistsStarQuery`` convention that a selector not mentioning y
    returns every node or none."""
    prefix: List[NVar] = []
    matrix = formula
    while isinstance(matrix, tree_fo.Exists):
        prefix.append(matrix.var)
        matrix = matrix.inner
    free = tree_fo.free_variables(formula)
    selected = []
    for candidate in tree.nodes:
        env = {X: context, Y: candidate}
        if any(
            _matrix_holds(matrix, tree, {**env, **dict(zip(prefix, choice))})
            for choice in itertools.product(tree.nodes, repeat=len(prefix))
        ):
            selected.append(candidate)
    if Y not in free:
        return tuple(tree.nodes) if selected else ()
    return tuple(selected)


class FOVsEnumeration(EnginePair):
    """``ExistsStarQuery.select`` vs the brute-force reference above."""

    name = "fo/enum"

    def generate(self, rng: random.Random, max_size: int) -> Case:
        # Cap the tree size: the reference enumeration is O(n^{2+prefix}).
        tree = gen.random_attributed_tree(rng, min(max_size, 8))
        formula = gen.random_exists_star(rng)
        return Case(tree, formula, gen.random_context(rng, tree))

    def check(self, case: Case) -> Outcome:
        formula: TreeFormula = case.query
        query = ExistsStarQuery(formula, X, Y)
        left, left_s = _timed(lambda: query.select(case.tree, case.context))
        right, right_s = _timed(
            lambda: enumerate_select(formula, case.tree, case.context)
        )
        return Outcome(
            left == right, _summary(left), _summary(right), left_s, right_s
        )

    def shrink_query(self, query: TreeFormula) -> Iterable[TreeFormula]:
        prefix: List[NVar] = []
        matrix = query
        while isinstance(matrix, tree_fo.Exists):
            prefix.append(matrix.var)
            matrix = matrix.inner
        candidates: List[TreeFormula] = []
        if isinstance(matrix, (tree_fo.And, tree_fo.Or)):
            candidates.extend(matrix.parts)
            if len(matrix.parts) > 2:
                ctor = tree_fo.conj if isinstance(matrix, tree_fo.And) else tree_fo.disj
                for i in range(len(matrix.parts)):
                    candidates.append(
                        ctor(*(matrix.parts[:i] + matrix.parts[i + 1 :]))
                    )
        if isinstance(matrix, tree_fo.Implies):
            candidates += [matrix.premise, matrix.conclusion]
        if isinstance(matrix, tree_fo.Not):
            candidates.append(matrix.inner)
        if prefix:
            candidates.append(matrix)  # drop the whole ∃-prefix
        for candidate in candidates:
            wrapped = tree_fo.exists(prefix, candidate) if candidate is not matrix \
                else candidate
            if tree_fo.free_variables(wrapped) <= {X, Y}:
                yield wrapped

    def encode_query(self, query: TreeFormula) -> object:
        return format_formula(query)

    def decode_query(self, payload: object) -> TreeFormula:
        return parse_formula(payload)


# ---------------------------------------------------------------------------
# fo/fast-fo
# ---------------------------------------------------------------------------


def _shrink_formula(formula: TreeFormula) -> Iterable[TreeFormula]:
    """Strictly smaller FO formulas: drop connective parts, strip
    quantifiers/negations, and recurse into every child position."""
    if isinstance(formula, (tree_fo.And, tree_fo.Or)):
        ctor = tree_fo.conj if isinstance(formula, tree_fo.And) else tree_fo.disj
        yield from formula.parts
        if len(formula.parts) > 2:
            for i in range(len(formula.parts)):
                yield ctor(*(formula.parts[:i] + formula.parts[i + 1 :]))
        for i, part in enumerate(formula.parts):
            for smaller in _shrink_formula(part):
                yield ctor(
                    *(formula.parts[:i] + (smaller,) + formula.parts[i + 1 :])
                )
    elif isinstance(formula, tree_fo.Implies):
        yield formula.premise
        yield formula.conclusion
        for smaller in _shrink_formula(formula.premise):
            yield tree_fo.implies(smaller, formula.conclusion)
        for smaller in _shrink_formula(formula.conclusion):
            yield tree_fo.implies(formula.premise, smaller)
    elif isinstance(formula, tree_fo.Not):
        yield formula.inner
        for smaller in _shrink_formula(formula.inner):
            yield tree_fo.Not(smaller)
    elif isinstance(formula, (tree_fo.Exists, tree_fo.Forall)):
        yield formula.inner
        ctor = type(formula)
        for smaller in _shrink_formula(formula.inner):
            yield ctor(formula.var, smaller)
    elif not isinstance(formula, tree_fo.TrueF):
        yield tree_fo.TrueF()


def _relation_summary(relation: Sequence[Tuple[NodeId, ...]]) -> str:
    return (
        "{"
        + ", ".join(str([list(u) for u in row]) for row in sorted(relation))
        + "}"
    )


class FOVsFastFO(EnginePair):
    """The reference assignment-at-a-time model checker vs the indexed
    set-at-a-time engine, compared on the *entire relation* of
    satisfying assignments — full FO, so the universal, implication and
    nested-quantifier paths of the fast engine are all on the line."""

    name = "fo/fast-fo"

    def generate(self, rng: random.Random, max_size: int) -> Case:
        tree = gen.random_attributed_tree(rng, max_size)
        formula = gen.random_fo_formula(rng)
        return Case(tree, formula)

    def check(self, case: Case) -> Outcome:
        formula: TreeFormula = case.query
        order = sorted(
            tree_fo.free_variables(formula), key=lambda v: v.name
        )
        left, left_s = _timed(
            lambda: tree_fo.satisfying_assignments(formula, case.tree, order)
        )
        right, right_s = _timed(
            lambda: fast_fo.satisfying_assignments(formula, case.tree, order)
        )
        return Outcome(
            left == right,
            _relation_summary(left), _relation_summary(right),
            left_s, right_s,
        )

    def shrink_query(self, query: TreeFormula) -> Iterable[TreeFormula]:
        return _shrink_formula(query)

    def encode_query(self, query: TreeFormula) -> object:
        return format_formula(query)

    def decode_query(self, payload: object) -> TreeFormula:
        return parse_formula(payload)


# ---------------------------------------------------------------------------
# auto/fast-fo
# ---------------------------------------------------------------------------


class AutoVsFastFO(EnginePair):
    """The cost-based planner's ``auto`` route vs the fast FO engine
    run directly.

    Each case is planned from sampled statistics by a fresh
    :class:`~repro.engine.planner.Planner` with ``guard_threshold=0``,
    so every planner route is on the line: a reference pick runs the
    assignment-at-a-time model checker, a fast pick always goes through
    the guarded re-plan machinery, and a case that overshoots its
    budget mid-flight re-plans onto the reference engine — all of which
    must reproduce the direct fast engine's relation exactly."""

    name = "auto/fast-fo"

    def generate(self, rng: random.Random, max_size: int) -> Case:
        tree = gen.random_attributed_tree(rng, max_size)
        formula = gen.random_fo_formula(rng)
        return Case(tree, formula)

    def check(self, case: Case) -> Outcome:
        formula: TreeFormula = case.query
        order = sorted(
            tree_fo.free_variables(formula), key=lambda v: v.name
        )
        planner = Planner(guard_threshold=0.0)
        log = ResilienceLog()

        def auto():
            plan = planner.plan_formula(formula, case.tree)
            return planner.execute(
                plan,
                "oracle-formula",
                lambda: fast_fo.satisfying_assignments(
                    formula, case.tree, order
                ),
                lambda: tree_fo.satisfying_assignments(
                    formula, case.tree, order
                ),
                None,
                log,
            )

        left, left_s = _timed(auto)
        right, right_s = _timed(
            lambda: fast_fo.satisfying_assignments(formula, case.tree, order)
        )
        return Outcome(
            left == right,
            _relation_summary(left), _relation_summary(right),
            left_s, right_s,
        )

    def shrink_query(self, query: TreeFormula) -> Iterable[TreeFormula]:
        return _shrink_formula(query)

    def encode_query(self, query: TreeFormula) -> object:
        return format_formula(query)

    def decode_query(self, payload: object) -> TreeFormula:
        return parse_formula(payload)


# ---------------------------------------------------------------------------
# xpath/fast-xpath
# ---------------------------------------------------------------------------


class XPathVsFastXPath(EnginePair):
    """The node-at-a-time XPath evaluator vs the bitset/interval engine.

    Generated with the raised :data:`~repro.oracle.generators.
    FAST_ENGINE_MAX_VARIABLES` cap: neither side compiles to FO, so
    deeper filter nesting is affordable here and exercises exactly the
    paths (descendant range masks, per-candidate filter runs) that the
    ``xpath/fo`` pair's conservative cap rarely reaches."""

    name = "xpath/fast-xpath"

    def generate(self, rng: random.Random, max_size: int) -> Case:
        tree = gen.random_attributed_tree(rng, max_size)
        expr = gen.random_xpath(
            rng, max_variables=gen.FAST_ENGINE_MAX_VARIABLES
        )
        return Case(tree, expr, gen.random_context(rng, tree))

    def check(self, case: Case) -> Outcome:
        expr: Expr = case.query
        left, left_s = _timed(
            lambda: xpath_select(expr, case.tree, case.context)
        )
        right, right_s = _timed(
            lambda: fast_xpath.select(expr, case.tree, case.context)
        )
        return Outcome(
            left == right, _summary(left), _summary(right), left_s, right_s
        )

    def shrink_query(self, query: Expr) -> Iterable[Expr]:
        return _shrink_xpath(query)

    def encode_query(self, query: Expr) -> object:
        return repr(query)

    def decode_query(self, payload: object) -> Expr:
        return parse_xpath(payload)


# ---------------------------------------------------------------------------
# caterpillar/fast-caterpillar
# ---------------------------------------------------------------------------


def _pairs_summary(relation) -> str:
    return (
        "{"
        + ", ".join(
            f"({list(u)}→{list(v)})" for u, v in sorted(relation)
        )
        + "}"
    )


class CaterpillarVsFastCaterpillar(EnginePair):
    """The reference node-at-a-time caterpillar walk vs the compiled
    product-graph walking engine (:mod:`repro.engine.walk`).

    Checked on the *full denoted relation* — the reference loops
    ``walk`` over every context while the fast engine answers with one
    stacked ``all_pairs`` BFS — and, when the relations agree, on the
    document-ordered walk from one random context, so the per-context
    frontier path is exercised too."""

    name = "caterpillar/fast-caterpillar"

    def generate(self, rng: random.Random, max_size: int) -> Case:
        tree = gen.random_attributed_tree(rng, max_size)
        expr = gen.random_caterpillar(rng, budget=rng.randint(2, 8))
        return Case(tree, expr, gen.random_context(rng, tree))

    def check(self, case: Case) -> Outcome:
        expr: Caterpillar = case.query
        left, left_s = _timed(lambda: caterpillar_relation(expr, case.tree))
        right, right_s = _timed(lambda: engine_walk.relation(expr, case.tree))
        if left != right:
            return Outcome(
                False, _pairs_summary(left), _pairs_summary(right),
                left_s, right_s,
            )
        ref_nodes = walk(expr, case.tree, case.context)
        fast_nodes = engine_walk.walk(expr, case.tree, case.context)
        return Outcome(
            tuple(ref_nodes) == tuple(fast_nodes),
            _summary(ref_nodes), _summary(fast_nodes), left_s, right_s,
        )

    def shrink_query(self, query: Caterpillar) -> Iterable[Caterpillar]:
        return _shrink_caterpillar(query)

    def encode_query(self, query: Caterpillar) -> object:
        return format_caterpillar(query)

    def decode_query(self, payload: object) -> Caterpillar:
        return parse_caterpillar(payload)


# ---------------------------------------------------------------------------
# ntwa/fast-caterpillar
# ---------------------------------------------------------------------------


class NTWAVsFastCaterpillar(EnginePair):
    """The compiled nondeterministic tree-walking automaton (§6) vs the
    walking engine: from every start node, the NTWA accepts iff the
    compiled product reaches an accepting state — the nonemptiness view
    of ``caterpillar/ntwa``, with the bitset engine on the other side
    and no code shared between the two routes."""

    name = "ntwa/fast-caterpillar"

    def generate(self, rng: random.Random, max_size: int) -> Case:
        tree = gen.random_attributed_tree(rng, max_size)
        expr = gen.random_caterpillar(rng, budget=rng.randint(2, 6))
        return Case(tree, expr)

    def check(self, case: Case) -> Outcome:
        expr: Caterpillar = case.query
        ntwa = caterpillar_to_ntwa(expr)
        left, left_s = _timed(
            lambda: tuple(
                ntwa_accepts(ntwa, case.tree, start=u)
                for u in case.tree.nodes
            )
        )
        evaluator = engine_walk.compile_walk(expr).bind(case.tree)
        right, right_s = _timed(
            lambda: tuple(
                bool(evaluator.result_mask(u)) for u in case.tree.nodes
            )
        )
        return Outcome(left == right, str(left), str(right), left_s, right_s)

    def shrink_query(self, query: Caterpillar) -> Iterable[Caterpillar]:
        return _shrink_caterpillar(query)

    def encode_query(self, query: Caterpillar) -> object:
        return format_caterpillar(query)

    def decode_query(self, payload: object) -> Caterpillar:
        return parse_caterpillar(payload)


# ---------------------------------------------------------------------------
# corpus/sequential
# ---------------------------------------------------------------------------


def _corpus_members(tree: Tree) -> List[Tree]:
    """The member trees a case's tree stands for: one corpus tree per
    root child (so members differ in shape and size), or the tree
    itself when the root is a leaf."""
    children = tree.children(())
    if not children:
        return [tree]
    return [tree.subtree(child) for child in children]


def _sequential_answers(
    members: Sequence[Tree], query: "CorpusQuery"
) -> Tuple[object, ...]:
    """The status-quo loop: one facade call per member tree."""
    out: List[object] = []
    for tree in members:
        db = TreeDatabase(tree)
        if query.kind == "xpath":
            out.append(db.xpath(query.text, query.context))
        elif query.kind == "ask":
            out.append(db.ask(query.text))
        elif query.kind == "select":
            out.append(db.select_where(query.text, context=query.context))
        elif query.kind == "caterpillar":
            out.append(db.caterpillar(query.text, query.context))
        else:  # caterpillar-relation
            out.append(tuple(sorted(db.caterpillar_relation(query.text))))
    return tuple(out)


class CorpusVsSequential(EnginePair):
    """The set-at-a-time corpus batch vs a loop of single-tree calls.

    A generated tree is split at the root into member trees; one random
    query (XPath, closed FO sentence, or caterpillar walk/relation) is
    then answered two ways: a per-tree loop through the
    :class:`TreeDatabase` facade, and one :func:`repro.corpus.run_batch`
    call — under both single-tree chunks and the default chunking, so
    chunk reassembly is on the line as well as evaluation.  The batch
    must be element-wise identical to the loop."""

    name = "corpus/sequential"

    KINDS = ("xpath", "ask", "caterpillar", "caterpillar-relation")

    def generate(self, rng: random.Random, max_size: int) -> Case:
        tree = gen.random_attributed_tree(rng, max_size)
        kind = rng.choice(self.KINDS)
        if kind == "xpath":
            text = repr(gen.random_xpath(rng))
        elif kind == "ask":
            text = format_formula(gen.random_fo_sentence(rng))
        else:
            text = format_caterpillar(
                gen.random_caterpillar(rng, budget=rng.randint(2, 6))
            )
        from ..corpus.query import CorpusQuery

        return Case(tree, CorpusQuery(kind, text))

    def check(self, case: Case) -> Outcome:
        from ..corpus.executor import run_batch

        query = case.query
        members = _corpus_members(case.tree)
        left, left_s = _timed(lambda: _sequential_answers(members, query))
        right, right_s = _timed(
            lambda: run_batch(members, [query], chunk_size=1).for_query(0)
        )
        if left != right:
            return Outcome(False, str(left), str(right), left_s, right_s)
        rechunked = run_batch(members, [query]).for_query(0)
        return Outcome(
            left == rechunked, str(left), str(rechunked), left_s, right_s
        )

    def shrink_query(self, query) -> Iterable[object]:
        from ..corpus.query import CorpusQuery

        if query.kind == "xpath":
            for smaller in _shrink_xpath(parse_xpath(query.text)):
                yield CorpusQuery("xpath", repr(smaller))
        elif query.kind == "ask":
            for smaller in _shrink_formula(parse_formula(query.text)):
                if not tree_fo.free_variables(smaller):  # ask needs a sentence
                    yield CorpusQuery("ask", format_formula(smaller))
        else:
            for smaller in _shrink_caterpillar(parse_caterpillar(query.text)):
                yield CorpusQuery(query.kind, format_caterpillar(smaller))

    def encode_query(self, query) -> object:
        return {"kind": query.kind, "text": query.text}

    def decode_query(self, payload: object):
        from ..corpus.query import CorpusQuery

        return CorpusQuery(payload["kind"], payload["text"])

# ---------------------------------------------------------------------------
# vectorized/sequential
# ---------------------------------------------------------------------------


class VectorizedVsSequential(EnginePair):
    """The stacked shard executor vs a loop of single-tree calls.

    Same corpus splitting as ``corpus/sequential``, but the batch side
    runs ``engine="vectorized"``: every member tree packed into its own
    bit lane of one wide integer and the query's shared IR plan
    evaluated once across the whole chunk
    (:mod:`repro.engine.ir`).  All five query kinds are on the line —
    including FO(∃*) selection, and the all-pairs relation kind, whose
    per-tree fallback inside the vectorized path must splice cleanly
    into the stacked columns.  Both single-tree chunks (every lane
    width degenerate) and the default chunking are checked."""

    name = "vectorized/sequential"

    KINDS = ("xpath", "ask", "select", "caterpillar", "caterpillar-relation")

    def generate(self, rng: random.Random, max_size: int) -> Case:
        tree = gen.random_attributed_tree(rng, max_size)
        kind = rng.choice(self.KINDS)
        if kind == "xpath":
            text = repr(gen.random_xpath(rng))
        elif kind == "ask":
            text = format_formula(gen.random_fo_sentence(rng))
        elif kind == "select":
            text = format_formula(gen.random_exists_star(rng))
        else:
            text = format_caterpillar(
                gen.random_caterpillar(rng, budget=rng.randint(2, 6))
            )
        from ..corpus.query import CorpusQuery

        return Case(tree, CorpusQuery(kind, text))

    def check(self, case: Case) -> Outcome:
        from ..corpus.executor import run_batch

        query = case.query
        members = _corpus_members(case.tree)
        left, left_s = _timed(lambda: _sequential_answers(members, query))
        right, right_s = _timed(
            lambda: run_batch(
                members, [query], chunk_size=1, engine="vectorized"
            ).for_query(0)
        )
        if left != right:
            return Outcome(False, str(left), str(right), left_s, right_s)
        rechunked = run_batch(
            members, [query], engine="vectorized"
        ).for_query(0)
        return Outcome(
            left == rechunked, str(left), str(rechunked), left_s, right_s
        )

    def shrink_query(self, query) -> Iterable[object]:
        from ..corpus.query import CorpusQuery

        if query.kind == "xpath":
            for smaller in _shrink_xpath(parse_xpath(query.text)):
                yield CorpusQuery("xpath", repr(smaller))
        elif query.kind == "ask":
            for smaller in _shrink_formula(parse_formula(query.text)):
                if not tree_fo.free_variables(smaller):  # ask needs a sentence
                    yield CorpusQuery("ask", format_formula(smaller))
        elif query.kind == "select":
            for smaller in _shrink_formula(parse_formula(query.text)):
                try:  # selection needs the FO(∃*) fragment to survive
                    ExistsStarQuery(smaller)
                except FragmentError:
                    continue
                yield CorpusQuery("select", format_formula(smaller))
        else:
            for smaller in _shrink_caterpillar(parse_caterpillar(query.text)):
                yield CorpusQuery(query.kind, format_caterpillar(smaller))

    def encode_query(self, query) -> object:
        return {"kind": query.kind, "text": query.text}

    def decode_query(self, payload: object):
        from ..corpus.query import CorpusQuery

        return CorpusQuery(payload["kind"], payload["text"])


# ---------------------------------------------------------------------------
# store/sequential
# ---------------------------------------------------------------------------


class StoreVsSequential(EnginePair):
    """A disk-backed store batch vs a loop of single-tree calls.

    Same corpus splitting as ``corpus/sequential``, but the batch side
    first round-trips every member through a
    :class:`~repro.corpus.CorpusStore` — serialized into segment files
    (a tiny segment size forces several) and read back memory-mapped —
    and then queries the *store*.  All five query kinds are on the
    line, under both single-tree chunks and the store's default
    segment-aligned chunking.  Any divergence in the record format,
    the lazy segment loading, or the shard-aligned reassembly shows up
    as an element-wise mismatch against the in-memory loop."""

    name = "store/sequential"

    KINDS = ("xpath", "ask", "select", "caterpillar", "caterpillar-relation")

    def generate(self, rng: random.Random, max_size: int) -> Case:
        tree = gen.random_attributed_tree(rng, max_size)
        kind = rng.choice(self.KINDS)
        if kind == "xpath":
            text = repr(gen.random_xpath(rng))
        elif kind == "ask":
            text = format_formula(gen.random_fo_sentence(rng))
        elif kind == "select":
            text = format_formula(gen.random_exists_star(rng))
        else:
            text = format_caterpillar(
                gen.random_caterpillar(rng, budget=rng.randint(2, 6))
            )
        from ..corpus.query import CorpusQuery

        return Case(tree, CorpusQuery(kind, text))

    def check(self, case: Case) -> Outcome:
        import shutil
        import tempfile

        from ..corpus.store import CorpusStore

        query = case.query
        members = _corpus_members(case.tree)
        left, left_s = _timed(lambda: _sequential_answers(members, query))
        tmp = tempfile.mkdtemp(prefix="repro-oracle-store-")
        try:
            with CorpusStore.create(
                f"{tmp}/store", segment_size=3
            ) as store:
                store.ingest(iter(members))
                right, right_s = _timed(
                    lambda: store.run([query], chunk_size=1).for_query(0)
                )
                if left != right:
                    return Outcome(
                        False, str(left), str(right), left_s, right_s
                    )
                rechunked = store.run([query]).for_query(0)
            return Outcome(
                left == rechunked, str(left), str(rechunked), left_s, right_s
            )
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    def shrink_query(self, query) -> Iterable[object]:
        from ..corpus.query import CorpusQuery

        if query.kind == "xpath":
            for smaller in _shrink_xpath(parse_xpath(query.text)):
                yield CorpusQuery("xpath", repr(smaller))
        elif query.kind == "ask":
            for smaller in _shrink_formula(parse_formula(query.text)):
                if not tree_fo.free_variables(smaller):  # ask needs a sentence
                    yield CorpusQuery("ask", format_formula(smaller))
        elif query.kind == "select":
            for smaller in _shrink_formula(parse_formula(query.text)):
                try:  # selection needs the FO(∃*) fragment to survive
                    ExistsStarQuery(smaller)
                except FragmentError:
                    continue
                yield CorpusQuery("select", format_formula(smaller))
        else:
            for smaller in _shrink_caterpillar(parse_caterpillar(query.text)):
                yield CorpusQuery(query.kind, format_caterpillar(smaller))

    def encode_query(self, query) -> object:
        return {"kind": query.kind, "text": query.text}

    def decode_query(self, payload: object):
        from ..corpus.query import CorpusQuery

        return CorpusQuery(payload["kind"], payload["text"])
