"""JSON persistence of shrunk counterexamples under ``tests/corpus/``.

Every disagreement the oracle ever finds is shrunk and saved as one
small JSON file; the regression suite replays the whole directory on
every run, so a fixed bug can never silently come back.  Entries are
text-first (term syntax for the tree, concrete syntax for the query)
so a failing case is readable in the diff that introduces it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from ..trees.parser import format_term, parse_term
from .pairs import Case, EnginePair

SCHEMA_VERSION = 1

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS = Path(__file__).resolve().parents[3] / "tests" / "corpus"


def encode_case(pair: EnginePair, case: Case, note: str = "") -> Dict:
    """A JSON-able record of one (pair, tree, query, context) case."""
    entry = {
        "schema": SCHEMA_VERSION,
        "pair": pair.name,
        "tree": format_term(case.tree),
        "attributes": list(case.tree.attributes),
        "query": pair.encode_query(case.query),
    }
    if case.context is not None:
        entry["context"] = list(case.context)
    if note:
        entry["note"] = note
    return entry


def decode_case(entry: Dict, pairs: Dict[str, EnginePair]) -> Tuple[EnginePair, Case]:
    """Inverse of :func:`encode_case`, given a name → pair mapping."""
    if entry.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unknown corpus schema: {entry.get('schema')!r}")
    pair = pairs[entry["pair"]]
    tree = parse_term(entry["tree"])
    for attr in entry.get("attributes", []):
        if attr not in tree.attributes:
            tree = tree.with_attribute(attr, {})
    context = tuple(entry["context"]) if "context" in entry else None
    return pair, Case(tree, pair.decode_query(entry["query"]), context)


def entry_filename(entry: Dict) -> str:
    """Deterministic name: pair slug plus a content hash, so the same
    counterexample saved twice lands on the same file."""
    slug = entry["pair"].replace("/", "-")
    payload = json.dumps(entry, sort_keys=True, ensure_ascii=False)
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:10]
    return f"{slug}-{digest}.json"


def save_entry(entry: Dict, directory: Optional[Path] = None) -> Path:
    """Write one corpus entry; returns the path."""
    directory = Path(directory) if directory else DEFAULT_CORPUS
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry_filename(entry)
    path.write_text(
        json.dumps(entry, indent=2, sort_keys=True, ensure_ascii=False) + "\n",
        encoding="utf-8",
    )
    return path


def iter_corpus(directory: Optional[Path] = None) -> Iterator[Tuple[Path, Dict]]:
    """All corpus entries, sorted by filename for stable replay order."""
    directory = Path(directory) if directory else DEFAULT_CORPUS
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        yield path, json.loads(path.read_text(encoding="utf-8"))
