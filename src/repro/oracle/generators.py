"""Seeded generators for the differential oracle.

Every generator takes an explicit :class:`random.Random` (threaded from
the single ``--seed`` of an oracle run, via :func:`repro.trees.as_rng`)
and a size budget, and produces inputs inside the fragments the paper's
engines implement:

* attributed trees over a small alphabet with one data attribute;
* XPath expressions of the §2.3 fragment (child/descendant axes,
  filters, unions, the wildcard and the ``.`` test);
* caterpillar expressions over the full move/test alphabet;
* binary FO(∃*) selectors φ(x, y);
* tw^{r,l} automaton *specimens* — (template, params) pairs drawn from
  the Definition 5.1 example library, each carrying an independent
  specification to differentiate against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..automata import examples as ax
from ..automata.machine import TWAutomaton
from ..caterpillar.ast import (
    Caterpillar,
    Epsilon,
    LabelTest,
    MOVES,
    Move,
    TESTS,
    Test,
    alt,
    concat,
    star,
)
from ..logic import tree_fo
from ..logic.tree_fo import NVar, TreeFormula
from ..trees.generators import random_tree
from ..trees.node import NodeId
from ..trees.tree import Tree
from ..xpath.ast import (
    CHILD,
    DESCENDANT,
    Expr,
    NameTest,
    Path,
    SelfTest,
    Step,
    Union_,
    Wildcard,
)
from ..xpath.compiler import compile_xpath
from ..xpath.parser import parse_xpath
from ..logic.exists_star import variable_count

#: The oracle's default instance vocabulary: the Example 3.2 setting.
ALPHABET: Tuple[str, ...] = ("σ", "δ")
ATTRIBUTES: Tuple[str, ...] = ("a",)
VALUE_POOL: Tuple[int, ...] = (1, 2, 3)

#: Variable cap for pairs that exercise the indexed set-at-a-time
#: engine.  The default :func:`random_xpath` cap of 5 exists because
#: the reference route is O(n^k) in the variable count; the fast
#: engines never touch that assignment space, so their pairs can
#: afford deeper filter nesting and wider quantifier blocks.
FAST_ENGINE_MAX_VARIABLES = 8

X = NVar("x")
Y = NVar("y")


def random_attributed_tree(
    rng: random.Random,
    max_size: int,
    alphabet: Sequence[str] = ALPHABET,
    attributes: Sequence[str] = ATTRIBUTES,
    value_pool: Sequence = VALUE_POOL,
) -> Tree:
    """A random tree of 1..max_size nodes over the oracle vocabulary."""
    size = rng.randint(1, max(1, max_size))
    return random_tree(
        size,
        alphabet=alphabet,
        attributes=attributes,
        value_pool=value_pool,
        max_children=3,
        seed=rng,
    )


def random_context(rng: random.Random, tree: Tree) -> NodeId:
    """A random node of ``tree`` (biased toward the root)."""
    if rng.random() < 0.4:
        return ()
    return rng.choice(tree.nodes)


# ---------------------------------------------------------------------------
# XPath
# ---------------------------------------------------------------------------


def _random_name_test(rng: random.Random, labels: Sequence[str]):
    # Occasionally a label that (probably) does not occur — empty
    # selections are where off-by-one bugs in the translations hide.
    if rng.random() < 0.1:
        return NameTest("missing")
    return NameTest(rng.choice(list(labels)))


def _random_step(
    rng: random.Random,
    labels: Sequence[str],
    first: bool,
    filter_depth: int,
    allow_filters: bool,
    allow_self: bool,
) -> Step:
    roll = rng.random()
    if allow_self and first and roll < 0.15:
        test = SelfTest()
    elif roll < 0.35:
        test = Wildcard()
    else:
        test = _random_name_test(rng, labels)
    filters: List[Path] = []
    if allow_filters and filter_depth > 0:
        while rng.random() < 0.25 and len(filters) < 2:
            filters.append(
                _random_path(
                    rng,
                    labels,
                    max_steps=2,
                    filter_depth=filter_depth - 1,
                    allow_filters=True,
                    allow_absolute=rng.random() < 0.2,
                    allow_self=False,
                )
            )
    return Step(test, tuple(filters))


def _random_path(
    rng: random.Random,
    labels: Sequence[str],
    max_steps: int,
    filter_depth: int,
    allow_filters: bool,
    allow_absolute: bool,
    allow_self: bool,
) -> Path:
    count = rng.randint(1, max(1, max_steps))
    absolute = allow_absolute and rng.random() < 0.25
    steps = [
        _random_step(
            rng,
            labels,
            first=(i == 0),
            filter_depth=filter_depth,
            allow_filters=allow_filters,
            allow_self=allow_self and not absolute,
        )
        for i in range(count)
    ]
    axes = tuple(
        DESCENDANT if rng.random() < 0.4 else CHILD for _ in range(count - 1)
    )
    return Path(tuple(steps), axes, absolute)


def random_xpath(
    rng: random.Random,
    labels: Sequence[str] = ALPHABET,
    max_steps: int = 3,
    allow_filters: bool = True,
    allow_union: bool = True,
    max_variables: int = 5,
) -> Expr:
    """A random expression of the §2.3 fragment.

    The result is guaranteed to survive a ``repr`` → ``parse_xpath``
    round trip (so it can be persisted to the corpus as text) and to
    compile to an FO(∃*) query with at most ``max_variables`` distinct
    variables — quantifier evaluation is O(n^k), so unbounded filter
    nesting would hang the differential check rather than test it.
    """
    for _ in range(32):
        if allow_union and rng.random() < 0.15:
            expr: Expr = Union_(
                tuple(
                    _random_path(
                        rng, labels, max_steps, 1, allow_filters,
                        allow_absolute=True, allow_self=True,
                    )
                    for _ in range(2)
                )
            )
        else:
            expr = _random_path(
                rng, labels, max_steps, 2, allow_filters,
                allow_absolute=True, allow_self=True,
            )
        if parse_xpath(repr(expr)) != expr:
            continue
        if variable_count(compile_xpath(expr).formula) <= max_variables:
            return expr
    # Statistically unreachable: a single bare step always qualifies.
    return _random_path(
        rng, labels, 1, 0, False, allow_absolute=False, allow_self=False
    )


def random_walking_xpath(
    rng: random.Random,
    labels: Sequence[str] = ALPHABET,
    max_steps: int = 3,
) -> Path:
    """A relative, filter-free, union-free path — the sub-fragment that
    translates directly into a caterpillar expression."""
    path = _random_path(
        rng, labels, max_steps, 0,
        allow_filters=False, allow_absolute=False, allow_self=True,
    )
    assert parse_xpath(repr(path)) == path
    return path


# ---------------------------------------------------------------------------
# Caterpillar expressions
# ---------------------------------------------------------------------------


def random_caterpillar(
    rng: random.Random,
    labels: Sequence[str] = ALPHABET,
    budget: int = 6,
) -> Caterpillar:
    """A random caterpillar expression with about ``budget`` atoms."""
    if budget <= 1:
        roll = rng.random()
        if roll < 0.45:
            return Move(rng.choice(MOVES))
        if roll < 0.65:
            return Test(rng.choice(TESTS))
        if roll < 0.85:
            return LabelTest(rng.choice(list(labels)))
        return Epsilon()
    roll = rng.random()
    if roll < 0.45:
        left = rng.randint(1, budget - 1)
        return concat(
            random_caterpillar(rng, labels, left),
            random_caterpillar(rng, labels, budget - left),
        )
    if roll < 0.7:
        left = rng.randint(1, budget - 1)
        return alt(
            random_caterpillar(rng, labels, left),
            random_caterpillar(rng, labels, budget - left),
        )
    if roll < 0.9:
        return star(random_caterpillar(rng, labels, budget - 1))
    return random_caterpillar(rng, labels, budget - 1)


# ---------------------------------------------------------------------------
# FO(∃*) selectors
# ---------------------------------------------------------------------------


def _random_atom(
    rng: random.Random,
    variables: Sequence[NVar],
    labels: Sequence[str],
    attributes: Sequence[str],
    value_pool: Sequence,
) -> TreeFormula:
    def var() -> NVar:
        return rng.choice(list(variables))

    kind = rng.randrange(10)
    if kind == 0:
        return tree_fo.Edge(var(), var())
    if kind == 1:
        return tree_fo.Desc(var(), var())
    if kind == 2:
        return tree_fo.SibLess(var(), var())
    if kind == 3:
        return tree_fo.NodeEq(var(), var())
    if kind == 4:
        return tree_fo.Succ(var(), var())
    if kind == 5:
        return tree_fo.Label(rng.choice(list(labels)), var())
    if kind == 6:
        ctor = rng.choice(
            (tree_fo.Root, tree_fo.Leaf, tree_fo.First, tree_fo.Last)
        )
        return ctor(var())
    if kind == 7:
        return tree_fo.ValEq(
            rng.choice(list(attributes)), var(),
            rng.choice(list(attributes)), var(),
        )
    if kind == 8:
        return tree_fo.ValConst(
            rng.choice(list(attributes)), var(), rng.choice(list(value_pool))
        )
    return tree_fo.TrueF()


def _random_matrix(
    rng: random.Random,
    variables: Sequence[NVar],
    labels: Sequence[str],
    attributes: Sequence[str],
    value_pool: Sequence,
    depth: int,
) -> TreeFormula:
    if depth <= 0 or rng.random() < 0.4:
        return _random_atom(rng, variables, labels, attributes, value_pool)
    roll = rng.random()
    if roll < 0.2:
        return tree_fo.Not(
            _random_matrix(rng, variables, labels, attributes, value_pool, depth - 1)
        )
    parts = tuple(
        _random_matrix(rng, variables, labels, attributes, value_pool, depth - 1)
        for _ in range(rng.randint(2, 3))
    )
    return tree_fo.conj(*parts) if roll < 0.6 else tree_fo.disj(*parts)


def random_exists_star(
    rng: random.Random,
    labels: Sequence[str] = ALPHABET,
    attributes: Sequence[str] = ATTRIBUTES,
    value_pool: Sequence = VALUE_POOL,
    max_prefix: int = 2,
    depth: int = 2,
) -> TreeFormula:
    """A random prenex-existential formula with free variables ⊆ {x, y}.

    Usable both as a binary selector φ(x, y) and — when neither x nor y
    happens to occur free — as a sentence.
    """
    prefix = [NVar(f"z{i}") for i in range(rng.randint(0, max_prefix))]
    matrix = _random_matrix(
        rng, [X, Y, *prefix], labels, attributes, value_pool, depth
    )
    return tree_fo.exists(prefix, matrix)


def random_fo_formula(
    rng: random.Random,
    labels: Sequence[str] = ALPHABET,
    attributes: Sequence[str] = ATTRIBUTES,
    value_pool: Sequence = VALUE_POOL,
    extra_variables: int = 2,
    depth: int = 3,
) -> TreeFormula:
    """A random *full* FO formula — ∀ and ∃ freely nested with ¬, →,
    ∧, ∨ — with free variables ⊆ {x, y}.

    This is the input language of the ``fo/fast-fo`` pair: unlike
    :func:`random_exists_star` it is not prenex and exercises the
    universal/implication paths of both evaluators.  The result is
    guaranteed to survive a ``format_formula`` → ``parse_formula``
    round trip, so it can be persisted to the corpus as text.
    """
    from ..logic.parser import format_formula, parse_formula

    pool = [X, Y] + [NVar(f"z{i}") for i in range(extra_variables)]

    def build(level: int) -> TreeFormula:
        roll = rng.random()
        if level <= 0 or roll < 0.3:
            return _random_atom(rng, pool, labels, attributes, value_pool)
        if roll < 0.45:
            return tree_fo.Not(build(level - 1))
        if roll < 0.6:
            return tree_fo.implies(build(level - 1), build(level - 1))
        if roll < 0.78:
            parts = tuple(build(level - 1) for _ in range(rng.randint(2, 3)))
            ctor = tree_fo.conj if rng.random() < 0.5 else tree_fo.disj
            return ctor(*parts)
        var = rng.choice(pool)
        ctor = tree_fo.Exists if rng.random() < 0.5 else tree_fo.Forall
        return ctor(var, build(level - 1))

    for _ in range(64):
        formula = build(depth)
        # Close any free variable beyond {x, y} with a random quantifier.
        for var in sorted(
            tree_fo.free_variables(formula) - {X, Y}, key=lambda v: v.name
        ):
            ctor = tree_fo.Exists if rng.random() < 0.5 else tree_fo.Forall
            formula = ctor(var, formula)
        if parse_formula(format_formula(formula)) == formula:
            return formula
    # Statistically unreachable: atoms always round-trip.
    return _random_atom(rng, [X, Y], labels, attributes, value_pool)


def random_fo_sentence(
    rng: random.Random,
    labels: Sequence[str] = ALPHABET,
    attributes: Sequence[str] = ATTRIBUTES,
    value_pool: Sequence = VALUE_POOL,
    depth: int = 3,
) -> TreeFormula:
    """A random closed FO formula (free variables quantified away)."""
    formula = random_fo_formula(rng, labels, attributes, value_pool, 2, depth)
    for var in sorted(tree_fo.free_variables(formula), key=lambda v: v.name):
        ctor = tree_fo.Exists if rng.random() < 0.5 else tree_fo.Forall
        formula = ctor(var, formula)
    return formula


# ---------------------------------------------------------------------------
# Automaton specimens
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AutomatonSpecimen:
    """A generated automaton: registry template + JSON-able params.

    Kept symbolic (rather than as a machine object) so corpus entries
    stay readable and the shrinker can simplify the parameters.
    """

    template: str
    params: Tuple = ()

    def build(self) -> Tuple[TWAutomaton, bool]:
        """The machine plus whether it runs on ``delim(t)``."""
        entry = TEMPLATES[self.template]
        return entry.build(self.params), entry.delimited

    def spec(self) -> Tuple[str, object]:
        """The independent specification: ``("fo", sentence)`` for FO
        model checking, ``("py", predicate)`` for a Python reference."""
        return TEMPLATES[self.template].spec(self.params)


@dataclass(frozen=True)
class _Template:
    build: Callable[[Tuple], TWAutomaton]
    spec: Callable[[Tuple], Tuple[str, object]]
    delimited: bool = False
    param_pool: Tuple[Tuple, ...] = ((),)


def _fo_exists_value(value) -> TreeFormula:
    return tree_fo.exists(X, tree_fo.ValConst("a", X, value))


def _fo_all_values_same() -> TreeFormula:
    return tree_fo.forall(
        [X, Y], tree_fo.ValEq("a", X, "a", Y)
    )


def _fo_leaves_uniform() -> TreeFormula:
    return tree_fo.forall(
        [X, Y],
        tree_fo.implies(
            tree_fo.conj(tree_fo.Leaf(X), tree_fo.Leaf(Y)),
            tree_fo.ValEq("a", X, "a", Y),
        ),
    )


TEMPLATES: Dict[str, _Template] = {
    "example-3.2": _Template(
        build=lambda p: ax.example_32(),
        spec=lambda p: ("fo", ax.example_32_fo_spec()),
        delimited=True,
    ),
    "even-leaves": _Template(
        build=lambda p: ax.even_leaves_automaton(),
        spec=lambda p: ("py", ax.even_leaves_spec),
    ),
    "exists-value": _Template(
        build=lambda p: ax.exists_value_automaton("a", p[0]),
        spec=lambda p: ("fo", _fo_exists_value(p[0])),
        param_pool=tuple((v,) for v in VALUE_POOL + (9,)),
    ),
    "root-at-leaf": _Template(
        build=lambda p: ax.root_value_at_some_leaf("a"),
        spec=lambda p: ("py", ax.root_value_at_some_leaf_spec("a")),
    ),
    "spine-constant": _Template(
        build=lambda p: ax.spine_constant_automaton("a"),
        spec=lambda p: ("py", ax.spine_constant_spec("a")),
    ),
    "all-values-same": _Template(
        build=lambda p: ax.all_values_same_twr("a"),
        spec=lambda p: ("fo", _fo_all_values_same()),
    ),
    "leaves-uniform": _Template(
        build=lambda p: ax.all_leaves_same_twrl("a"),
        spec=lambda p: ("fo", _fo_leaves_uniform()),
    ),
    "delta-mod3": _Template(
        build=lambda p: ax.delta_leaves_mod3_twr(),
        spec=lambda p: ("py", ax.delta_leaves_mod3_spec),
    ),
}


def random_automaton_specimen(rng: random.Random) -> AutomatonSpecimen:
    """Draw a template (uniformly) and parameters (from its pool)."""
    template = rng.choice(sorted(TEMPLATES))
    params = rng.choice(TEMPLATES[template].param_pool)
    return AutomatonSpecimen(template, params)
