"""The fuzzing loop: generate → cross-check → shrink → persist.

``run_oracle`` spreads a case budget round-robin over the engine pairs,
collects per-pair statistics (verdicts, wall-clock, automaton step
counts), shrinks any disagreement with :func:`repro.oracle.shrink.shrink_case`
and persists the minimised reproducer to the corpus directory.
``replay_corpus`` is the regression half: re-check every stored entry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .corpus import decode_case, encode_case, iter_corpus, save_entry
from .pairs import (
    AutomatonVsSpec,
    AutoVsFastFO,
    Case,
    CaterpillarVsFastCaterpillar,
    CaterpillarVsNTWA,
    CorpusVsSequential,
    EnginePair,
    FOVsEnumeration,
    FOVsFastFO,
    NTWAVsFastCaterpillar,
    Outcome,
    RunnerVsMemo,
    StoreVsSequential,
    VectorizedVsSequential,
    XPathVsCaterpillar,
    XPathVsFastXPath,
    XPathVsFO,
    crash_outcome,
)
from .shrink import shrink_case


def default_pairs() -> Tuple[EnginePair, ...]:
    """All fourteen engine pairs, in a stable order."""
    return (
        XPathVsFO(),
        XPathVsCaterpillar(),
        CaterpillarVsNTWA(),
        RunnerVsMemo(),
        AutomatonVsSpec(),
        FOVsEnumeration(),
        FOVsFastFO(),
        AutoVsFastFO(),
        XPathVsFastXPath(),
        CaterpillarVsFastCaterpillar(),
        NTWAVsFastCaterpillar(),
        CorpusVsSequential(),
        VectorizedVsSequential(),
        StoreVsSequential(),
    )


def pairs_by_name(
    pairs: Optional[Sequence[EnginePair]] = None,
) -> Dict[str, EnginePair]:
    return {p.name: p for p in (pairs if pairs is not None else default_pairs())}


@dataclass
class PairStats:
    """Aggregated results of one engine pair over a run."""

    name: str
    cases: int = 0
    disagreements: int = 0
    errors: int = 0
    left_seconds: float = 0.0
    right_seconds: float = 0.0
    left_steps: int = 0
    right_steps: int = 0

    def record(self, outcome: Outcome) -> None:
        self.cases += 1
        if not outcome.agree:
            self.disagreements += 1
        if outcome.error:
            self.errors += 1
        self.left_seconds += outcome.left_seconds
        self.right_seconds += outcome.right_seconds
        self.left_steps += outcome.left_steps or 0
        self.right_steps += outcome.right_steps or 0


@dataclass
class Disagreement:
    """One confirmed divergence, before and after shrinking."""

    pair: str
    original: Dict
    shrunk: Dict
    outcome: Outcome
    shrink_evals: int = 0
    saved_to: Optional[Path] = None


@dataclass
class OracleReport:
    """Everything one oracle run learned."""

    seed: int
    budget: int
    stats: List[PairStats] = field(default_factory=list)
    disagreements: List[Disagreement] = field(default_factory=list)

    def total_cases(self) -> int:
        return sum(s.cases for s in self.stats)

    def total_disagreements(self) -> int:
        return sum(s.disagreements for s in self.stats)

    def summary_lines(self) -> List[str]:
        width = max((len(s.name) for s in self.stats), default=4)
        lines = [
            f"{'pair':<{width}}  {'cases':>5}  {'bad':>3}  "
            f"{'left s':>8}  {'right s':>8}  {'steps L/R':>15}"
        ]
        for s in self.stats:
            steps = f"{s.left_steps}/{s.right_steps}" if (
                s.left_steps or s.right_steps
            ) else "-"
            lines.append(
                f"{s.name:<{width}}  {s.cases:>5}  {s.disagreements:>3}  "
                f"{s.left_seconds:>8.3f}  {s.right_seconds:>8.3f}  {steps:>15}"
            )
        return lines


def run_oracle(
    seed: int,
    budget: int,
    pairs: Optional[Sequence[EnginePair]] = None,
    max_size: int = 10,
    shrink: bool = True,
    corpus_dir: Optional[Path] = None,
    verbose: bool = False,
) -> OracleReport:
    """Fuzz ``budget`` cases round-robin over ``pairs`` from ``seed``.

    Disagreements are shrunk (unless ``shrink=False``) and persisted to
    ``corpus_dir`` when one is given.
    """
    pairs = tuple(pairs if pairs is not None else default_pairs())
    if not pairs:
        raise ValueError("need at least one engine pair")
    rng = random.Random(seed)
    stats = {p.name: PairStats(p.name) for p in pairs}
    report = OracleReport(seed=seed, budget=budget, stats=list(stats.values()))
    for i in range(budget):
        pair = pairs[i % len(pairs)]
        case = pair.generate(rng, max_size)
        try:
            outcome = pair.check(case)
        except Exception as exc:
            # An engine crash is a disagreement too — persist it like a
            # value mismatch rather than aborting the whole run.
            outcome = crash_outcome(exc)
        stats[pair.name].record(outcome)
        if outcome.agree:
            continue
        if verbose:
            print(f"[{pair.name}] disagreement on case {i}: "
                  f"left={outcome.left} right={outcome.right}")
        original = encode_case(pair, case, note="as generated")
        evals = 0
        if shrink:
            case, outcome, evals = shrink_case(pair, case)
        entry = encode_case(
            pair, case,
            note=f"shrunk reproducer (seed={seed}, case={i})" if shrink
            else f"unshrunk (seed={seed}, case={i})",
        )
        record = Disagreement(
            pair=pair.name, original=original, shrunk=entry,
            outcome=outcome, shrink_evals=evals,
        )
        if corpus_dir is not None:
            record.saved_to = save_entry(entry, corpus_dir)
        report.disagreements.append(record)
    return report


@dataclass
class ReplayResult:
    """Verdict of replaying one stored corpus entry."""

    path: Path
    pair: str
    outcome: Optional[Outcome]
    skipped: Optional[str] = None  # reason, e.g. unknown pair name

    @property
    def ok(self) -> bool:
        return self.skipped is None and self.outcome is not None \
            and self.outcome.agree


def replay_corpus(
    directory: Optional[Path] = None,
    pairs: Optional[Sequence[EnginePair]] = None,
) -> List[ReplayResult]:
    """Re-check every stored counterexample; a fixed bug stays fixed.

    Entries whose pair is not in ``pairs`` are reported as skipped
    rather than failed, so a corpus can outlive an engine it indicts.
    """
    registry = pairs_by_name(pairs)
    results: List[ReplayResult] = []
    for path, entry in iter_corpus(directory):
        name = entry.get("pair", "?")
        if name not in registry:
            results.append(
                ReplayResult(path, name, None, skipped=f"unknown pair {name!r}")
            )
            continue
        pair, case = decode_case(entry, registry)
        try:
            outcome = pair.check(case)
        except Exception as exc:
            outcome = crash_outcome(exc)
        results.append(ReplayResult(path, name, outcome))
    return results
