"""Cross-engine differential oracle.

The paper is a web of equivalences — XPath is simulated by FO(∃*)
(§2.3), caterpillar expressions are nondeterministic tree-walkers ([7]),
memoised configuration-graph evaluation agrees with the direct runner
(Theorem 7.1), automata come with independent FO specifications — and
this repo ships an executable engine for every side of every arrow.
Silent divergence between those engines is the highest-risk bug class,
so this subsystem keeps them honest:

* :mod:`repro.oracle.generators` — seeded generators for random
  attributed trees, XPath expressions, caterpillar expressions, FO(∃*)
  queries and tw^{r,l} automaton specimens;
* :mod:`repro.oracle.pairs` — one :class:`~repro.oracle.pairs.EnginePair`
  per equivalence, each evaluating a generated (tree, query) case
  through both engines and comparing verdicts, step counts and timings;
* :mod:`repro.oracle.shrink` — a delta-debugging shrinker that reduces
  any disagreeing case to a small reproducer;
* :mod:`repro.oracle.corpus` — JSON persistence of shrunk reproducers
  under ``tests/corpus/``, replayed by the test suite forever after;
* :mod:`repro.oracle.driver` / :mod:`repro.oracle.cli` — the fuzzing
  loop and its command line, ``python -m repro.oracle --seed 0
  --budget 200``.

>>> from repro.oracle import run_oracle
>>> report = run_oracle(seed=0, budget=12, max_size=8)
>>> report.total_disagreements()
0
"""

from .corpus import decode_case, encode_case, iter_corpus, save_entry
from .driver import (
    OracleReport,
    PairStats,
    default_pairs,
    pairs_by_name,
    replay_corpus,
    run_oracle,
)
from .pairs import (
    AutomatonVsSpec,
    CaterpillarVsFastCaterpillar,
    CaterpillarVsNTWA,
    Case,
    CorpusVsSequential,
    EnginePair,
    FOVsEnumeration,
    FOVsFastFO,
    Outcome,
    RunnerVsMemo,
    VectorizedVsSequential,
    XPathVsCaterpillar,
    NTWAVsFastCaterpillar,
    XPathVsFastXPath,
    XPathVsFO,
)
from .shrink import shrink_case

__all__ = [
    "AutomatonVsSpec",
    "CaterpillarVsFastCaterpillar",
    "CaterpillarVsNTWA",
    "Case",
    "CorpusVsSequential",
    "EnginePair",
    "FOVsEnumeration",
    "FOVsFastFO",
    "OracleReport",
    "Outcome",
    "PairStats",
    "RunnerVsMemo",
    "VectorizedVsSequential",
    "XPathVsCaterpillar",
    "NTWAVsFastCaterpillar",
    "XPathVsFastXPath",
    "XPathVsFO",
    "decode_case",
    "default_pairs",
    "encode_case",
    "iter_corpus",
    "pairs_by_name",
    "replay_corpus",
    "run_oracle",
    "save_entry",
    "shrink_case",
]
