"""``python -m repro.oracle`` entry point."""

import sys

from .cli import main

sys.exit(main())
