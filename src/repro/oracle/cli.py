"""Command line of the differential oracle.

Fuzz 200 cases from seed 0 across all engine pairs::

    python -m repro.oracle --seed 0 --budget 200

Focus on one equivalence, bigger trees, keep reproducers::

    python -m repro.oracle --seed 7 --budget 500 --max-size 14 \\
        --pairs runner/memo --corpus-dir tests/corpus

Replay the stored corpus only::

    python -m repro.oracle --replay

Run the fault-injection campaign (resilient engine under injected
engine faults — see :mod:`repro.resilience.faults`)::

    python -m repro.oracle --fault --seed 0 --budget 200
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .corpus import DEFAULT_CORPUS
from .driver import default_pairs, pairs_by_name, replay_corpus, run_oracle


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.oracle",
        description="Differential fuzzing across the repo's query engines.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed for the whole run (default 0)")
    parser.add_argument("--budget", type=int, default=200,
                        help="number of generated cases (default 200)")
    parser.add_argument("--max-size", type=int, default=10,
                        help="max nodes per generated tree (default 10)")
    parser.add_argument("--pairs", metavar="NAME", nargs="+",
                        help="restrict to these engine pairs (see --list-pairs)")
    parser.add_argument("--corpus-dir", type=Path, default=None,
                        help="where to persist shrunk reproducers "
                             f"(default {DEFAULT_CORPUS})")
    parser.add_argument("--no-shrink", action="store_true",
                        help="record disagreements without minimising them")
    parser.add_argument("--no-persist", action="store_true",
                        help="do not write reproducers to the corpus")
    parser.add_argument("--replay", action="store_true",
                        help="only replay the stored corpus, no fuzzing")
    parser.add_argument("--fault", action="store_true",
                        help="run the fault-injection campaign instead of "
                             "differential fuzzing (--budget sets the case "
                             "count)")
    parser.add_argument("--list-pairs", action="store_true",
                        help="list engine pair names and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="print each disagreement as it is found")
    return parser


def _select_pairs(names: Optional[List[str]]):
    registry = pairs_by_name()
    if not names:
        return default_pairs()
    unknown = [n for n in names if n not in registry]
    if unknown:
        known = ", ".join(sorted(registry))
        raise SystemExit(f"unknown pair(s) {unknown}; known: {known}")
    return tuple(registry[n] for n in names)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_pairs:
        for pair in default_pairs():
            print(pair.name)
        return 0
    pairs = _select_pairs(args.pairs)

    if args.fault:
        from ..resilience.faults import run_campaign

        def narrate(case) -> None:
            status = "error" if case.error else (
                "fallback" if case.fell_back else "clean"
            )
            print(f"  case {case.index:>4} [{case.operation}] "
                  f"fault={case.fault} -> {status}")

        report = run_campaign(
            seed=args.seed,
            cases=args.budget,
            max_size=args.max_size,
            on_case=narrate if args.verbose else None,
        )
        for line in report.summary_lines():
            print(line)
        return 0 if report.ok else 1

    if args.replay:
        results = replay_corpus(pairs=pairs)
        bad = [r for r in results if not r.ok and not r.skipped]
        for r in results:
            status = "SKIP" if r.skipped else ("ok" if r.ok else "FAIL")
            print(f"{status:>4}  {r.path.name}  [{r.pair}]")
            if r.outcome is not None and not r.outcome.agree:
                print(f"      left : {r.outcome.left}")
                print(f"      right: {r.outcome.right}")
        print(f"{len(results)} corpus entries, {len(bad)} disagreeing")
        return 1 if bad else 0

    corpus_dir = None
    if not args.no_persist:
        corpus_dir = args.corpus_dir or DEFAULT_CORPUS
    report = run_oracle(
        seed=args.seed,
        budget=args.budget,
        pairs=pairs,
        max_size=args.max_size,
        shrink=not args.no_shrink,
        corpus_dir=corpus_dir,
        verbose=args.verbose,
    )
    for line in report.summary_lines():
        print(line)
    for d in report.disagreements:
        print(f"\n[{d.pair}] DISAGREEMENT "
              f"(shrunk in {d.shrink_evals} checks)")
        print(f"  tree : {d.shrunk['tree']}")
        print(f"  query: {d.shrunk['query']}")
        if "context" in d.shrunk:
            print(f"  context: {d.shrunk['context']}")
        print(f"  left : {d.outcome.left}")
        print(f"  right: {d.outcome.right}")
        if d.saved_to is not None:
            print(f"  saved: {d.saved_to}")
    total = report.total_disagreements()
    print(f"\n{report.total_cases()} cases, {total} disagreements "
          f"(seed={report.seed})")
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
