"""Tree statistics and sampling-based cardinality estimation.

The planner (:mod:`repro.engine.planner`) needs two kinds of numbers
before it runs anything:

* **profile statistics** — size, height, label histogram, mean fan-out
  and mean subtree size — cheap one-pass summaries of a tree (or a
  whole corpus) that parameterise the per-engine cost model.  They come
  with a content *fingerprint*: a stable hash of everything the cost
  model reads, so a cached plan is keyed to the statistics it was
  built against and can never outlive them (the
  `plans cached by text + stats fingerprint` contract).
* **cardinality estimates** — how many rows an intermediate join
  produces.  Per-label and per-value counts are free popcounts off the
  :class:`~repro.engine.index.TreeIndex` inverted indexes; *join*
  selectivities (how many (ancestor, descendant) or (parent, child)
  pairs survive two unary predicates) use wander-join-style random
  sampling: draw source nodes uniformly, count each one's
  continuations exactly against the interval/CSR structure, and scale
  by the inverse sampling probability.  When the sample covers the
  whole population the estimate is exact — the property the estimator
  test battery pins down on degenerate trees.

Everything here is deterministic under a fixed seed: the sampler is a
private ``random.Random(seed)`` and the tree statistics are pure
functions of the tree.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..caching import KeyedLRU
from ..trees.tree import Tree
from .index import TreeIndex, bit_count, iter_bits

__all__ = [
    "DEFAULT_SAMPLE_SIZE",
    "TreeStatistics",
    "CorpusStatistics",
    "CardinalityEstimator",
    "tree_statistics",
    "corpus_statistics",
    "stats_cache_clear",
]

#: Wander-join sample size: how many source nodes a join estimate
#: draws.  Populations at or below this bound are counted exactly.
DEFAULT_SAMPLE_SIZE = 64


def _fingerprint(payload: str) -> str:
    """A short stable content hash (process- and platform-independent,
    unlike ``hash``) — the plan-cache key component."""
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TreeStatistics:
    """One-pass profile of a single tree — everything the planner's
    cost model reads, plus the fingerprint that keys cached plans."""

    n: int
    height: int
    leaf_count: int
    #: label → occurrence count, sorted by label.
    label_counts: Tuple[Tuple[str, int], ...]
    #: attribute → number of nodes carrying a value, sorted.
    attr_counts: Tuple[Tuple[str, int], ...]
    #: mean children per internal node (0.0 for a single-node tree).
    avg_fanout: float
    #: mean proper-descendant count over all nodes (= mean depth).
    avg_subtree: float
    fingerprint: str

    def label_fraction(self, label: str) -> float:
        """Selectivity of the label test O_label — exact, popcount-free."""
        for name, count in self.label_counts:
            if name == label:
                return count / self.n
        return 0.0

    @classmethod
    def from_tree(cls, tree: Tree) -> "TreeStatistics":
        nodes = tree.nodes
        n = len(nodes)
        labels: Dict[str, int] = {}
        height = 0
        leaves = 0
        total_depth = 0
        for u in nodes:
            depth = len(u)  # addresses are root paths: depth is free
            total_depth += depth
            if depth > height:
                height = depth
            label = tree.label(u)
            labels[label] = labels.get(label, 0) + 1
            if not tree.children(u):
                leaves += 1
        internal = n - leaves
        attr_counts = tuple(
            sorted(
                (attr, len(tree.attr_table(attr)))
                for attr in tree.attributes
            )
        )
        label_counts = tuple(sorted(labels.items()))
        # total_depth covers avg_subtree (= total_depth / n); avg_fanout
        # is derived from n and leaves — the payload must span every
        # field the cost model reads, or two profile-distinct trees
        # could share a fingerprint and hence a cached plan.
        payload = repr(
            (n, height, leaves, total_depth, label_counts, attr_counts)
        )
        return cls(
            n=n,
            height=height,
            leaf_count=leaves,
            label_counts=label_counts,
            attr_counts=attr_counts,
            avg_fanout=(n - 1) / internal if internal else 0.0,
            # Each node v is a proper descendant of exactly depth(v)
            # ancestors, so Σ|subtree(u)| = Σ depth(v).
            avg_subtree=total_depth / n,
            fingerprint=_fingerprint(payload),
        )


@dataclass(frozen=True)
class CorpusStatistics:
    """The same profile aggregated over a corpus: per-node means across
    every tree, with a fingerprint chaining the per-tree ones in order.

    Any change to the tree sequence — a tree added, removed, reordered
    or replaced — changes the fingerprint, which invalidates every plan
    keyed against the old statistics."""

    tree_count: int
    total_nodes: int
    n: float  # mean tree size — the cost model's per-tree n
    max_n: int
    height: float
    leaf_count: float
    label_counts: Tuple[Tuple[str, int], ...]  # summed over trees
    avg_fanout: float
    avg_subtree: float
    fingerprint: str

    def label_fraction(self, label: str) -> float:
        if not self.total_nodes:
            return 0.0
        for name, count in self.label_counts:
            if name == label:
                return count / self.total_nodes
        return 0.0

    @classmethod
    def from_trees(
        cls, per_tree: Sequence[TreeStatistics]
    ) -> "CorpusStatistics":
        count = len(per_tree)
        total = sum(s.n for s in per_tree)
        labels: Dict[str, int] = {}
        for s in per_tree:
            for name, c in s.label_counts:
                labels[name] = labels.get(name, 0) + c
        payload = "|".join(s.fingerprint for s in per_tree)
        return cls(
            tree_count=count,
            total_nodes=total,
            n=total / count if count else 0.0,
            max_n=max((s.n for s in per_tree), default=0),
            height=_mean([s.height for s in per_tree]),
            leaf_count=_mean([s.leaf_count for s in per_tree]),
            label_counts=tuple(sorted(labels.items())),
            avg_fanout=_mean([s.avg_fanout for s in per_tree]),
            avg_subtree=_mean([s.avg_subtree for s in per_tree]),
            fingerprint=_fingerprint(payload),
        )


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


#: Profile types the planner's cost model accepts interchangeably.
StatsProfile = object  # TreeStatistics | CorpusStatistics


#: Bounded cache of per-tree statistics keyed on tree identity; entries
#: pin their tree so an id can never be recycled while live (the same
#: discipline as the index cache).
_STATS_CACHE_SIZE = 256
_STATS_CACHE: KeyedLRU = KeyedLRU(_STATS_CACHE_SIZE, name="tree-stats")


def tree_statistics(tree: Tree) -> TreeStatistics:
    """The (cached) statistics of ``tree`` — one O(n) pass per tree
    object, no index required."""
    key = id(tree)
    hit = _STATS_CACHE.get(key)
    if hit is not None and hit[0] is tree:
        return hit[1]
    stats = TreeStatistics.from_tree(tree)
    _STATS_CACHE.put(key, (tree, stats))
    return stats


def corpus_statistics(trees: Iterable[Tree]) -> CorpusStatistics:
    """Aggregated statistics over a tree sequence (order-sensitive —
    the fingerprint chains the per-tree fingerprints in order)."""
    return CorpusStatistics.from_trees(
        [tree_statistics(tree) for tree in trees]
    )


def stats_cache_clear() -> None:
    """Drop every cached per-tree statistics record (tests)."""
    _STATS_CACHE.cache_clear()


class CardinalityEstimator:
    """Wander-join-style cardinality estimates over one tree's index.

    Unary predicates are exact (popcounts over the inverted indexes).
    Binary joins are estimated by sampling: draw up to ``sample_size``
    source nodes uniformly from the left predicate's population, count
    each source's continuations *exactly* against the interval labels
    (descendant joins) or CSR children (child joins), and scale the
    total by ``population / sample``.  When the population fits in the
    sample the walk degenerates to an exact count — so estimates are
    exact on small inputs by construction.

    Deterministic per seed: two estimators with the same seed issuing
    the same call sequence return identical numbers.
    """

    def __init__(
        self,
        index: TreeIndex,
        seed: int = 0,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
    ) -> None:
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        self.index = index
        self.seed = seed
        self.sample_size = sample_size
        self._rng = random.Random(seed)

    # -- exact unary counts ------------------------------------------------

    def count(self, mask: int) -> int:
        """Exact cardinality of a node bitset (free popcount)."""
        return bit_count(mask)

    def label_count(self, label: str) -> int:
        """Exact number of σ-labelled nodes."""
        return bit_count(self.index.labelled(label))

    def selectivity(self, mask: int) -> float:
        """Fraction of the domain a bitset covers."""
        return bit_count(mask) / self.index.n if self.index.n else 0.0

    # -- sampled binary joins ----------------------------------------------

    def _sampled_sources(self, mask: int) -> Tuple[Sequence[int], float]:
        """Sources to walk from and the inverse sampling probability."""
        sources = list(iter_bits(mask))
        population = len(sources)
        if population <= self.sample_size:
            return sources, 1.0
        chosen = self._rng.sample(sources, self.sample_size)
        return chosen, population / self.sample_size

    def descendant_pairs(self, ancestors: int, descendants: int) -> int:
        """Estimated ``|{(u, v) : u ∈ A, v ∈ D, u ≺ v}|``.

        Each sampled ancestor's continuation count is the popcount of
        ``D`` restricted to its subtree *interval* — exact per source,
        so the only error is sampling error, and there is none when
        ``|A| ≤ sample_size``."""
        if not ancestors or not descendants:
            return 0
        subtree_mask = self.index.subtree_mask
        chosen, scale = self._sampled_sources(ancestors)
        hits = sum(
            bit_count(descendants & subtree_mask(u)) for u in chosen
        )
        return round(hits * scale)

    def child_pairs(self, parents: int, children: int) -> int:
        """Estimated ``|{(u, v) : u ∈ P, v ∈ C, E(u, v)}|`` — same
        sampling discipline over the CSR children masks."""
        if not parents or not children:
            return 0
        children_mask = self.index.children_mask
        chosen, scale = self._sampled_sources(parents)
        hits = sum(bit_count(children & children_mask[u]) for u in chosen)
        return round(hits * scale)

    def value_join(self, attr_left: str, attr_right: str) -> int:
        """Estimated ``|{(u, v) : val_a(u) = val_b(v)}|`` off the
        value inverted indexes — the tables are small, so this is an
        exact sum of per-value products."""
        left = self.index.value_mask.get(attr_left, {})
        right = self.index.value_mask.get(attr_right, {})
        return sum(
            bit_count(bits) * bit_count(right.get(value, 0))
            for value, bits in left.items()
        )

    def avg_subtree_size(self) -> float:
        """Sampled mean proper-descendant count — the wander-join
        estimate of how much a descendant axis multiplies a frontier."""
        idx = self.index
        if not idx.n:
            return 0.0
        return self.descendant_pairs(idx.all_mask, idx.all_mask) / idx.n

    def random_walk_depth(self, walks: Optional[int] = None) -> float:
        """Mean length of a random root-to-leaf walk over the CSR
        children arrays — how deep a blind downward run travels, the
        classic wander-join random descent."""
        idx = self.index
        if not idx.n:
            return 0.0
        walks = self.sample_size if walks is None else max(1, walks)
        children_of = idx.children_of
        total = 0
        for _ in range(walks):
            u, steps = 0, 0
            kids = children_of(u)
            while kids:
                u = kids[self._rng.randrange(len(kids))]
                steps += 1
                kids = children_of(u)
            total += steps
        return total / walks
