"""Tree statistics and sampling-based cardinality estimation.

The planner (:mod:`repro.engine.planner`) needs two kinds of numbers
before it runs anything:

* **profile statistics** — size, height, label histogram, mean fan-out
  and mean subtree size — cheap one-pass summaries of a tree (or a
  whole corpus) that parameterise the per-engine cost model.  They come
  with a content *fingerprint*: a stable hash of everything the cost
  model reads, so a cached plan is keyed to the statistics it was
  built against and can never outlive them (the
  `plans cached by text + stats fingerprint` contract).
* **cardinality estimates** — how many rows an intermediate join
  produces.  Per-label and per-value counts are free popcounts off the
  :class:`~repro.engine.index.TreeIndex` inverted indexes; *join*
  selectivities (how many (ancestor, descendant) or (parent, child)
  pairs survive two unary predicates) use wander-join-style random
  sampling: draw source nodes uniformly, count each one's
  continuations exactly against the interval/CSR structure, and scale
  by the inverse sampling probability.  When the sample covers the
  whole population the estimate is exact — the property the estimator
  test battery pins down on degenerate trees.

Everything here is deterministic under a fixed seed: the sampler is a
private ``random.Random(seed)`` and the tree statistics are pure
functions of the tree.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..caching import KeyedLRU
from ..trees.tree import Tree
from .index import TreeIndex, bit_count, iter_bits

__all__ = [
    "DEFAULT_SAMPLE_SIZE",
    "TreeStatistics",
    "CorpusStatistics",
    "CardinalityEstimator",
    "tree_statistics",
    "corpus_statistics",
    "closure_reach_estimate",
    "stats_cache_clear",
]

#: Wander-join sample size: how many source nodes a join estimate
#: draws.  Populations at or below this bound are counted exactly.
DEFAULT_SAMPLE_SIZE = 64


def _fingerprint(payload: str) -> str:
    """A short stable content hash (process- and platform-independent,
    unlike ``hash``) — the plan-cache key component."""
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TreeStatistics:
    """One-pass profile of a single tree — everything the planner's
    cost model reads, plus the fingerprint that keys cached plans."""

    n: int
    height: int
    leaf_count: int
    #: label → occurrence count, sorted by label.
    label_counts: Tuple[Tuple[str, int], ...]
    #: attribute → number of nodes carrying a value, sorted.
    attr_counts: Tuple[Tuple[str, int], ...]
    #: mean children per internal node (0.0 for a single-node tree).
    avg_fanout: float
    #: mean proper-descendant count over all nodes (= mean depth).
    avg_subtree: float
    fingerprint: str

    def label_fraction(self, label: str) -> float:
        """Selectivity of the label test O_label — exact, popcount-free."""
        for name, count in self.label_counts:
            if name == label:
                return count / self.n
        return 0.0

    @classmethod
    def from_tree(cls, tree: Tree) -> "TreeStatistics":
        nodes = tree.nodes
        n = len(nodes)
        labels: Dict[str, int] = {}
        height = 0
        leaves = 0
        total_depth = 0
        for u in nodes:
            depth = len(u)  # addresses are root paths: depth is free
            total_depth += depth
            if depth > height:
                height = depth
            label = tree.label(u)
            labels[label] = labels.get(label, 0) + 1
            if not tree.children(u):
                leaves += 1
        internal = n - leaves
        attr_counts = tuple(
            sorted(
                (attr, len(tree.attr_table(attr)))
                for attr in tree.attributes
            )
        )
        label_counts = tuple(sorted(labels.items()))
        # total_depth covers avg_subtree (= total_depth / n); avg_fanout
        # is derived from n and leaves — the payload must span every
        # field the cost model reads, or two profile-distinct trees
        # could share a fingerprint and hence a cached plan.
        payload = repr(
            (n, height, leaves, total_depth, label_counts, attr_counts)
        )
        return cls(
            n=n,
            height=height,
            leaf_count=leaves,
            label_counts=label_counts,
            attr_counts=attr_counts,
            avg_fanout=(n - 1) / internal if internal else 0.0,
            # Each node v is a proper descendant of exactly depth(v)
            # ancestors, so Σ|subtree(u)| = Σ depth(v).
            avg_subtree=total_depth / n,
            fingerprint=_fingerprint(payload),
        )


@dataclass(frozen=True)
class CorpusStatistics:
    """The same profile aggregated over a corpus: per-node means across
    every tree, with a fingerprint chaining the per-tree ones in order.

    Any change to the tree sequence — a tree added, removed, reordered
    or replaced — changes the fingerprint, which invalidates every plan
    keyed against the old statistics."""

    tree_count: int
    total_nodes: int
    n: float  # mean tree size — the cost model's per-tree n
    max_n: int
    height: float
    leaf_count: float
    label_counts: Tuple[Tuple[str, int], ...]  # summed over trees
    avg_fanout: float
    avg_subtree: float
    fingerprint: str

    def label_fraction(self, label: str) -> float:
        if not self.total_nodes:
            return 0.0
        for name, count in self.label_counts:
            if name == label:
                return count / self.total_nodes
        return 0.0

    @classmethod
    def from_trees(
        cls, per_tree: Sequence[TreeStatistics]
    ) -> "CorpusStatistics":
        count = len(per_tree)
        total = sum(s.n for s in per_tree)
        labels: Dict[str, int] = {}
        for s in per_tree:
            for name, c in s.label_counts:
                labels[name] = labels.get(name, 0) + c
        payload = "|".join(s.fingerprint for s in per_tree)
        return cls(
            tree_count=count,
            total_nodes=total,
            n=total / count if count else 0.0,
            max_n=max((s.n for s in per_tree), default=0),
            height=_mean([s.height for s in per_tree]),
            leaf_count=_mean([s.leaf_count for s in per_tree]),
            label_counts=tuple(sorted(labels.items())),
            avg_fanout=_mean([s.avg_fanout for s in per_tree]),
            avg_subtree=_mean([s.avg_subtree for s in per_tree]),
            fingerprint=_fingerprint(payload),
        )


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def closure_reach_estimate(profile, directions: Iterable[str]) -> float:
    """Expected per-source image size of ``directions``:sup:`*` from
    profile statistics alone — the planner's index-free counterpart of
    :meth:`CardinalityEstimator.closure_pair_count`.

    The closed forms lean on two one-pass identities: the mean depth of
    a uniform node equals ``avg_subtree`` (so a pure ``up*`` chain has
    that expected length), and a ``(down|right)*`` closure from a
    uniform node covers on average one proper subtree (``avg_subtree``
    again, by the same Σ-depth identity).  A lone ``down*`` walks the
    first-child spine, bounded by the height; sibling-only closures walk
    on average half the fan-out; mixing ``up`` with any other direction
    reaches essentially the whole document.
    """
    dirs = frozenset(directions)
    n = max(float(profile.n), 1.0)
    if not dirs:
        return 1.0
    height = max(float(getattr(profile, "height", 1.0)), 1.0)
    avg_subtree = max(float(getattr(profile, "avg_subtree", 0.0)), 0.0)
    fanout = max(float(getattr(profile, "avg_fanout", 0.0)), 0.0)
    if "up" in dirs and len(dirs) > 1:
        return n
    if dirs == {"up"}:
        return min(n, avg_subtree + 1.0)
    if "down" in dirs and ("right" in dirs or "left" in dirs):
        return min(n, avg_subtree + 1.0)
    if dirs == {"down"}:
        return min(n, height / 2.0 + 1.0)
    return min(n, fanout / 2.0 + 1.0)  # sibling-only chains


#: Profile types the planner's cost model accepts interchangeably.
StatsProfile = object  # TreeStatistics | CorpusStatistics


#: Bounded cache of per-tree statistics keyed on tree identity; entries
#: pin their tree so an id can never be recycled while live (the same
#: discipline as the index cache).
_STATS_CACHE_SIZE = 256
_STATS_CACHE: KeyedLRU = KeyedLRU(_STATS_CACHE_SIZE, name="tree-stats")


def tree_statistics(tree: Tree) -> TreeStatistics:
    """The (cached) statistics of ``tree`` — one O(n) pass per tree
    object, no index required."""
    key = id(tree)
    hit = _STATS_CACHE.get(key)
    if hit is not None and hit[0] is tree:
        return hit[1]
    stats = TreeStatistics.from_tree(tree)
    _STATS_CACHE.put(key, (tree, stats))
    return stats


def corpus_statistics(trees: Iterable[Tree]) -> CorpusStatistics:
    """Aggregated statistics over a tree sequence (order-sensitive —
    the fingerprint chains the per-tree fingerprints in order)."""
    return CorpusStatistics.from_trees(
        [tree_statistics(tree) for tree in trees]
    )


def stats_cache_clear() -> None:
    """Drop every cached per-tree statistics record (tests)."""
    _STATS_CACHE.cache_clear()


class CardinalityEstimator:
    """Wander-join-style cardinality estimates over one tree's index.

    Unary predicates are exact (popcounts over the inverted indexes).
    Binary joins are estimated by sampling: draw up to ``sample_size``
    source nodes uniformly from the left predicate's population, count
    each source's continuations *exactly* against the interval labels
    (descendant joins) or CSR children (child joins), and scale the
    total by ``population / sample``.  When the population fits in the
    sample the walk degenerates to an exact count — so estimates are
    exact on small inputs by construction.

    Deterministic per seed: two estimators with the same seed issuing
    the same call sequence return identical numbers.
    """

    def __init__(
        self,
        index: TreeIndex,
        seed: int = 0,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
    ) -> None:
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        self.index = index
        self.seed = seed
        self.sample_size = sample_size
        self._rng = random.Random(seed)

    # -- exact unary counts ------------------------------------------------

    def count(self, mask: int) -> int:
        """Exact cardinality of a node bitset (free popcount)."""
        return bit_count(mask)

    def label_count(self, label: str) -> int:
        """Exact number of σ-labelled nodes."""
        return bit_count(self.index.labelled(label))

    def selectivity(self, mask: int) -> float:
        """Fraction of the domain a bitset covers."""
        return bit_count(mask) / self.index.n if self.index.n else 0.0

    # -- sampled binary joins ----------------------------------------------

    def _sampled_sources(self, mask: int) -> Tuple[Sequence[int], float]:
        """Sources to walk from and the inverse sampling probability."""
        sources = list(iter_bits(mask))
        population = len(sources)
        if population <= self.sample_size:
            return sources, 1.0
        chosen = self._rng.sample(sources, self.sample_size)
        return chosen, population / self.sample_size

    def descendant_pairs(self, ancestors: int, descendants: int) -> int:
        """Estimated ``|{(u, v) : u ∈ A, v ∈ D, u ≺ v}|``.

        Each sampled ancestor's continuation count is the popcount of
        ``D`` restricted to its subtree *interval* — exact per source,
        so the only error is sampling error, and there is none when
        ``|A| ≤ sample_size``."""
        if not ancestors or not descendants:
            return 0
        subtree_mask = self.index.subtree_mask
        chosen, scale = self._sampled_sources(ancestors)
        hits = sum(
            bit_count(descendants & subtree_mask(u)) for u in chosen
        )
        return round(hits * scale)

    def child_pairs(self, parents: int, children: int) -> int:
        """Estimated ``|{(u, v) : u ∈ P, v ∈ C, E(u, v)}|`` — same
        sampling discipline over the CSR children masks."""
        if not parents or not children:
            return 0
        children_mask = self.index.children_mask
        chosen, scale = self._sampled_sources(parents)
        hits = sum(bit_count(children & children_mask[u]) for u in chosen)
        return round(hits * scale)

    def value_join(self, attr_left: str, attr_right: str) -> int:
        """Estimated ``|{(u, v) : val_a(u) = val_b(v)}|`` off the
        value inverted indexes — the tables are small, so this is an
        exact sum of per-value products."""
        left = self.index.value_mask.get(attr_left, {})
        right = self.index.value_mask.get(attr_right, {})
        return sum(
            bit_count(bits) * bit_count(right.get(value, 0))
            for value, bits in left.items()
        )

    def avg_subtree_size(self) -> float:
        """Sampled mean proper-descendant count — the wander-join
        estimate of how much a descendant axis multiplies a frontier."""
        idx = self.index
        if not idx.n:
            return 0.0
        return self.descendant_pairs(idx.all_mask, idx.all_mask) / idx.n

    def random_walk_depth(self, walks: Optional[int] = None) -> float:
        """Mean length of a random root-to-leaf walk over the CSR
        children arrays — how deep a blind downward run travels, the
        classic wander-join random descent."""
        idx = self.index
        if not idx.n:
            return 0.0
        walks = self.sample_size if walks is None else max(1, walks)
        children_of = idx.children_of
        total = 0
        for _ in range(walks):
            u, steps = 0, 0
            kids = children_of(u)
            while kids:
                u = kids[self._rng.randrange(len(kids))]
                steps += 1
                kids = children_of(u)
            total += steps
        return total / walks

    # -- closure reachability (caterpillar-style direction stars) ----------

    def _closure_counter(self, dirs: frozenset):
        """Per-source exact image size of ``dirs``:sup:`*` — O(1) where
        the preorder layout gives a closed form, a chain walk for lone
        spines, a per-source saturation otherwise."""
        idx = self.index
        if dirs == {"up"}:
            depth = idx.depth
            return lambda u: depth[u] + 1
        if "down" in dirs and "right" in dirs and "up" not in dirs:
            # (down|right)* from u sweeps u's subtree, then each right
            # sibling's — one contiguous preorder interval ending at the
            # parent's subtree end.  Adding "left" extends the interval
            # back to the first sibling: the parent's whole proper
            # subtree.
            parent = idx.parent
            subtree_end = idx.subtree_end
            if "left" in dirs:
                def count(u: int) -> int:
                    p = parent[u]
                    if p < 0:
                        return idx.n
                    return subtree_end[p] - p - 1
            else:
                def count(u: int) -> int:
                    p = parent[u]
                    end = idx.n if p < 0 else subtree_end[p]
                    return end - u
            return count
        steps = []
        if dirs == {"down"}:
            child_start, child_ids = idx.child_start, idx.child_ids
            steps = [
                lambda u: child_ids[child_start[u]]
                if child_start[u] < child_start[u + 1]
                else -1
            ]
        elif dirs == {"right"}:
            steps = [idx.next_sibling.__getitem__]
        elif dirs == {"left"}:
            steps = [idx.prev_sibling.__getitem__]
        if len(steps) == 1:
            step = steps[0]

            def chain(u: int) -> int:
                length = 1
                v = step(u)
                while v >= 0:
                    length += 1
                    v = step(v)
                return length

            return chain
        moves = [idx.moves[d] for d in sorted(dirs)]

        def saturate(u: int) -> int:
            seen = 1 << u
            frontier = seen
            while frontier:
                image = 0
                for move in moves:
                    image |= move(frontier)
                frontier = image & ~seen
                seen |= frontier
            return bit_count(seen)

        return saturate

    def closure_pair_count(self, sources: int, directions) -> int:
        """Estimated ``|{(u, v) : u ∈ S, v ∈ dirs*(u)}|`` — reflexive
        reachability pairs under a caterpillar-style direction star,
        with the usual wander-join discipline: exact per sampled source,
        scaled by the inverse sampling probability, and therefore exact
        outright when ``|S| ≤ sample_size``."""
        if not sources:
            return 0
        dirs = frozenset(directions)
        if not dirs:
            return bit_count(sources)
        counter = self._closure_counter(dirs)
        chosen, scale = self._sampled_sources(sources)
        return round(sum(counter(u) for u in chosen) * scale)

    def closure_image_size(self, sources: int, directions) -> int:
        """Exact ``|dirs*(S)|`` — one set-at-a-time saturation over the
        move graphs (cheap: every round is a handful of big-int shifts),
        kept exact rather than sampled because images overlap."""
        if not sources:
            return 0
        dirs = frozenset(directions)
        seen = sources
        frontier = sources
        moves = [self.index.moves[d] for d in sorted(dirs)]
        while frontier:
            image = 0
            for move in moves:
                image |= move(frontier)
            frontier = image & ~seen
            seen |= frontier
        return bit_count(seen)
