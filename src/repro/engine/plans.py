"""The process-wide shared plan cache: compile once per query *text*.

Gottlob–Koch–Schulz frame the fixed-query / many-instances regime as
the one where compile-once / run-many separation dominates total cost —
yet until this module, compiled artifacts were cached per
``TreeDatabase``: a workload of one query over 10k documents re-parsed
(or at best re-LRU'd) the same text 10k times, once per database.

Here every compile step is a pure function of the query text, memoised
in **one** process-wide :class:`~repro.caching.KeyedLRU` keyed by
``(kind, text)``:

``compile_xpath_plan``
    text → parsed XPath AST (the fast and reference evaluators both
    take the AST).
``compile_sentence_plan``
    text → closed FO formula (``TreeDatabase.ask`` semantics).
``compile_select_plan``
    text → binary :class:`~repro.logic.exists_star.ExistsStarQuery`
    (``TreeDatabase.select_where`` semantics).
``compile_caterpillar_plan``
    text → caterpillar AST (parse only — what the reference walker
    needs, and all the facade memoises).
``compile_walk_plan``
    text → ``(ast, CompiledWalk)`` — parse *plus* the ε-closed NFA
    compilation, the fast walking engine's full plan.

Plans are immutable and tree-independent, so sharing them across
databases, corpus batches and worker processes is always sound.  A
parse error propagates without touching the cache (no poisoned slots —
see :meth:`repro.caching.KeyedLRU.get_or_compute`).
"""

from __future__ import annotations

from typing import Tuple

from ..caching import CacheInfo, KeyedLRU
from ..caterpillar.ast import Caterpillar
from ..caterpillar.parser import parse_caterpillar
from ..logic.exists_star import ExistsStarQuery
from ..logic.parser import parse_query, parse_sentence
from ..logic.tree_fo import TreeFormula
from ..xpath.ast import Expr
from ..xpath.parser import parse_xpath
from .walk import CompiledWalk, compile_walk

__all__ = [
    "PLAN_CACHE_SIZE",
    "compile_xpath_plan",
    "compile_sentence_plan",
    "compile_select_plan",
    "compile_caterpillar_plan",
    "compile_walk_plan",
    "compile_ir_plan",
    "cached_query_plan",
    "plan_cache_info",
    "plan_cache_clear",
]

#: Bound on resident plans across *all* kinds.  Plans are small (ASTs
#: and compiled NFAs), so the bound exists for hygiene, not memory
#: pressure; 512 comfortably covers every workload in the repo.
PLAN_CACHE_SIZE = 512

_PLAN_CACHE: KeyedLRU = KeyedLRU(PLAN_CACHE_SIZE, name="plans")


def compile_xpath_plan(text: str) -> Expr:
    """The parsed XPath AST for ``text``, shared process-wide."""
    return _PLAN_CACHE.get_or_compute(
        ("xpath", text), lambda: parse_xpath(text)
    )


def compile_sentence_plan(text: str) -> TreeFormula:
    """The closed FO formula for ``text``, shared process-wide."""
    return _PLAN_CACHE.get_or_compute(
        ("sentence", text), lambda: parse_sentence(text)
    )


def compile_select_plan(text: str) -> ExistsStarQuery:
    """The binary FO(∃*) selector for ``text``, shared process-wide."""
    return _PLAN_CACHE.get_or_compute(
        ("select", text), lambda: parse_query(text)
    )


def compile_caterpillar_plan(text: str) -> Caterpillar:
    """The parsed caterpillar AST for ``text``, shared process-wide."""
    return _PLAN_CACHE.get_or_compute(
        ("caterpillar", text), lambda: parse_caterpillar(text)
    )


def _walk_plan(text: str) -> Tuple[Caterpillar, CompiledWalk]:
    expr = compile_caterpillar_plan(text)
    return expr, compile_walk(expr)


def compile_walk_plan(text: str) -> Tuple[Caterpillar, CompiledWalk]:
    """``(ast, CompiledWalk)`` for ``text`` — the fast walking engine's
    whole tree-independent plan, shared process-wide."""
    return _PLAN_CACHE.get_or_compute(("walk", text), lambda: _walk_plan(text))


def _parsed_for_ir(kind: str, text: str):
    if kind == "xpath":
        return compile_xpath_plan(text)
    if kind == "ask":
        return compile_sentence_plan(text)
    if kind == "select":
        return compile_select_plan(text)
    if kind in ("caterpillar", "caterpillar-relation"):
        return compile_walk_plan(text)
    raise ValueError(f"unknown query kind {kind!r}")


def compile_ir_plan(kind: str, text: str, stats=None, parsed=None):
    """The query's :class:`~repro.engine.ir.Plan` for evaluation from
    the root context, or ``None`` when it falls outside the IR fragment
    — shared process-wide like every other compiled artifact.

    When ``stats`` is given, its fingerprint joins the cache key: the
    lowering orders ``Join`` children by estimated cardinality, so the
    plan is a function of the statistics it was costed against.
    ``parsed`` (the already-compiled AST for ``kind``) skips the parse
    on a cache miss; hits never parse at all.
    """
    from .ir import lower_query

    fingerprint = None if stats is None else stats.fingerprint

    def build():
        ast = _parsed_for_ir(kind, text) if parsed is None else parsed
        return (lower_query(kind, ast, stats),)

    return _PLAN_CACHE.get_or_compute(
        ("ir", kind, text, fingerprint), build
    )[0]


def cached_query_plan(key: Tuple, factory):
    """A planner-produced execution plan, memoised in the same shared
    cache as the compiled artifacts.

    ``key`` must carry the query kind and text *plus* the statistics
    fingerprint (and any planner configuration) the plan depends on —
    see :meth:`repro.engine.planner.Planner.plan` — so a plan built
    against stale statistics is unreachable the moment the corpus (or
    tree) behind it changes."""
    return _PLAN_CACHE.get_or_compute(("auto-plan",) + key, factory)


def plan_cache_info() -> CacheInfo:
    """Hit/miss statistics of the shared plan cache."""
    return _PLAN_CACHE.cache_info()


def plan_cache_clear() -> None:
    """Empty the shared plan cache (cold-start benchmarks, tests)."""
    _PLAN_CACHE.cache_clear()
