"""The compiled, set-at-a-time walking engine.

The reference caterpillar evaluator (:mod:`repro.caterpillar.nfa`)
rebuilds a Thompson NFA on every call and BFSes the (state × node)
product one ``(state, node)`` pair at a time, with each atom applied
through tuple-address tree methods.  This module is its indexed
counterpart, the same move the FO/XPath engines made in
:mod:`repro.engine.fo` / :mod:`repro.engine.xpath`:

* each expression is compiled **once** (bounded LRU keyed by the
  concrete syntax) into a :class:`CompiledWalk` — the ε-*closed* NFA
  with per-state, atom-partitioned edge tables;
* each (expression, tree) pairing binds the compiled atoms to the
  tree's :class:`~repro.engine.index.TreeIndex`: tests become bitset
  masks (one ``&`` per frontier), moves become the index's move-graph
  maps (shift-shaped where preorder allows, array loops elsewhere);
* evaluation is a frontier-bitset BFS over the product graph — one
  big-int operation per (state, atom) per round instead of one
  dict/set operation per (state, node) pair.

:func:`walk` mirrors the reference ``walk`` (nodes reachable from one
context), :func:`relation` mirrors the reference ``relation`` (the full
denoted binary relation, computed as one per-start-node reachability
sweep over the shared compiled product), and :func:`matches` mirrors
tree acceptance from the root.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..caching import KeyedLRU
from ..caterpillar.ast import (
    Caterpillar,
    IS_FIRST,
    IS_LAST,
    IS_LEAF,
    IS_ROOT,
    LabelTest,
    Move,
    Test,
)
from ..caterpillar.nfa import CaterpillarNFA, compile_caterpillar
from ..caterpillar.parser import format_caterpillar
from ..resilience.budget import current_context
from ..trees.node import NodeId
from ..trees.tree import Tree
from .index import TreeIndex, index_for, iter_bits
from .nodeset import apply_atom, lane_tiler, reach

__all__ = [
    "CompiledWalk",
    "WalkEvaluator",
    "compile_walk",
    "compile_cache_info",
    "compile_cache_clear",
    "walk",
    "relation",
    "matches",
]

#: Compiled atoms: ("move", direction) | ("test", predicate) |
#: ("label", σ) — tree-independent, bound to an index at evaluation.
CompiledAtom = Tuple[str, str]


def _compile_atom(atom) -> CompiledAtom:
    if isinstance(atom, Move):
        return ("move", atom.direction)
    if isinstance(atom, Test):
        return ("test", atom.predicate)
    if isinstance(atom, LabelTest):
        return ("label", atom.label)
    raise TypeError(f"unknown caterpillar atom {atom!r}")


class CompiledWalk:
    """The ε-closed, reduced compiled form of one caterpillar expression.

    ``edges[q]`` partitions the outgoing atom edges of *all* states in
    the ε-closure of ``q`` by atom, so the evaluator applies each atom
    to a frontier once and feeds every target state from the result.
    ``accepting`` flags the states whose ε-closure contains the accept
    state; a node is in the answer iff it is reached in one of them.

    Thompson construction leaves many behaviourally identical states
    (every ``*``/``|`` contributes plumbing), and each survivor would
    re-push the same frontier bits every round.  Compilation therefore
    prunes states unreachable from the start or unable to reach
    acceptance, then iterates a merge of states with identical
    (accepting, atom-edge) signatures to a fixpoint — on typical
    expressions this shrinks the product's state dimension severalfold,
    and turns ``a*`` plumbing into genuine self-loops the evaluator can
    saturate in place.
    """

    __slots__ = ("text", "state_count", "start", "edges", "accepting")

    def __init__(self, expr: Caterpillar) -> None:
        self.text = format_caterpillar(expr)
        nfa: CaterpillarNFA = compile_caterpillar(expr)
        closures = _epsilon_closures(nfa)
        edges: Dict[int, Dict[CompiledAtom, List[int]]] = {}
        for state in range(nfa.state_count):
            grouped: "OrderedDict[CompiledAtom, List[int]]" = OrderedDict()
            for member in closures[state]:
                for atom, target in nfa.edge_table.get(member, ()):
                    if atom is None:
                        continue
                    bucket = grouped.setdefault(_compile_atom(atom), [])
                    if target not in bucket:
                        bucket.append(target)
            edges[state] = grouped
        accepting = {
            state
            for state in range(nfa.state_count)
            if nfa.accept in closures[state]
        }
        keep = _live_states(nfa.start, edges, accepting)
        canon = _merge_equivalent(keep, edges, accepting)
        order = sorted(
            {canon[s] for s in keep}, key=lambda s: (s != canon[nfa.start], s)
        )
        renumber = {s: i for i, s in enumerate(order)}
        self.state_count = len(order)
        self.start = renumber[canon[nfa.start]]
        compact: List[Tuple[Tuple[CompiledAtom, Tuple[int, ...]], ...]] = []
        for s in order:
            entries = []
            for atom, targets in edges[s].items():
                live = tuple(
                    dict.fromkeys(
                        renumber[canon[t]] for t in targets if t in keep
                    )
                )
                if live:
                    entries.append((atom, live))
            compact.append(tuple(entries))
        self.edges = tuple(compact)
        self.accepting = tuple(
            renumber[s] for s in order if s in accepting
        )

    def bind(self, tree: Tree) -> "WalkEvaluator":
        """The evaluator of this expression over ``tree``."""
        return WalkEvaluator(self, index_for(tree))

    def to_ir(self):
        """This expression as a shared-IR plan (a single ``Closure`` op
        seeded at the root) — what the vectorized shard executor runs
        across a whole corpus chunk at once."""
        from .ir import lower_caterpillar

        return lower_caterpillar(self)

    def __repr__(self) -> str:
        return f"CompiledWalk({self.text!r}, {self.state_count} states)"


def _live_states(
    start: int,
    edges: Dict[int, Dict[CompiledAtom, List[int]]],
    accepting,
) -> set:
    """States both reachable from ``start`` and able to reach an
    accepting state over the ε-folded atom edges."""
    forward = {start}
    stack = [start]
    while stack:
        for targets in edges[stack.pop()].values():
            for t in targets:
                if t not in forward:
                    forward.add(t)
                    stack.append(t)
    predecessors: Dict[int, List[int]] = {}
    for s, grouped in edges.items():
        for targets in grouped.values():
            for t in targets:
                predecessors.setdefault(t, []).append(s)
    backward = set(accepting)
    stack = list(backward)
    while stack:
        for p in predecessors.get(stack.pop(), ()):
            if p not in backward:
                backward.add(p)
                stack.append(p)
    live = forward & backward
    # Keep the start state even when the language is empty, so the
    # evaluator always has a well-defined (empty-answer) product.
    live.add(start)
    return live


def _merge_equivalent(
    keep: set,
    edges: Dict[int, Dict[CompiledAtom, List[int]]],
    accepting,
) -> Dict[int, int]:
    """Iteratively collapse states with identical (accepting, edges)
    signatures; returns the state → representative map.  Merging states
    with equal right languages never changes reachability answers."""
    canon = {s: s for s in keep}
    while True:
        signature: Dict[tuple, int] = {}
        mapping = {}
        for s in sorted(keep):
            key = (
                s in accepting,
                tuple(
                    (atom, tuple(sorted(
                        {canon[t] for t in targets if t in keep}
                    )))
                    for atom, targets in sorted(edges[s].items())
                ),
            )
            mapping[s] = signature.setdefault(key, s)
        composed = {s: mapping[canon[s]] for s in keep}
        if composed == canon:
            return canon
        canon = composed


def _epsilon_closures(nfa: CaterpillarNFA) -> List[Tuple[int, ...]]:
    """Per-state ε-closure (reflexive-transitive over ε edges)."""
    epsilon: Dict[int, List[int]] = {}
    for source, atom, target in nfa.transitions:
        if atom is None:
            epsilon.setdefault(source, []).append(target)
    closures: List[Tuple[int, ...]] = []
    for state in range(nfa.state_count):
        seen = {state}
        stack = [state]
        while stack:
            for target in epsilon.get(stack.pop(), ()):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        closures.append(tuple(sorted(seen)))
    return closures


class WalkEvaluator:
    """A :class:`CompiledWalk` bound to one tree's index.

    Binding resolves every atom against the index once: tests become
    bitset masks, moves become the index's move-graph maps.  The bound
    table is reused across every :meth:`from_context` call and the
    whole :meth:`all_pairs` sweep.
    """

    __slots__ = ("compiled", "index", "_bound", "_stacked")

    def __init__(self, compiled: CompiledWalk, index: TreeIndex) -> None:
        self.compiled = compiled
        self.index = index
        move_groups = {
            direction: tuple(groups)
            for direction, groups in index.move_groups.items()
        }
        test_masks = {
            IS_ROOT: index.root_mask,
            IS_LEAF: index.leaf_mask,
            IS_FIRST: index.first_mask,
            IS_LAST: index.last_mask,
        }
        self._bound = self._bind(move_groups, test_masks, 1)
        self._stacked = None  # built lazily by all_pairs()

    def _bind(self, move_groups, test_masks, tiler):
        """Resolve every compiled atom against this tree: a test/label
        becomes ``(None, mask)``, a move becomes ``(shift_groups, 0)``.
        Each state's edges are split into *self-loops* (targets equal to
        the state — saturated in place by the evaluator) and ordinary
        out-edges, with the same applier shared when an atom has both.
        """
        index = self.index
        bound = []
        for state, state_edges in enumerate(self.compiled.edges):
            selfs = []
            outs = []
            for (kind, payload), targets in state_edges:
                if kind == "move":
                    applier = (move_groups[payload], 0)
                elif kind == "test":
                    applier = (None, test_masks[payload] * tiler)
                else:  # label test
                    applier = (None, index.labelled(payload) * tiler)
                if state in targets:
                    selfs.append(applier)
                rest = tuple(t for t in targets if t != state)
                if rest:
                    outs.append((applier[0], applier[1], rest))
            bound.append((tuple(selfs), tuple(outs)))
        return tuple(bound)

    #: One atom, set-at-a-time — the kernel's applier (mask intersection
    #: for tests, one shift per move-graph group for moves).
    _apply = staticmethod(apply_atom)

    def _reach(self, bound, init: int) -> List[int]:
        """Per-state bitsets of product-reachable nodes from the start
        state carrying ``init`` — the kernel's round-synchronised
        frontier-bitset BFS (:func:`repro.engine.nodeset.reach`), with
        self-loops (``a*`` plumbing after compilation) saturated in
        place and one budget checkpoint per unit of big-int work."""
        return reach(
            bound,
            self.compiled.state_count,
            self.compiled.start,
            init,
            current_context(),
        )

    def result_mask(self, context: NodeId = ()) -> int:
        """Bitset of nodes reachable from ``context`` by some denoted
        caterpillar string."""
        self.index.tree.require(context)
        reached = self._reach(self._bound, 1 << self.index.id_of[context])
        out = 0
        for state in self.compiled.accepting:
            out |= reached[state]
        return out

    def from_context(self, context: NodeId = ()) -> Tuple[NodeId, ...]:
        """All nodes reachable from ``context`` — document order, the
        reference ``walk`` contract."""
        return self.index.to_nodes(self.result_mask(context))

    # -- all-pairs: every start state at once ---------------------------------

    def _bind_stacked(self):
        """Edge tables over the *stacked* representation: one big int
        holding n blocks of n bits, block s = current node set of the
        walk started at node s.  Tests tile their mask across every
        block; moves replay their shift groups, which stay inside a
        block because every (source, target) pair lies in [0, n).  One
        BFS over these atoms advances all n start nodes simultaneously
        — per-start-state reachability in one product sweep.
        """
        if self._stacked is not None:
            return self._stacked
        index = self.index
        n = index.n
        #: bits at 0, n, 2n, …: multiplying an n-bit mask by this tiles
        #: it across all n blocks (no carries — blocks don't overlap).
        tiler = lane_tiler(n, n)
        test_masks = {
            IS_ROOT: index.root_mask,
            IS_LEAF: index.leaf_mask,
            IS_FIRST: index.first_mask,
            IS_LAST: index.last_mask,
        }
        move_groups = {
            direction: tuple(
                (shift, mask * tiler) for shift, mask in groups
            )
            for direction, groups in index.move_groups.items()
        }
        diagonal = 0
        for s in range(n):
            diagonal |= 1 << (s * n + s)
        self._stacked = (self._bind(move_groups, test_masks, tiler), diagonal)
        return self._stacked

    def all_pairs(self) -> FrozenSet[Tuple[NodeId, NodeId]]:
        """The full denoted relation ⟦expr⟧ ⊆ Dom(t)² — one stacked
        frontier-bitset BFS covering every start node at once."""
        bound, diagonal = self._bind_stacked()
        reached = self._reach(bound, diagonal)
        answers = 0
        for state in self.compiled.accepting:
            answers |= reached[state]
        index = self.index
        n = index.n
        node_of = index.node_of
        block = (1 << n) - 1
        out = set()
        for s in range(n):
            hits = (answers >> (s * n)) & block
            if hits:
                source = node_of[s]
                out.update((source, node_of[v]) for v in iter_bits(hits))
        return frozenset(out)

    def matches(self) -> bool:
        """Tree acceptance: some denoted string walks from the root."""
        return bool(self.result_mask(()))

    def __repr__(self) -> str:
        return f"WalkEvaluator({self.compiled.text!r}, n={self.index.n})"


# ---------------------------------------------------------------------------
# compile cache
# ---------------------------------------------------------------------------

#: Bounded LRU of compiled expressions, keyed by concrete syntax so
#: structurally equal expressions share one compilation.
_COMPILE_CACHE_SIZE = 256
_COMPILE_CACHE: KeyedLRU = KeyedLRU(_COMPILE_CACHE_SIZE, name="walk-compile")


def compile_walk(expr: Caterpillar) -> CompiledWalk:
    """The (cached) compiled form of ``expr``."""
    return _COMPILE_CACHE.get_or_compute(
        format_caterpillar(expr), lambda: CompiledWalk(expr)
    )


def compile_cache_info() -> Tuple[int, int, int, int]:
    """(hits, misses, maxsize, currsize) of the compile cache."""
    return _COMPILE_CACHE.cache_info()


def compile_cache_clear() -> None:
    """Empty the compile and evaluator caches, resetting statistics."""
    _COMPILE_CACHE.cache_clear()
    _EVAL_CACHE.cache_clear()


#: Bound evaluators keyed by (compiled, index) identity, so repeated
#: queries with the same expression against the same tree reuse the
#: bound atom tables (including the lazily built stacked ones).
#: Entries pin both objects, so neither id can be recycled while live.
_EVAL_CACHE: KeyedLRU = KeyedLRU(128, name="walk-evaluators")


def evaluator_for(expr: Caterpillar, tree: Tree) -> WalkEvaluator:
    """The (cached) bound evaluator of ``expr`` over ``tree``."""
    compiled = compile_walk(expr)
    index = index_for(tree)
    key = (id(compiled), id(index))
    hit = _EVAL_CACHE.get(key)
    if hit is not None and hit[0] is compiled and hit[1] is index:
        return hit[2]
    evaluator = WalkEvaluator(compiled, index)
    _EVAL_CACHE.put(key, (compiled, index, evaluator))
    return evaluator


# ---------------------------------------------------------------------------
# reference-shaped entry points
# ---------------------------------------------------------------------------


def walk(
    expr: Caterpillar, tree: Tree, start: NodeId = ()
) -> Tuple[NodeId, ...]:
    """Fast counterpart of :func:`repro.caterpillar.nfa.walk`."""
    return evaluator_for(expr, tree).from_context(start)


def relation(expr: Caterpillar, tree: Tree) -> FrozenSet[Tuple[NodeId, NodeId]]:
    """Fast counterpart of :func:`repro.caterpillar.nfa.relation`."""
    return evaluator_for(expr, tree).all_pairs()


def matches(expr: Caterpillar, tree: Tree) -> bool:
    """Fast counterpart of :func:`repro.caterpillar.nfa.matches`."""
    return evaluator_for(expr, tree).matches()
