"""Interval/bitset XPath evaluation over a :class:`TreeIndex`.

The reference evaluator (:mod:`repro.xpath.evaluator`) materializes a
Python set of node addresses per step and walks axes node by node.
Here a step's node set is an int bitset over dense preorder ids, and

* a **child** axis is one precomputed ``children_mask`` OR per source;
* a **descendant** axis collapses the sources' subtrees to maximal
  *preorder intervals* first (:meth:`TreeIndex.descendants_mask`), so
  ``//`` from a whole frontier costs O(#disjoint subtrees) big-int
  range operations instead of touching each descendant — the payoff of
  interval labelling;
* node tests intersect with the label inverted index (one ``&``);
* document-order output is free (ascending bit order).

Filters keep the reference's existential semantics: ``u`` passes
``[p]`` iff ``p`` selects something from context ``u`` — evaluated with
the same bitset machinery, one cheap run per candidate.  Agreement
with the reference is enforced by the ``xpath/fast-xpath`` oracle pair
and the hypothesis differential suite.
"""

from __future__ import annotations

from typing import Tuple

from ..resilience.budget import current_context
from ..trees.node import NodeId
from ..trees.tree import Tree
from ..xpath.ast import (
    CHILD,
    Expr,
    NameTest,
    NodeTest,
    Path,
    SelfTest,
    Step,
    Union_,
)
from .index import TreeIndex, index_for, iter_bits

__all__ = ["select"]


def _test_mask(test: NodeTest, idx: TreeIndex) -> int:
    if isinstance(test, NameTest):
        return idx.labelled(test.name)
    return idx.all_mask  # Wildcard and (non-leading) SelfTest match any node.


def _apply_filters(step: Step, idx: TreeIndex, bits: int) -> int:
    context = current_context()
    for filter_path in step.filters:
        keep = 0
        for u in iter_bits(bits):
            # One budget checkpoint per candidate: filter evaluation is
            # the only place this engine does per-node work.
            if context is not None:
                context.checkpoint()
            if _path_mask(filter_path, idx, u, in_filter=True):
                keep |= 1 << u
        bits = keep
        if not bits:
            break
    return bits


def _seed_mask(path: Path, idx: TreeIndex, context: int, in_filter: bool) -> int:
    first = path.steps[0]
    if path.absolute:
        candidates = idx.root_mask
    elif isinstance(first.test, SelfTest):
        candidates = 1 << context
    elif in_filter:
        candidates = idx.children_mask[context]  # the implicit child axis
    else:
        candidates = 1 << context  # relative: first test applies to context
    candidates &= _test_mask(first.test, idx)
    return _apply_filters(first, idx, candidates)


def _path_mask(
    path: Path, idx: TreeIndex, context: int, in_filter: bool = False
) -> int:
    ctx = current_context()
    current = _seed_mask(path, idx, context, in_filter)
    for axis, step in zip(path.axes, path.steps[1:]):
        if not current:
            break
        if ctx is not None:
            ctx.checkpoint()
        if axis == CHILD:
            targets = idx.children_of_mask(current)
        else:
            targets = idx.descendants_mask(current)
        current = _apply_filters(step, idx, targets & _test_mask(step.test, idx))
    return current


def select(expr: Expr, tree: Tree, context: NodeId = ()) -> Tuple[NodeId, ...]:
    """Bitset counterpart of :func:`repro.xpath.evaluator.select` —
    same nodes, same document order.

    Root-context queries (the corpus contract) lower through the shared
    plan IR (:mod:`repro.engine.ir`), where filters become backward
    keep-masks evaluated set-at-a-time; other contexts keep the direct
    per-step path below.
    """
    tree.require(context)
    idx = index_for(tree)
    context_id = idx.id_of[context]
    if context_id == 0:
        from .ir import evaluate_tree
        from .plans import compile_ir_plan

        plan = compile_ir_plan("xpath", repr(expr), parsed=expr)
        return idx.to_nodes(evaluate_tree(plan, idx))
    if isinstance(expr, Union_):
        bits = 0
        for alternative in expr.alternatives:
            bits |= _path_mask(alternative, idx, context_id)
    else:
        bits = _path_mask(expr, idx, context_id)
    return idx.to_nodes(bits)
