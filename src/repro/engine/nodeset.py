"""The shared node-set kernel: packed big-int bitset primitives.

Every fast engine in this reproduction ultimately computes with the
same object — a *node set* over dense preorder ids, packed into one
arbitrary-precision Python int with bit *i* meaning "node *i* is in the
set" — but three dialects of the algebra grew up independently: the
walking engine's frontier shifts (:mod:`repro.engine.walk`), the FO
engine's inverted-index masks (:mod:`repro.engine.fo`), and the XPath
engine's interval merging (:mod:`repro.engine.xpath`).  This module is
the one home for the primitives they share, so an optimisation lands
once:

* **bit iteration / popcount** — :func:`iter_bits`, :func:`bit_count`;
* **shift decomposition** — :func:`shift_groups` buckets a partial move
  function by target−source distance so a whole node set moves in one
  big-int shift per distinct distance; :func:`apply_shift_groups` /
  :func:`apply_atom` replay such groups against a frontier;
* **intervals** — :func:`interval_mask` materialises the contiguous id
  range that a preorder subtree occupies;
* **lane stacking** — :func:`lane_tiler`, :func:`stack_masks`,
  :func:`stack_groups`, :func:`broadcast_lanes`, :func:`split_lanes`
  generalise the trick :meth:`WalkEvaluator.all_pairs` plays within one
  tree (n start frontiers in one n²-bit integer) to *many trees*: each
  tree gets a power-of-two-wide lane in one wide integer, and every
  mask/shift/popcount primitive acts on all lanes simultaneously;
* **product-graph saturation** — :func:`reach` is the
  round-synchronised frontier BFS both the caterpillar evaluator and
  the plan IR's ``Closure`` op run over bound atom tables.

Lanes are padded to a power of two so the SWAR fold in
:func:`broadcast_lanes` never leaks bits across lane boundaries, and so
moves (confined to ``[offset, offset + n)`` per tree) can never carry
into a neighbour.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "iter_bits",
    "bit_count",
    "shift_groups",
    "apply_shift_groups",
    "apply_atom",
    "interval_mask",
    "lane_width_for",
    "lane_tiler",
    "stack_masks",
    "stack_groups",
    "broadcast_lanes",
    "split_lanes",
    "reach",
]

#: ``((shift, source_mask), …)`` — the dense form of a partial move.
ShiftGroups = Tuple[Tuple[int, int], ...]


def iter_bits(bits: int) -> Iterator[int]:
    """Indices of the set bits of ``bits``, ascending (= document order)."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def bit_count(bits: int) -> int:
    """Number of set bits (nodes in the set)."""
    return bin(bits).count("1")


def shift_groups(edges: Iterable[Tuple[int, int]]) -> ShiftGroups:
    """Bucket (source, target) pairs by ``target - source``.

    Returns ``((shift, source_mask), …)`` sorted by shift: the dense
    form of a partial move function, applied set-at-a-time as one
    big-int shift per distinct distance.
    """
    groups: Dict[int, int] = {}
    for source, target in edges:
        delta = target - source
        groups[delta] = groups.get(delta, 0) | (1 << source)
    return tuple(sorted(groups.items()))


def apply_shift_groups(groups: ShiftGroups, frontier: int) -> int:
    """Image of ``frontier`` under a shift-decomposed move: one big-int
    shift per distinct distance, no per-node work."""
    image = 0
    for shift, group_mask in groups:
        hit = frontier & group_mask
        if hit:
            image |= hit << shift if shift >= 0 else hit >> -shift
    return image


def apply_atom(groups: Optional[ShiftGroups], mask: int, frontier: int) -> int:
    """One bound atom, set-at-a-time: a mask intersection for tests
    (``groups is None``), a shift-group replay for moves."""
    if groups is None:
        return frontier & mask
    return apply_shift_groups(groups, frontier)


def interval_mask(start: int, stop: int) -> int:
    """Bitset of the id range ``[start, stop)`` — a preorder subtree."""
    if stop <= start:
        return 0
    return (1 << stop) - (1 << start)


# ---------------------------------------------------------------------------
# lane stacking: many node sets (one per tree, or one per start node)
# packed side by side in a single wide integer
# ---------------------------------------------------------------------------


def lane_width_for(n: int) -> int:
    """The smallest power of two ≥ ``n`` — the lane stride that keeps
    the SWAR fold of :func:`broadcast_lanes` exactly lane-local."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def lane_tiler(width: int, lanes: int) -> int:
    """Bits at 0, width, 2·width, …: multiplying a sub-``width``-bit
    mask by this tiles it across all ``lanes`` lanes (no carries —
    lanes don't overlap)."""
    if lanes <= 0:
        return 0
    if lanes == 1:
        return 1
    return ((1 << (width * lanes)) - 1) // ((1 << width) - 1)


def stack_masks(masks: Iterable[int], width: int) -> int:
    """Pack per-lane masks into one wide integer, lane *i* at offset
    ``i * width``.  Every mask must fit in its lane."""
    out = 0
    offset = 0
    for mask in masks:
        out |= mask << offset
        offset += width
    return out


def stack_groups(
    per_lane_groups: Iterable[ShiftGroups], width: int
) -> ShiftGroups:
    """Merge per-lane shift groups into stacked groups: lane *i*'s
    source masks shift up by ``i * width``, same-distance buckets from
    different lanes fuse.  Shifts stay in-lane because each lane's
    (source, target) pairs lie within its own ``[0, n)``."""
    merged: Dict[int, int] = {}
    offset = 0
    for groups in per_lane_groups:
        for shift, mask in groups:
            merged[shift] = merged.get(shift, 0) | (mask << offset)
        offset += width
    return tuple(sorted(merged.items()))


def broadcast_lanes(bits: int, width: int, lanes: int) -> int:
    """Per-lane any→all: every non-empty lane becomes a full lane of
    ones, every empty lane stays zero — the vectorised form of "did
    this tree match?".

    Implemented as a SWAR OR-fold down to each lane's low bit followed
    by one widening multiply.  ``width`` must be a power of two so the
    fold window is exactly one lane.
    """
    if width & (width - 1):
        raise ValueError(f"lane width must be a power of two, got {width}")
    folded = bits
    shift = 1
    while shift < width:
        folded |= folded >> shift
        shift <<= 1
    low = folded & lane_tiler(width, lanes)
    return low * ((1 << width) - 1)


def split_lanes(bits: int, width: int, lanes: int) -> List[int]:
    """The per-lane node sets of a stacked integer, lane order."""
    block = (1 << width) - 1
    return [(bits >> (i * width)) & block for i in range(lanes)]


# ---------------------------------------------------------------------------
# product-graph saturation
# ---------------------------------------------------------------------------


def reach(bound, state_count: int, start: int, init: int, context=None) -> List[int]:
    """Per-state bitsets of product-reachable nodes from ``start``
    carrying ``init`` — the frontier-bitset BFS shared by the walking
    engine and the plan IR's ``Closure`` op.

    ``bound[q]`` is ``(selfs, outs)``: *self-loop* atoms of state ``q``
    as ``(groups, mask)`` appliers (saturated in place), and ordinary
    out-edges as ``(groups, mask, targets)``.  Propagation is
    *round-synchronised*: every state's fresh bits are batched and
    pushed through all its atoms once per round, so the number of
    big-int operations is (#edges × product-graph depth), never per
    (state, node) pair.  ``context`` (a resilience
    :class:`~repro.resilience.budget.ExecutionContext`) is checkpointed
    once per (state, round) and per self-loop wave — the units of
    big-int work.
    """
    reached = [0] * state_count
    reached[start] = init
    pending: Dict[int, int] = {start: init}
    while pending:
        current, pending = pending, {}
        for state, frontier in current.items():
            if context is not None:
                context.checkpoint()
            selfs, outs = bound[state]
            if selfs:
                grown = reached[state]
                wave = frontier
                while wave:
                    if context is not None:
                        context.checkpoint()
                    image = 0
                    for groups, mask in selfs:
                        image |= apply_atom(groups, mask, wave)
                    wave = image & ~grown
                    grown |= wave
                    frontier |= wave
                reached[state] = grown
            for groups, mask, targets in outs:
                image = apply_atom(groups, mask, frontier)
                if not image:
                    continue
                for target in targets:
                    fresh = image & ~reached[target]
                    if fresh:
                        reached[target] |= fresh
                        pending[target] = pending.get(target, 0) | fresh
    return reached
