"""``TreeIndex`` — the compiled form of an attributed tree.

Every evaluator in the reproduction so far walks raw tuple addresses:
``descendant(u, v)`` is a tuple-prefix check, label tests are per-node
dict lookups, and set-valued intermediate results are Python sets of
address tuples.  The index trades one O(n) construction pass for

* **dense integer ids** in document (pre-)order, so "set of nodes"
  becomes a Python-int *bitset* and document-order output is just
  ascending bit order;
* **interval labels**: the subtree of ``u`` occupies the contiguous id
  range ``[u, subtree_end[u])``, so ``descendant(u, v)`` is an O(1)
  interval containment (``u < v < subtree_end[u]``) and a descendant
  *axis* is a range mask — the Gottlob–Koch–Schulz move of evaluating
  over indexed structure instead of raw addresses;
* **navigation arrays**: parent, CSR children slices, sibling links,
  depth, plus a postorder numbering (``pre(u) < pre(v) and post(v) <
  post(u)`` is the classic equivalent descendant test);
* **inverted indexes**: label → bitset and attribute-value → bitset,
  making every unary atom of the FO vocabulary a single dict lookup;
* **move graphs**: set-at-a-time images of the four walking atoms
  (``up``/``down``/``left``/``right``) — the edge relations the
  product-graph walking engine (:mod:`repro.engine.walk`) BFSes over.
  Preorder ids make three of them partly *shift-shaped*: the first
  child of ``u`` is ``u + 1``, the parent of a first child is
  ``u - 1``, and a leaf's right sibling is ``u + 1``, so those slices
  of a frontier move in one big-int shift; only the remaining nodes
  fall back to per-bit array lookups.

Bitsets are arbitrary-precision Python ints: bit *i* set means "node
with dense id *i* is in the set".  Union/intersection/complement are
single C-level big-int operations (``|``, ``&``, ``^`` with the full
mask), which is what makes the set-at-a-time engines fast.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..caching import KeyedLRU
from ..trees.node import NodeId
from ..trees.tree import Tree
from ..trees.values import MaybeValue
from .nodeset import apply_shift_groups, bit_count, iter_bits
from .nodeset import shift_groups as _shift_groups

__all__ = [
    "TreeIndex",
    "index_for",
    "adopt_index",
    "index_cache_clear",
    "iter_bits",
    "bit_count",
]


class TreeIndex:
    """Dense-id arrays, interval labels and inverted indexes for a tree.

    The index is immutable and derived purely from the tree; build one
    with :func:`index_for` to get per-tree caching for free.
    """

    __slots__ = (
        "tree",
        "n",
        "node_of",
        "id_of",
        "parent",
        "subtree_end",
        "post_of",
        "depth",
        "child_start",
        "child_ids",
        "children_mask",
        "next_sibling",
        "prev_sibling",
        "all_mask",
        "root_mask",
        "leaf_mask",
        "first_mask",
        "last_mask",
        "label_mask",
        "value_mask",
        "has_next_mask",
        "has_prev_mask",
        "prev_adjacent_mask",
        "move_groups",
        "moves",
    )

    def __init__(self, tree: Tree) -> None:
        self.tree = tree
        nodes = tree.nodes  # document (pre-)order
        n = len(nodes)
        self.n = n
        self.node_of: Tuple[NodeId, ...] = nodes
        self.id_of: Dict[NodeId, int] = {u: i for i, u in enumerate(nodes)}
        id_of = self.id_of

        parent: List[int] = [-1] * n
        subtree_end: List[int] = [0] * n
        depth: List[int] = [0] * n
        post_of: List[int] = [0] * n
        next_sibling: List[int] = [-1] * n
        prev_sibling: List[int] = [-1] * n
        child_start: List[int] = [0] * (n + 1)
        child_ids: List[int] = []
        children_mask: List[int] = [0] * n
        leaf_mask = 0
        first_mask = 0
        last_mask = 0

        for i, u in enumerate(nodes):
            kids = tree.children(u)
            child_start[i] = len(child_ids)
            if not kids:
                leaf_mask |= 1 << i
            mask = 0
            previous = -1
            for kid in kids:
                j = id_of[kid]
                parent[j] = i
                depth[j] = depth[i] + 1
                child_ids.append(j)
                mask |= 1 << j
                if previous >= 0:
                    next_sibling[previous] = j
                    prev_sibling[j] = previous
                previous = j
            children_mask[i] = mask
            if kids:
                first_mask |= 1 << id_of[kids[0]]
                last_mask |= 1 << id_of[kids[-1]]
        child_start[n] = len(child_ids)

        for i, u in enumerate(nodes):
            subtree_end[i] = tree.subtree_interval(u)[1]
        for rank, u in enumerate(tree.nodes_postorder):
            post_of[id_of[u]] = rank

        self.parent = parent
        self.subtree_end = subtree_end
        self.post_of = post_of
        self.depth = depth
        self.child_start = child_start
        self.child_ids = child_ids
        self.children_mask = children_mask
        self.next_sibling = next_sibling
        self.prev_sibling = prev_sibling
        self.all_mask = (1 << n) - 1
        self.root_mask = 1
        self.leaf_mask = leaf_mask
        self.first_mask = first_mask
        self.last_mask = last_mask

        label_mask: Dict[str, int] = {}
        for i, u in enumerate(nodes):
            label = tree.label(u)
            label_mask[label] = label_mask.get(label, 0) | (1 << i)
        self.label_mask = label_mask

        value_mask: Dict[str, Dict[MaybeValue, int]] = {}
        for attr in tree.attributes:
            table: Dict[MaybeValue, int] = {}
            for u, value in tree.attr_table(attr).items():
                i = id_of[u]
                table[value] = table.get(value, 0) | (1 << i)
            value_mask[attr] = table
        self.value_mask = value_mask

        has_next = 0
        has_prev = 0
        prev_adjacent = 0
        for i in range(n):
            if next_sibling[i] >= 0:
                has_next |= 1 << i
            if prev_sibling[i] >= 0:
                has_prev |= 1 << i
                if prev_sibling[i] == i - 1:
                    prev_adjacent |= 1 << i
        self.has_next_mask = has_next
        self.has_prev_mask = has_prev
        self.prev_adjacent_mask = prev_adjacent

        #: Move graphs, shift-decomposed: direction → ((shift, mask), …)
        #: where ``mask`` collects the sources whose target lies exactly
        #: ``shift`` ids away (negative = towards smaller ids).  A move
        #: applied to a node set is then one ``(bits & mask) << shift``
        #: per distinct shift — no per-node work at all.
        self.move_groups = {
            "down": ((1, self.all_mask & ~leaf_mask),),
            "up": _shift_groups(
                (i, parent[i]) for i in range(1, n)
            ),
            "right": _shift_groups(
                (i, next_sibling[i]) for i in range(n) if next_sibling[i] >= 0
            ),
            "left": _shift_groups(
                (i, prev_sibling[i]) for i in range(n) if prev_sibling[i] >= 0
            ),
        }

        #: Move-graph dispatch: atom direction → set-at-a-time image.
        self.moves = {
            "up": self.up_mask,
            "down": self.down_mask,
            "left": self.left_mask,
            "right": self.right_mask,
        }

    # -- O(1) structure tests --------------------------------------------------

    def descendant(self, u: int, v: int) -> bool:
        """``u ≺ v`` by interval containment — O(1), no tuple prefixes."""
        return u < v < self.subtree_end[u]

    def children_of(self, u: int) -> List[int]:
        """The CSR children slice of ``u`` (dense ids, sibling order)."""
        return self.child_ids[self.child_start[u] : self.child_start[u + 1]]

    def subtree_mask(self, u: int) -> int:
        """Bitset of the *proper* descendants of ``u`` (a range mask)."""
        return (1 << self.subtree_end[u]) - (1 << (u + 1))

    def descendants_mask(self, sources: int) -> int:
        """Bitset of all proper descendants of any node in ``sources``.

        Overlapping subtrees are merged into maximal id intervals first,
        so the result is built from O(#disjoint subtrees) big-int
        operations — the whole tree collapses to a single range.
        """
        out = 0
        bits = sources
        while bits:
            low = bits & -bits
            end = self.subtree_end[low.bit_length() - 1]
            out |= (1 << end) - (low << 1)
            bits &= -1 << end  # drop every source the interval swallowed
        return out

    def children_of_mask(self, sources: int) -> int:
        """Bitset of all children of any node in ``sources``."""
        out = 0
        children_mask = self.children_mask
        for u in iter_bits(sources):
            out |= children_mask[u]
        return out

    # -- move graphs (set-at-a-time walking atoms) -----------------------------

    def _move(self, direction: str, sources: int) -> int:
        return apply_shift_groups(self.move_groups[direction], sources)

    def down_mask(self, sources: int) -> int:
        """Image of ``sources`` under the *first-child* move — one
        shift, since preorder puts the first child of ``u`` at
        ``u + 1``."""
        return (sources & ~self.leaf_mask) << 1

    def up_mask(self, sources: int) -> int:
        """Image of ``sources`` under the *parent* move."""
        return self._move("up", sources)

    def right_mask(self, sources: int) -> int:
        """Image of ``sources`` under the *right-sibling* move."""
        return self._move("right", sources)

    def left_mask(self, sources: int) -> int:
        """Image of ``sources`` under the *left-sibling* move."""
        return self._move("left", sources)

    def labelled(self, label: str) -> int:
        """Bitset of σ-labelled nodes (0 if σ never occurs)."""
        return self.label_mask.get(label, 0)

    def valued(self, attr: str, value: MaybeValue) -> int:
        """Bitset of nodes with ``val_attr = value`` (0 if absent)."""
        return self.value_mask.get(attr, {}).get(value, 0)

    def to_nodes(self, bits: int) -> Tuple[NodeId, ...]:
        """The node addresses of a bitset, in document order."""
        node_of = self.node_of
        return tuple(node_of[i] for i in iter_bits(bits))

    def __reduce__(self):
        # Every derived structure is a pure function of the tree, so
        # only the tree travels; rebuilding through index_for on load
        # lands the index in the receiving process's cache — exactly
        # what a corpus worker wants.
        return (index_for, (self.tree,))

    def __repr__(self) -> str:
        return f"TreeIndex({self.n} nodes, Σ={sorted(self.label_mask)})"


#: Bounded cache of indexes keyed on tree object identity.  Entries pin
#: their tree, so an id can never be recycled while its entry is live.
_INDEX_CACHE_SIZE = 64
_INDEX_CACHE: KeyedLRU = KeyedLRU(_INDEX_CACHE_SIZE, name="tree-indexes")


def index_for(tree: Tree) -> TreeIndex:
    """The (cached) :class:`TreeIndex` of ``tree``.

    Trees are immutable, so one index per tree object is always valid;
    repeated queries against the same document — the facade's workload —
    pay for indexing once.
    """
    key = id(tree)
    hit = _INDEX_CACHE.get(key)
    if hit is not None and hit[0] is tree:
        return hit[1]
    index = TreeIndex(tree)
    _INDEX_CACHE.put(key, (tree, index))
    return index


def adopt_index(tree: Tree, index: TreeIndex) -> None:
    """Re-seat a pinned index in the cache without rebuilding it.

    A :class:`~repro.corpus.TreeCorpus` holds more trees than the LRU
    bound; re-adopting each tree's pinned index as the batch loop
    reaches it keeps every engine's internal ``index_for`` lookups hits
    without growing the cache."""
    if index.tree is not tree:
        raise ValueError("index does not belong to this tree")
    _INDEX_CACHE.put(id(tree), (tree, index))


def index_cache_clear() -> None:
    """Drop every cached index (cold-start benchmarks, tests)."""
    _INDEX_CACHE.cache_clear()
