"""``TreeIndex`` — the compiled form of an attributed tree.

Every evaluator in the reproduction so far walks raw tuple addresses:
``descendant(u, v)`` is a tuple-prefix check, label tests are per-node
dict lookups, and set-valued intermediate results are Python sets of
address tuples.  The index trades one O(n) construction pass for

* **dense integer ids** in document (pre-)order, so "set of nodes"
  becomes a Python-int *bitset* and document-order output is just
  ascending bit order;
* **interval labels**: the subtree of ``u`` occupies the contiguous id
  range ``[u, subtree_end[u])``, so ``descendant(u, v)`` is an O(1)
  interval containment (``u < v < subtree_end[u]``) and a descendant
  *axis* is a range mask — the Gottlob–Koch–Schulz move of evaluating
  over indexed structure instead of raw addresses;
* **navigation arrays**: parent, CSR children slices, sibling links,
  depth, plus a postorder numbering (``pre(u) < pre(v) and post(v) <
  post(u)`` is the classic equivalent descendant test);
* **inverted indexes**: label → bitset and attribute-value → bitset,
  making every unary atom of the FO vocabulary a single dict lookup;
* **move graphs**: set-at-a-time images of the four walking atoms
  (``up``/``down``/``left``/``right``) — the edge relations the
  product-graph walking engine (:mod:`repro.engine.walk`) BFSes over.
  Preorder ids make three of them partly *shift-shaped*: the first
  child of ``u`` is ``u + 1``, the parent of a first child is
  ``u - 1``, and a leaf's right sibling is ``u + 1``, so those slices
  of a frontier move in one big-int shift; only the remaining nodes
  fall back to per-bit array lookups.

Bitsets are arbitrary-precision Python ints: bit *i* set means "node
with dense id *i* is in the set".  Union/intersection/complement are
single C-level big-int operations (``|``, ``&``, ``^`` with the full
mask), which is what makes the set-at-a-time engines fast.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Dict, List, Optional, Tuple

from ..caching import KeyedLRU
from ..trees.node import NodeId
from ..trees.tree import Tree
from ..trees.values import BOTTOM, MaybeValue
from .nodeset import apply_shift_groups, bit_count, iter_bits
from .nodeset import shift_groups as _shift_groups

__all__ = [
    "TreeIndex",
    "PackedIndex",
    "index_for",
    "adopt_index",
    "index_cache_clear",
    "index_structures",
    "repair_index",
    "serialize_index",
    "deserialize_index",
    "IndexFormatError",
    "INDEX_BLOB_VERSION",
    "REPAIR_THRESHOLD",
    "iter_bits",
    "bit_count",
]


class TreeIndex:
    """Dense-id arrays, interval labels and inverted indexes for a tree.

    The index is immutable and derived purely from the tree; build one
    with :func:`index_for` to get per-tree caching for free.
    """

    __slots__ = (
        "tree",
        "n",
        "node_of",
        "id_of",
        "parent",
        "subtree_end",
        "post_of",
        "depth",
        "child_start",
        "child_ids",
        "children_mask",
        "next_sibling",
        "prev_sibling",
        "all_mask",
        "root_mask",
        "leaf_mask",
        "first_mask",
        "last_mask",
        "label_mask",
        "value_mask",
        "has_next_mask",
        "has_prev_mask",
        "prev_adjacent_mask",
        "move_groups",
        "moves",
    )

    def __init__(self, tree: Tree) -> None:
        self.tree = tree
        nodes = tree.nodes  # document (pre-)order
        n = len(nodes)
        self.n = n
        self.node_of: Tuple[NodeId, ...] = nodes
        self.id_of: Dict[NodeId, int] = {u: i for i, u in enumerate(nodes)}
        id_of = self.id_of

        parent: List[int] = [-1] * n
        subtree_end: List[int] = [0] * n
        depth: List[int] = [0] * n
        post_of: List[int] = [0] * n
        next_sibling: List[int] = [-1] * n
        prev_sibling: List[int] = [-1] * n
        child_start: List[int] = [0] * (n + 1)
        child_ids: List[int] = []
        children_mask: List[int] = [0] * n
        leaf_mask = 0
        first_mask = 0
        last_mask = 0

        for i, u in enumerate(nodes):
            kids = tree.children(u)
            child_start[i] = len(child_ids)
            if not kids:
                leaf_mask |= 1 << i
            mask = 0
            previous = -1
            for kid in kids:
                j = id_of[kid]
                parent[j] = i
                depth[j] = depth[i] + 1
                child_ids.append(j)
                mask |= 1 << j
                if previous >= 0:
                    next_sibling[previous] = j
                    prev_sibling[j] = previous
                previous = j
            children_mask[i] = mask
            if kids:
                first_mask |= 1 << id_of[kids[0]]
                last_mask |= 1 << id_of[kids[-1]]
        child_start[n] = len(child_ids)

        for i, u in enumerate(nodes):
            subtree_end[i] = tree.subtree_interval(u)[1]
        for rank, u in enumerate(tree.nodes_postorder):
            post_of[id_of[u]] = rank

        self.parent = parent
        self.subtree_end = subtree_end
        self.post_of = post_of
        self.depth = depth
        self.child_start = child_start
        self.child_ids = child_ids
        self.children_mask = children_mask
        self.next_sibling = next_sibling
        self.prev_sibling = prev_sibling
        self.all_mask = (1 << n) - 1
        self.root_mask = 1
        self.leaf_mask = leaf_mask
        self.first_mask = first_mask
        self.last_mask = last_mask

        label_mask: Dict[str, int] = {}
        for i, u in enumerate(nodes):
            label = tree.label(u)
            label_mask[label] = label_mask.get(label, 0) | (1 << i)
        self.label_mask = label_mask

        value_mask: Dict[str, Dict[MaybeValue, int]] = {}
        for attr in tree.attributes:
            table: Dict[MaybeValue, int] = {}
            for u, value in tree.attr_table(attr).items():
                i = id_of[u]
                table[value] = table.get(value, 0) | (1 << i)
            value_mask[attr] = table
        self.value_mask = value_mask

        has_next = 0
        has_prev = 0
        prev_adjacent = 0
        for i in range(n):
            if next_sibling[i] >= 0:
                has_next |= 1 << i
            if prev_sibling[i] >= 0:
                has_prev |= 1 << i
                if prev_sibling[i] == i - 1:
                    prev_adjacent |= 1 << i
        self.has_next_mask = has_next
        self.has_prev_mask = has_prev
        self.prev_adjacent_mask = prev_adjacent

        #: Move graphs, shift-decomposed: direction → ((shift, mask), …)
        #: where ``mask`` collects the sources whose target lies exactly
        #: ``shift`` ids away (negative = towards smaller ids).  A move
        #: applied to a node set is then one ``(bits & mask) << shift``
        #: per distinct shift — no per-node work at all.
        self.move_groups = {
            "down": ((1, self.all_mask & ~leaf_mask),),
            "up": _shift_groups(
                (i, parent[i]) for i in range(1, n)
            ),
            "right": _shift_groups(
                (i, next_sibling[i]) for i in range(n) if next_sibling[i] >= 0
            ),
            "left": _shift_groups(
                (i, prev_sibling[i]) for i in range(n) if prev_sibling[i] >= 0
            ),
        }

        #: Move-graph dispatch: atom direction → set-at-a-time image.
        self.moves = {
            "up": self.up_mask,
            "down": self.down_mask,
            "left": self.left_mask,
            "right": self.right_mask,
        }

    # -- O(1) structure tests --------------------------------------------------

    def descendant(self, u: int, v: int) -> bool:
        """``u ≺ v`` by interval containment — O(1), no tuple prefixes."""
        return u < v < self.subtree_end[u]

    def children_of(self, u: int) -> List[int]:
        """The CSR children slice of ``u`` (dense ids, sibling order)."""
        return self.child_ids[self.child_start[u] : self.child_start[u + 1]]

    def subtree_mask(self, u: int) -> int:
        """Bitset of the *proper* descendants of ``u`` (a range mask)."""
        return (1 << self.subtree_end[u]) - (1 << (u + 1))

    def descendants_mask(self, sources: int) -> int:
        """Bitset of all proper descendants of any node in ``sources``.

        Overlapping subtrees are merged into maximal id intervals first,
        so the result is built from O(#disjoint subtrees) big-int
        operations — the whole tree collapses to a single range.
        """
        out = 0
        bits = sources
        while bits:
            low = bits & -bits
            end = self.subtree_end[low.bit_length() - 1]
            out |= (1 << end) - (low << 1)
            bits &= -1 << end  # drop every source the interval swallowed
        return out

    def children_of_mask(self, sources: int) -> int:
        """Bitset of all children of any node in ``sources``."""
        out = 0
        children_mask = self.children_mask
        for u in iter_bits(sources):
            out |= children_mask[u]
        return out

    # -- move graphs (set-at-a-time walking atoms) -----------------------------

    def _move(self, direction: str, sources: int) -> int:
        return apply_shift_groups(self.move_groups[direction], sources)

    def down_mask(self, sources: int) -> int:
        """Image of ``sources`` under the *first-child* move — one
        shift, since preorder puts the first child of ``u`` at
        ``u + 1``."""
        return (sources & ~self.leaf_mask) << 1

    def up_mask(self, sources: int) -> int:
        """Image of ``sources`` under the *parent* move."""
        return self._move("up", sources)

    def right_mask(self, sources: int) -> int:
        """Image of ``sources`` under the *right-sibling* move."""
        return self._move("right", sources)

    def left_mask(self, sources: int) -> int:
        """Image of ``sources`` under the *left-sibling* move."""
        return self._move("left", sources)

    def labelled(self, label: str) -> int:
        """Bitset of σ-labelled nodes (0 if σ never occurs)."""
        return self.label_mask.get(label, 0)

    def valued(self, attr: str, value: MaybeValue) -> int:
        """Bitset of nodes with ``val_attr = value`` (0 if absent)."""
        return self.value_mask.get(attr, {}).get(value, 0)

    def to_nodes(self, bits: int) -> Tuple[NodeId, ...]:
        """The node addresses of a bitset, in document order."""
        node_of = self.node_of
        return tuple(node_of[i] for i in iter_bits(bits))

    def __reduce__(self):
        # Every derived structure is a pure function of the tree, so
        # only the tree travels; rebuilding through index_for on load
        # lands the index in the receiving process's cache — exactly
        # what a corpus worker wants.
        return (index_for, (self.tree,))

    def __repr__(self) -> str:
        return f"TreeIndex({self.n} nodes, Σ={sorted(self.label_mask)})"


# ---------------------------------------------------------------------------
# binary serialization (index sidecars)
# ---------------------------------------------------------------------------
#
# The wire form of a TreeIndex: every derived structure as packed
# little-endian arrays and big-int byte strings — *no* pickled Python
# object graphs, so loading one is ``array.frombytes`` plus
# ``int.from_bytes``, not a tree walk.  Layout (all lengths in bytes):
#
#     [ magic "RXI1" | version u16 | n u32 | child_count u32 ]
#     [ 6 node-set bitsets       ]  leaf, first, last, has_next,
#                                   has_prev, prev_adjacent
#     [ label index              ]  count, then (label, bitset) pairs
#     [ move groups              ]  up, right, left: count, then
#                                   (shift i32, bitset) pairs
#     [ navigation arrays (i32)  ]  parent, subtree_end, post_of,
#                                   depth, next_sibling, prev_sibling,
#                                   child_start[n+1], child_ids
#     [ value index              ]  per attribute: name, then tagged
#                                   (value, bitset) pairs
#
# Everything a :class:`StackedShard` lane consumes sits *before* the
# navigation arrays, so :class:`PackedIndex` parses a prefix and defers
# the rest; ``down`` move groups, ``all_mask``/``root_mask`` and
# ``children_mask`` are cheap derivations and are not stored.

INDEX_BLOB_MAGIC = b"RXI1"
INDEX_BLOB_VERSION = 1

_BLOB_HEADER = struct.Struct("<4sHII")
_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_NATIVE_LE = sys.byteorder == "little"

#: Stored value tags: a data value is a str, an int, or ⊥.
_VALUE_STR, _VALUE_INT, _VALUE_BOTTOM = 0, 1, 2


class IndexFormatError(ValueError):
    """The bytes are not a serialized TreeIndex this build can read
    (bad magic, unknown version, torn blob, or a tree-size mismatch)."""


def _pack_bits(out: List[bytes], bits: int) -> None:
    blob = bits.to_bytes((bits.bit_length() + 7) // 8, "little")
    out.append(_U32.pack(len(blob)))
    out.append(blob)


def _pack_text(out: List[bytes], text: str) -> None:
    blob = text.encode("utf-8")
    out.append(_U32.pack(len(blob)))
    out.append(blob)


def _pack_array(out: List[bytes], values: List[int]) -> None:
    packed = array("i", values)
    if not _NATIVE_LE:  # pragma: no cover - big-endian platforms
        packed.byteswap()
    out.append(packed.tobytes())


def _pack_groups(out: List[bytes], groups: Tuple[Tuple[int, int], ...]) -> None:
    out.append(_U32.pack(len(groups)))
    for shift, mask in groups:
        out.append(_I32.pack(shift))
        _pack_bits(out, mask)


def serialize_index(index: TreeIndex) -> bytes:
    """``index`` as a compact, versioned byte string (see the layout
    note above).  :func:`deserialize_index` restores a byte-identical
    index; :class:`PackedIndex` reads just the stacked-shard surface."""
    out: List[bytes] = [
        _BLOB_HEADER.pack(
            INDEX_BLOB_MAGIC, INDEX_BLOB_VERSION, index.n,
            len(index.child_ids),
        )
    ]
    for bits in (
        index.leaf_mask, index.first_mask, index.last_mask,
        index.has_next_mask, index.has_prev_mask, index.prev_adjacent_mask,
    ):
        _pack_bits(out, bits)
    out.append(_U32.pack(len(index.label_mask)))
    for label in sorted(index.label_mask):
        _pack_text(out, label)
        _pack_bits(out, index.label_mask[label])
    for direction in ("up", "right", "left"):
        _pack_groups(out, index.move_groups[direction])
    for values in (
        index.parent, index.subtree_end, index.post_of, index.depth,
        index.next_sibling, index.prev_sibling, index.child_start,
        index.child_ids,
    ):
        _pack_array(out, values)
    out.append(_U32.pack(len(index.value_mask)))
    for attr in sorted(index.value_mask):
        _pack_text(out, attr)
        table = index.value_mask[attr]
        out.append(_U32.pack(len(table)))
        for value in sorted(table, key=repr):
            if value is BOTTOM:
                out.append(bytes((_VALUE_BOTTOM,)))
            elif isinstance(value, str):
                out.append(bytes((_VALUE_STR,)))
                _pack_text(out, value)
            else:
                out.append(bytes((_VALUE_INT,)))
                blob = int(value).to_bytes(
                    value.bit_length() // 8 + 1, "little", signed=True
                )
                out.append(_U32.pack(len(blob)))
                out.append(blob)
            _pack_bits(out, table[value])
    return b"".join(out)


class _Reader:
    """A bounds-checked cursor over one serialized index."""

    __slots__ = ("data", "pos")

    def __init__(self, data, pos: int = 0):
        self.data = data
        self.pos = pos

    def _take(self, count: int):
        begin = self.pos
        end = begin + count
        if end > len(self.data):
            raise IndexFormatError("serialized index is truncated")
        self.pos = end
        return self.data[begin:end]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def i32(self) -> int:
        return _I32.unpack(self._take(4))[0]

    def bits(self) -> int:
        return int.from_bytes(self._take(self.u32()), "little")

    def text(self) -> str:
        return bytes(self._take(self.u32())).decode("utf-8")

    def ints(self, count: int) -> List[int]:
        packed = array("i")
        packed.frombytes(self._take(4 * count))
        if not _NATIVE_LE:  # pragma: no cover - big-endian platforms
            packed.byteswap()
        return packed.tolist()

    def groups(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(
            (self.i32(), self.bits()) for _ in range(self.u32())
        )


def _read_header(reader: _Reader) -> Tuple[int, int]:
    try:
        magic, version, n, child_count = _BLOB_HEADER.unpack(
            reader._take(_BLOB_HEADER.size)
        )
    except (struct.error, IndexFormatError):
        raise IndexFormatError("serialized index header is torn") from None
    if magic != INDEX_BLOB_MAGIC:
        raise IndexFormatError("bad serialized-index magic")
    if version != INDEX_BLOB_VERSION:
        raise IndexFormatError(
            f"serialized index is format v{version}; "
            f"this build reads v{INDEX_BLOB_VERSION}"
        )
    return n, child_count


def _children_masks(
    n: int, child_start: List[int], child_ids: List[int]
) -> List[int]:
    masks = [0] * n
    for i in range(n):
        mask = 0
        for pos in range(child_start[i], child_start[i + 1]):
            mask |= 1 << child_ids[pos]
        masks[i] = mask
    return masks


def deserialize_index(tree: Tree, data: bytes) -> TreeIndex:
    """The :class:`TreeIndex` of ``tree`` restored from
    :func:`serialize_index` bytes — byte-identical (every derived
    structure) to ``TreeIndex(tree)``, built without walking the tree.

    Raises :class:`IndexFormatError` on torn or mismatched bytes (the
    sidecar fallback-to-rebuild trigger), including a blob whose node
    count disagrees with ``tree``."""
    try:
        reader = _Reader(memoryview(data) if isinstance(data, bytes) else data)
        n, child_count = _read_header(reader)
        if n != len(tree.nodes):
            raise IndexFormatError(
                f"serialized index holds {n} nodes; "
                f"the tree has {len(tree.nodes)}"
            )
        index = TreeIndex.__new__(TreeIndex)
        index.tree = tree
        index.n = n
        index.node_of = tree.nodes
        index.id_of = {u: i for i, u in enumerate(tree.nodes)}
        index.all_mask = (1 << n) - 1
        index.root_mask = 1
        index.leaf_mask = reader.bits()
        index.first_mask = reader.bits()
        index.last_mask = reader.bits()
        index.has_next_mask = reader.bits()
        index.has_prev_mask = reader.bits()
        index.prev_adjacent_mask = reader.bits()
        index.label_mask = {
            reader.text(): reader.bits() for _ in range(reader.u32())
        }
        up = reader.groups()
        right = reader.groups()
        left = reader.groups()
        index.parent = reader.ints(n)
        index.subtree_end = reader.ints(n)
        index.post_of = reader.ints(n)
        index.depth = reader.ints(n)
        index.next_sibling = reader.ints(n)
        index.prev_sibling = reader.ints(n)
        index.child_start = reader.ints(n + 1)
        index.child_ids = reader.ints(child_count)
        value_mask: Dict[str, Dict[MaybeValue, int]] = {}
        for _ in range(reader.u32()):
            attr = reader.text()
            table: Dict[MaybeValue, int] = {}
            for _ in range(reader.u32()):
                tag = reader._take(1)[0]
                if tag == _VALUE_BOTTOM:
                    value: MaybeValue = BOTTOM
                elif tag == _VALUE_STR:
                    value = reader.text()
                elif tag == _VALUE_INT:
                    value = int.from_bytes(
                        reader._take(reader.u32()), "little", signed=True
                    )
                else:
                    raise IndexFormatError(f"bad value tag {tag}")
                table[value] = reader.bits()
            value_mask[attr] = table
        index.value_mask = value_mask
    except (struct.error, ValueError, IndexError) as exc:
        if isinstance(exc, IndexFormatError):
            raise
        raise IndexFormatError(
            f"serialized index does not parse ({type(exc).__name__})"
        ) from exc
    index.children_mask = _children_masks(
        n, index.child_start, index.child_ids
    )
    index.move_groups = {
        "down": ((1, index.all_mask & ~index.leaf_mask),),
        "up": up,
        "right": right,
        "left": left,
    }
    index.moves = {
        "up": index.up_mask,
        "down": index.down_mask,
        "left": index.left_mask,
        "right": index.right_mask,
    }
    return index


class PackedIndex:
    """A tree-free stand-in for one :class:`TreeIndex`, parsed straight
    from :func:`serialize_index` bytes.

    It exposes exactly the lane surface the stacked-shard executor
    consumes — ``n``, the structural masks, ``move_groups``,
    :meth:`labelled` — plus :meth:`to_nodes` for select-mode results,
    whose node addresses are reconstructed lazily from the navigation
    arrays (parent/children order determine every Gorn address).  The
    point: a worker can assemble a :class:`~repro.engine.ir.StackedShard`
    from sidecar bytes without unpickling a single tree."""

    __slots__ = (
        "n", "all_mask", "root_mask", "leaf_mask", "first_mask",
        "last_mask", "label_mask", "move_groups",
        "_data", "_arrays_at", "_node_of",
    )

    def __init__(self, data) -> None:
        # Parsed flat with ``unpack_from`` and local cursors rather
        # than through :class:`_Reader`: a cold window parses hundreds
        # of blobs before the first IR op, and the per-field method
        # dispatch was the dominant cost of the whole packed path.
        view = memoryview(data) if isinstance(data, bytes) else data
        total = len(view)
        u32_at = _U32.unpack_from
        i32_at = _I32.unpack_from
        from_bytes = int.from_bytes
        try:
            magic, version, n, _ = _BLOB_HEADER.unpack_from(view, 0)
            if magic != INDEX_BLOB_MAGIC:
                raise IndexFormatError("bad serialized-index magic")
            if version != INDEX_BLOB_VERSION:
                raise IndexFormatError(
                    f"serialized index is format v{version}; "
                    f"this build reads v{INDEX_BLOB_VERSION}"
                )
            self.n = n
            self.all_mask = (1 << n) - 1
            self.root_mask = 1 if n else 0
            pos = _BLOB_HEADER.size
            masks = []
            for _ in range(6):
                (size,) = u32_at(view, pos)
                pos += 4
                end = pos + size
                if end > total:
                    raise IndexFormatError("serialized index is truncated")
                masks.append(from_bytes(view[pos:end], "little"))
                pos = end
            self.leaf_mask = masks[0]
            self.first_mask = masks[1]
            self.last_mask = masks[2]
            # masks[3:] — has_next/has_prev/prev_adjacent — are not
            # part of the shard surface and stay unbound.
            (count,) = u32_at(view, pos)
            pos += 4
            if count > total:
                raise IndexFormatError("serialized index is truncated")
            label_mask = {}
            for _ in range(count):
                (size,) = u32_at(view, pos)
                pos += 4
                end = pos + size
                if end > total:
                    raise IndexFormatError("serialized index is truncated")
                label = str(view[pos:end], "utf-8")
                pos = end
                (size,) = u32_at(view, pos)
                pos += 4
                end = pos + size
                if end > total:
                    raise IndexFormatError("serialized index is truncated")
                label_mask[label] = from_bytes(view[pos:end], "little")
                pos = end
            self.label_mask = label_mask
            moves = []
            for _ in range(3):
                (count,) = u32_at(view, pos)
                pos += 4
                if count > total:
                    raise IndexFormatError("serialized index is truncated")
                entries = []
                for _ in range(count):
                    (shift,) = i32_at(view, pos)
                    (size,) = u32_at(view, pos + 4)
                    pos += 8
                    end = pos + size
                    if end > total:
                        raise IndexFormatError(
                            "serialized index is truncated"
                        )
                    entries.append((shift, from_bytes(view[pos:end], "little")))
                    pos = end
                moves.append(tuple(entries))
            self.move_groups = {
                "down": ((1, self.all_mask & ~self.leaf_mask),),
                "up": moves[0],
                "right": moves[1],
                "left": moves[2],
            }
        except (struct.error, ValueError, IndexError) as exc:
            if isinstance(exc, IndexFormatError):
                raise
            raise IndexFormatError(
                f"serialized index does not parse ({type(exc).__name__})"
            ) from exc
        self._data = view
        self._arrays_at = pos
        self._node_of: Optional[List[NodeId]] = None

    def labelled(self, label: str) -> int:
        """Bitset of σ-labelled nodes (0 if σ never occurs)."""
        return self.label_mask.get(label, 0)

    def _addresses(self) -> List[NodeId]:
        if self._node_of is None:
            n = self.n
            data = self._data
            # parent…prev_sibling (six n-wide arrays) are unused here:
            # children order already encodes every Gorn address.
            begin = self._arrays_at + 4 * 6 * n
            split = begin + 4 * (n + 1)
            if split > len(data):
                raise IndexFormatError("serialized index is truncated")
            child_start = array("i")
            child_start.frombytes(data[begin:split])
            if not _NATIVE_LE:  # pragma: no cover - big-endian platforms
                child_start.byteswap()
            end = split + 4 * child_start[n]
            if end > len(data):
                raise IndexFormatError("serialized index is truncated")
            child_ids = array("i")
            child_ids.frombytes(data[split:end])
            if not _NATIVE_LE:  # pragma: no cover - big-endian platforms
                child_ids.byteswap()
            node_of: List[NodeId] = [()] * n
            for i in range(n):
                base = node_of[i]
                start = child_start[i]
                for k in range(start, child_start[i + 1]):
                    node_of[child_ids[k]] = base + (k - start,)
            self._node_of = node_of
        return self._node_of

    def to_nodes(self, bits: int) -> Tuple[NodeId, ...]:
        """The node addresses of a bitset, in document order."""
        node_of = self._addresses()
        return tuple(node_of[i] for i in iter_bits(bits))

    def __repr__(self) -> str:
        return f"PackedIndex({self.n} nodes, Σ={sorted(self.label_mask)})"


#: Bounded cache of indexes keyed on tree object identity.  Entries pin
#: their tree, so an id can never be recycled while its entry is live.
_INDEX_CACHE_SIZE = 64
_INDEX_CACHE: KeyedLRU = KeyedLRU(_INDEX_CACHE_SIZE, name="tree-indexes")


def index_for(tree: Tree) -> TreeIndex:
    """The (cached) :class:`TreeIndex` of ``tree``.

    Trees are immutable, so one index per tree object is always valid;
    repeated queries against the same document — the facade's workload —
    pay for indexing once.
    """
    key = id(tree)
    hit = _INDEX_CACHE.get(key)
    if hit is not None and hit[0] is tree:
        return hit[1]
    index = TreeIndex(tree)
    _INDEX_CACHE.put(key, (tree, index))
    return index


def adopt_index(tree: Tree, index: TreeIndex) -> None:
    """Re-seat a pinned index in the cache without rebuilding it.

    A :class:`~repro.corpus.TreeCorpus` holds more trees than the LRU
    bound; re-adopting each tree's pinned index as the batch loop
    reaches it keeps every engine's internal ``index_for`` lookups hits
    without growing the cache."""
    if index.tree is not tree:
        raise ValueError("index does not belong to this tree")
    _INDEX_CACHE.put(id(tree), (tree, index))


def index_cache_clear() -> None:
    """Drop every cached index (cold-start benchmarks, tests)."""
    _INDEX_CACHE.cache_clear()


# ---------------------------------------------------------------------------
# incremental repair (single-subtree splices)
# ---------------------------------------------------------------------------

#: Every structure :func:`repair_index` must reproduce byte-identically
#: (``moves`` holds bound methods and is derived from ``move_groups``;
#: ``tree`` is the input, not a derived structure).
_DERIVED_SLOTS = tuple(
    name for name in TreeIndex.__slots__ if name not in ("tree", "moves")
)

#: Past this fraction of changed nodes a splice repair stops paying:
#: the spliced region dominates and a fresh build is both simpler and
#: as fast, so :func:`repair_index` falls back to one.
REPAIR_THRESHOLD = 0.25


def index_structures(index: TreeIndex) -> Dict[str, object]:
    """All derived structures of ``index`` by slot name — the byte-
    identity oracle the repair test battery compares against a fresh
    :class:`TreeIndex` build."""
    return {name: getattr(index, name) for name in _DERIVED_SLOTS}


def repair_index(
    old: TreeIndex,
    new_tree: Tree,
    site: NodeId,
    threshold: float = REPAIR_THRESHOLD,
) -> TreeIndex:
    """Patch ``old`` into the index of ``new_tree`` after a single-
    subtree splice at ``site`` (``new_tree`` must come from
    ``old.tree.replace_subtree(site, …)`` — every node outside the
    subtree keeps its address).

    Preorder ids make the splice *local in id space*: the edit replaces
    the contiguous id interval ``[site, old_end)`` with ``[site,
    new_end)`` and shifts everything after it by a constant ``delta``.
    Navigation arrays are patched with three slice operations each,
    every node-set bitset with one three-way big-int splice (low bits
    kept, middle rebuilt, high bits shifted), and only the spliced
    subtree is re-walked.  Past ``threshold`` (fraction of nodes
    touched) the repair degenerates into — and deliberately falls back
    to — a full rebuild.

    The result is byte-identical (every derived structure) to
    ``TreeIndex(new_tree)``.
    """
    tree = old.tree
    n0 = old.n
    nodes = new_tree.nodes
    n1 = len(nodes)
    u = old.id_of.get(site)
    if u is None:
        raise ValueError(f"splice site {site!r} is not in the old tree")
    old_end = old.subtree_end[u]
    try:
        u1, new_end = new_tree.subtree_interval(site)
    except Exception:
        raise ValueError(
            f"splice site {site!r} is not in the new tree"
        ) from None
    if (
        u1 != u
        or n1 - new_end != n0 - old_end
        or nodes[:u] != old.node_of[:u]
        or nodes[new_end:] != old.node_of[old_end:]
    ):
        raise ValueError(
            "new tree is not a single-subtree splice of the old one "
            f"at {site!r}"
        )
    if new_tree.attributes != tree.attributes:
        return TreeIndex(new_tree)  # the whole value index moved
    old_size = old_end - u
    new_size = new_end - u
    delta = new_size - old_size
    if max(old_size, new_size) > threshold * max(n0, n1):
        return TreeIndex(new_tree)  # damage threshold: rebuild

    # -- re-walk the spliced subtree only ------------------------------
    new_children = new_tree._children
    preindex = new_tree._preorder_index
    parent_mid = [-1] * new_size          # absolute ids, parent_mid[0] ≡ u
    depth_mid = [0] * new_size
    next_mid = [-1] * new_size
    prev_mid = [-1] * new_size
    child_start_mid = [0] * new_size
    child_ids_mid: List[int] = []
    children_mask_mid = [0] * new_size
    leaf_bits = 0
    first_bits = 0
    last_bits = 0
    has_next_bits = 0
    has_prev_bits = 0
    prev_adjacent_bits = 0
    depth_mid[0] = old.depth[u]
    parent_mid[0] = old.parent[u]  # always below the site, id unchanged
    for i in range(u, new_end):
        k = i - u
        kids = new_children[nodes[i]]
        child_start_mid[k] = len(child_ids_mid)
        if not kids:
            leaf_bits |= 1 << i
        mask = 0
        previous = -1
        for kid in kids:
            j = preindex[kid]
            parent_mid[j - u] = i
            depth_mid[j - u] = depth_mid[k] + 1
            child_ids_mid.append(j)
            mask |= 1 << j
            if previous >= 0:
                next_mid[previous - u] = j
                prev_mid[j - u] = previous
                has_next_bits |= 1 << previous
                has_prev_bits |= 1 << j
                if previous == j - 1:
                    prev_adjacent_bits |= 1 << j
            previous = j
        children_mask_mid[k] = mask
        if kids:
            first_bits |= 1 << preindex[kids[0]]
            last_bits |= 1 << preindex[kids[-1]]

    # ``site`` itself keeps its sibling context: its first/last/has-
    # sibling bits come from the old index, not the subtree walk.
    u_bit = 1 << u
    first_bits |= old.first_mask & u_bit
    last_bits |= old.last_mask & u_bit
    has_next_bits |= old.has_next_mask & u_bit
    has_prev_bits |= old.has_prev_mask & u_bit
    prev_adjacent_bits |= old.prev_adjacent_mask & u_bit

    # -- postorder ranks of the new subtree (iterative DFS) ------------
    r0 = old.post_of[u] - (old_size - 1)
    r_hi = r0 + old_size
    post_mid = [0] * new_size
    rank = r0
    stack = [(u, 0)]
    while stack:
        node, cursor = stack[-1]
        k = node - u
        start = child_start_mid[k]
        stop = (
            child_start_mid[k + 1]
            if k + 1 < new_size
            else len(child_ids_mid)
        )
        if start + cursor < stop:
            stack[-1] = (node, cursor + 1)
            stack.append((child_ids_mid[start + cursor], 0))
        else:
            stack.pop()
            post_mid[k] = rank
            rank += 1

    # -- splice the navigation arrays ----------------------------------
    #
    # Suffix ids and any reference to them shift by ``delta``; ids
    # below the site — including references *to* the site, whose id is
    # unchanged — stay put.  No old id lands inside (u, old_end), and
    # crucially the only *prefix* nodes that can reference a suffix id
    # (as child, sibling, subtree end or postorder rank) are the proper
    # ancestors of the site — a contiguous id interval [j, e) with
    # e > old_end and j < u contains u, so j is an ancestor.  Prefix
    # arrays are therefore plain copies patched along the ancestor
    # chain; only the suffix pays a per-element pass.
    repaired = TreeIndex.__new__(TreeIndex)
    repaired.tree = new_tree
    repaired.n = n1
    repaired.node_of = nodes
    id_of = dict(old.id_of)  # copies without re-hashing the keys
    for addr in old.node_of[u:old_end]:
        del id_of[addr]
    for i in range(u, new_end):
        id_of[nodes[i]] = i
    if delta:
        for i in range(new_end, n1):
            id_of[nodes[i]] = i
    repaired.id_of = id_of

    ancestors: List[int] = []
    a = old.parent[u]
    while a >= 0:
        ancestors.append(a)
        a = old.parent[a]

    if delta == 0:
        parent_suffix = old.parent[old_end:]
        next_suffix = old.next_sibling[old_end:]
        prev_suffix = old.prev_sibling[old_end:]
        end_suffix = old.subtree_end[old_end:]
        post_suffix = old.post_of[old_end:]
        cs_suffix = old.child_start[old_end:]
        ci_suffix = old.child_ids[old.child_start[old_end]:]
    else:
        parent_suffix = [
            p + delta if p >= old_end else p for p in old.parent[old_end:]
        ]
        next_suffix = [
            v + delta if v >= old_end else v
            for v in old.next_sibling[old_end:]
        ]
        prev_suffix = [
            v + delta if v >= old_end else v
            for v in old.prev_sibling[old_end:]
        ]
        end_suffix = [e + delta for e in old.subtree_end[old_end:]]
        post_suffix = [r + delta for r in old.post_of[old_end:]]
        cs_suffix = [s + delta for s in old.child_start[old_end:]]
        ci_suffix = [
            c + delta for c in old.child_ids[old.child_start[old_end]:]
        ]

    repaired.parent = old.parent[:u] + parent_mid + parent_suffix
    repaired.depth = old.depth[:u] + depth_mid + old.depth[old_end:]
    end_prefix = old.subtree_end[:u]
    next_prefix = old.next_sibling[:u]
    post_prefix = old.post_of[:u]
    if delta:
        for a in ancestors:
            end_prefix[a] += delta  # the splice stretches every ancestor
            post_prefix[a] += delta  # ancestors finish after the subtree
            v = next_prefix[a]
            if v >= old_end:
                next_prefix[a] = v + delta
    repaired.subtree_end = (
        end_prefix
        + [new_tree._subtree_end[nodes[i]] for i in range(u, new_end)]
        + end_suffix
    )
    repaired.post_of = post_prefix + post_mid + post_suffix
    repaired.next_sibling = next_prefix + next_mid + next_suffix
    repaired.next_sibling[u] = (
        old.next_sibling[u] + delta
        if old.next_sibling[u] >= old_end
        else old.next_sibling[u]
    )
    repaired.prev_sibling = (
        old.prev_sibling[:u] + prev_mid + prev_suffix
    )
    repaired.prev_sibling[u] = old.prev_sibling[u]  # always below the site

    edge_base = old.child_start[u]
    repaired.child_start = (
        old.child_start[:u]
        + [edge_base + s for s in child_start_mid]
        + cs_suffix
    )
    ci_prefix = old.child_ids[:edge_base]
    if delta:
        child_start = old.child_start
        for a in ancestors:
            for pos in range(child_start[a], child_start[a + 1]):
                if ci_prefix[pos] >= old_end:
                    ci_prefix[pos] += delta
    repaired.child_ids = ci_prefix + child_ids_mid + ci_suffix

    cm_prefix = old.children_mask[:u]
    if delta == 0:
        cm_suffix = old.children_mask[old_end:]
    else:
        low_cut = (1 << old_end) - 1  # keeps bits ≤ u; (u, old_end) unset
        for a in ancestors:
            m = cm_prefix[a]
            high = m >> old_end
            if high:
                cm_prefix[a] = (m & low_cut) | (high << new_end)
        # suffix masks only hold suffix bits: shift wholesale (leaves
        # stay 0 without paying a big-int shift)
        if delta > 0:
            cm_suffix = [
                m << delta if m else 0 for m in old.children_mask[old_end:]
            ]
        else:
            shrink = -delta
            cm_suffix = [
                m >> shrink if m else 0 for m in old.children_mask[old_end:]
            ]
    repaired.children_mask = cm_prefix + children_mask_mid + cm_suffix

    # -- three-way big-int splice for every node-set bitset ------------
    low_mask = (1 << u) - 1

    def _splice_bits(bits: int, middle: int) -> int:
        return (bits & low_mask) | ((bits >> old_end) << new_end) | middle

    repaired.all_mask = (1 << n1) - 1
    repaired.root_mask = 1
    repaired.leaf_mask = _splice_bits(old.leaf_mask, leaf_bits)
    repaired.first_mask = _splice_bits(
        old.first_mask & ~u_bit, first_bits
    )
    repaired.last_mask = _splice_bits(old.last_mask & ~u_bit, last_bits)
    repaired.has_next_mask = _splice_bits(
        old.has_next_mask & ~u_bit, has_next_bits
    )
    repaired.has_prev_mask = _splice_bits(
        old.has_prev_mask & ~u_bit, has_prev_bits
    )
    prev_adjacent = _splice_bits(
        old.prev_adjacent_mask & ~u_bit, prev_adjacent_bits
    )
    if new_end < n1:
        # The one adjacency the splice can flip: the node right after
        # the subtree is prev-adjacent iff its left sibling is now the
        # last spliced node — which depends on the *new* subtree size.
        boundary = 1 << new_end
        if repaired.prev_sibling[new_end] == new_end - 1:
            prev_adjacent |= boundary
        else:
            prev_adjacent &= ~boundary
    repaired.prev_adjacent_mask = prev_adjacent

    label_bits: Dict[str, int] = {}
    new_labels = new_tree._labels
    for i in range(u, new_end):
        label = new_labels[nodes[i]]
        label_bits[label] = label_bits.get(label, 0) | (1 << i)
    label_mask: Dict[str, int] = {}
    for label, bits in old.label_mask.items():
        spliced = _splice_bits(bits, label_bits.pop(label, 0))
        if spliced:
            label_mask[label] = spliced
    label_mask.update(label_bits)  # labels new with the splice
    repaired.label_mask = label_mask

    value_mask: Dict[str, Dict[MaybeValue, int]] = {}
    for attr in new_tree.attributes:
        new_table = new_tree._attrs[attr]
        value_bits: Dict[MaybeValue, int] = {}
        for i in range(u, new_end):
            value = new_table[nodes[i]]
            value_bits[value] = value_bits.get(value, 0) | (1 << i)
        table: Dict[MaybeValue, int] = {}
        for value, bits in old.value_mask.get(attr, {}).items():
            spliced = _splice_bits(bits, value_bits.pop(value, 0))
            if spliced:
                table[value] = spliced
        table.update(value_bits)
        value_mask[attr] = table
    repaired.value_mask = value_mask

    # -- splice the shift-decomposed move groups -----------------------
    #
    # Rebuilding ``_shift_groups`` from scratch costs Θ(n²/w) in big-int
    # bit sets; splicing the old groups costs Θ(groups·n/w).  Per group
    # (s, mask): bits ≤ u keep their id; their destination crosses the
    # splice only when it is ≥ old_end (then the shift becomes s+delta
    # while the source bit stays).  Interior bits (u, old_end) are
    # dropped and rebuilt from the middle arrays.  Suffix bits shift by
    # delta; their destination either shifts too (shift unchanged) or
    # sits at ≤ u (shift becomes s−delta).  Which case applies is a pure
    # id-range test because no edge endpoint lands strictly inside the
    # spliced interval.
    low_u1 = u_bit | (u_bit - 1)  # bits 0..u inclusive

    def _spliced_groups(groups: Tuple[Tuple[int, int], ...]) -> Dict[int, int]:
        """The uniform part of the group splice: keep sources ≤ u,
        shift sources ≥ old_end by delta, drop interior bits.  This is
        exact for every edge whose endpoints sit on the same side of
        the splice — the sparse cross-splice edges are patched after."""
        out: Dict[int, int] = {}
        for s, mask in groups:
            high = mask >> old_end
            m = (mask & low_u1) | (high << new_end) if high else mask & low_u1
            if m:
                out[s] = m
        return out

    def _rehome(groups: Dict[int, int], s: int, s2: int, bit: int) -> None:
        """Move one source bit from shift group s to shift group s2."""
        rest = groups[s] ^ bit
        if rest:
            groups[s] = rest
        else:
            del groups[s]
        groups[s2] = groups.get(s2, 0) | bit

    up_groups = _spliced_groups(old.move_groups["up"])
    right_groups = _spliced_groups(old.move_groups["right"])
    left_groups = _spliced_groups(old.move_groups["left"])
    if delta:
        # The only up-edges crossing the splice run from an ancestor's
        # child past the subtree back to the ancestor: the source
        # shifted but the target did not, so the shift gains -delta.
        for a in ancestors:
            for pos in range(old.child_start[a], old.child_start[a + 1]):
                c = old.child_ids[pos]
                if c >= old_end:
                    _rehome(up_groups, a - c, a - c - delta, 1 << (c + delta))
        # Sibling links cross the splice only where a node on the
        # site's ancestor path (or the site itself) has its next
        # sibling on the far side of the subtree — one link per level.
        for x in (u, *ancestors):
            ns = old.next_sibling[x]
            if ns >= old_end:
                _rehome(right_groups, ns - x, ns - x + delta, u_bit if x == u else 1 << x)
                _rehome(left_groups, x - ns, x - ns - delta, 1 << (ns + delta))

    for i in range(u + 1, new_end):
        s = parent_mid[i - u] - i
        up_groups[s] = up_groups.get(s, 0) | (1 << i)
        dst = next_mid[i - u]
        if dst >= 0:
            s = dst - i
            right_groups[s] = right_groups.get(s, 0) | (1 << i)
        dst = prev_mid[i - u]
        if dst >= 0:
            s = dst - i
            left_groups[s] = left_groups.get(s, 0) | (1 << i)

    repaired.move_groups = {
        "down": ((1, repaired.all_mask & ~repaired.leaf_mask),),
        "up": tuple(sorted(up_groups.items())),
        "right": tuple(sorted(right_groups.items())),
        "left": tuple(sorted(left_groups.items())),
    }
    repaired.moves = {
        "up": repaired.up_mask,
        "down": repaired.down_mask,
        "left": repaired.left_mask,
        "right": repaired.right_mask,
    }
    return repaired
