"""The plan IR: one typed register program every dialect lowers into.

The XPath compiler, the FO(∃*) compiler and the caterpillar compiler
each used to bottom out in their own closures over
:class:`~repro.engine.index.TreeIndex` bitsets.  This module gives them
a single meeting point: a small *register program* of typed node-set
ops —

========================  ==================================================
``LabelScan(σ)``          the inverted-index bitset of σ-labelled nodes
``ConstScan(kind)``       all/none/root/leaf/first/last structural masks
``Shift(r, d)``           one walking move (up/down/left/right), set-at-a-time
``Children(r)``           all children of the set in ``r``
``Descendants(r)``        all proper descendants of the set in ``r``
``ClosurePlus(r, d)``     one-or-more iterations of a move (d⁺)
``Union(rs)`` / ``Join(rs)``  set union / intersection (the relational join
                          of unary relations; ``Join`` children are ordered
                          by estimated cardinality, cheapest first)
``Complement(r)``         domain complement
``Closure(r, …)``         a compiled caterpillar NFA saturated from ``r``
``AnyLane(r)``            non-empty → full domain (the projection that turns
                          "some witness exists" into a per-tree verdict)
========================  ==================================================

— plus two interpreters over the node-set kernel
(:mod:`repro.engine.nodeset`):

* :func:`evaluate_tree` binds a plan to one :class:`TreeIndex`;
* :func:`evaluate_shard` binds the *same* plan to a
  :class:`StackedShard` — every tree of a corpus chunk packed into its
  own power-of-two lane of one wide integer — so one pass over the op
  list answers the query for the whole shard at once.  ``AnyLane``
  becomes a SWAR broadcast, ``Descendants``/``Children`` become
  move-closure saturations (preorder puts every proper descendant in
  ``down · (down | right)*``, and every child in ``down · right*``),
  and every mask/shift/join acts on all lanes simultaneously.

Lowering is *partial*: :func:`lower_query` returns ``None`` for
constructs outside the IR (value atoms, quantifiers linking two
variables through more than one binary atom, shadowed selector
variables), and callers fall back to the dialect's own evaluator — the
fallback path the differential oracle keeps honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..caterpillar.ast import IS_FIRST, IS_LAST, IS_LEAF, IS_ROOT
from ..logic import tree_fo as F
from ..resilience.budget import current_context
from ..xpath.ast import (
    CHILD,
    NameTest,
    Path,
    SelfTest,
    Step,
    Union_,
)
from .index import TreeIndex
from .nodeset import (
    apply_shift_groups,
    broadcast_lanes,
    lane_width_for,
    reach,
    split_lanes,
    stack_groups,
    stack_masks,
)

__all__ = [
    "LabelScan",
    "ConstScan",
    "Shift",
    "Children",
    "Descendants",
    "ClosurePlus",
    "Union",
    "Join",
    "Complement",
    "Closure",
    "AnyLane",
    "Plan",
    "StackedShard",
    "evaluate_tree",
    "evaluate_shard",
    "lower_xpath",
    "lower_sentence",
    "lower_select",
    "lower_caterpillar",
    "lower_query",
]


# ---------------------------------------------------------------------------
# ops
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LabelScan:
    """Bitset of σ-labelled nodes (the inverted label index)."""

    name: str


@dataclass(frozen=True)
class ConstScan:
    """A structural mask: all, none, root, leaf, first or last."""

    kind: str


@dataclass(frozen=True)
class Shift:
    """One walking move applied to a whole node set."""

    src: int
    direction: str


@dataclass(frozen=True)
class Children:
    """All children of the nodes in ``src``."""

    src: int


@dataclass(frozen=True)
class Descendants:
    """All *proper* descendants of the nodes in ``src``."""

    src: int


@dataclass(frozen=True)
class ClosurePlus:
    """One-or-more iterations of a move: the image of ``d⁺``."""

    src: int
    direction: str


@dataclass(frozen=True)
class Union:
    """Set union of the source registers."""

    srcs: Tuple[int, ...]


@dataclass(frozen=True)
class Join:
    """Set intersection; children ordered cheapest-first at lowering."""

    srcs: Tuple[int, ...]


@dataclass(frozen=True)
class Complement:
    """Domain complement of ``src``."""

    src: int


@dataclass(frozen=True)
class Closure:
    """A compiled caterpillar NFA (ε-closed edge tables of a
    :class:`~repro.engine.walk.CompiledWalk`) saturated from the nodes
    in ``src``; yields the nodes reached in an accepting state."""

    src: int
    edges: Tuple
    start: int
    accepting: Tuple[int, ...]


@dataclass(frozen=True)
class AnyLane:
    """Non-empty → full domain, per tree: the existential projection.
    One tree at a time this is "all nodes if the set is inhabited";
    stacked it is a per-lane SWAR broadcast."""

    src: int


@dataclass(frozen=True)
class Plan:
    """A lowered query: ops in dependency order (op *i* writes register
    *i*), the result register, and how to read it (``"nodes"`` — a node
    set in document order — or ``"boolean"`` — inhabited or not)."""

    ops: Tuple
    result: int
    mode: str

    def __repr__(self) -> str:
        body = "; ".join(f"r{i}={op!r}" for i, op in enumerate(self.ops))
        return f"Plan<{self.mode}>[{body} -> r{self.result}]"


# ---------------------------------------------------------------------------
# interpreters
# ---------------------------------------------------------------------------

_TEST_PREDICATES = (
    (IS_ROOT, "root"),
    (IS_LEAF, "leaf"),
    (IS_FIRST, "first"),
    (IS_LAST, "last"),
)


def _bind_closure(op: Closure, move_groups, test_masks, labelled):
    """Resolve a ``Closure`` op's compiled atoms against one algebra:
    tests/labels become masks, moves become shift groups — the same
    binding :class:`~repro.engine.walk.WalkEvaluator` performs."""
    bound = []
    for state, state_edges in enumerate(op.edges):
        selfs = []
        outs = []
        for (kind, payload), targets in state_edges:
            if kind == "move":
                applier = (move_groups[payload], 0)
            elif kind == "test":
                applier = (None, test_masks[payload])
            else:  # label test
                applier = (None, labelled(payload))
            if state in targets:
                selfs.append(applier)
            rest = tuple(t for t in targets if t != state)
            if rest:
                outs.append((applier[0], applier[1], rest))
        bound.append((tuple(selfs), tuple(outs)))
    return tuple(bound)


class _TreeAlgebra:
    """One plan bound to one tree's index."""

    __slots__ = ("index", "move_groups", "_tests")

    def __init__(self, index: TreeIndex) -> None:
        self.index = index
        self.move_groups = index.move_groups
        self._tests = None

    def labelled(self, name: str) -> int:
        return self.index.labelled(name)

    def const(self, kind: str) -> int:
        index = self.index
        if kind == "all":
            return index.all_mask
        if kind == "none":
            return 0
        if kind == "root":
            return index.root_mask
        if kind == "leaf":
            return index.leaf_mask
        if kind == "first":
            return index.first_mask
        return index.last_mask

    def move(self, direction: str, bits: int) -> int:
        return apply_shift_groups(self.move_groups[direction], bits)

    def children(self, bits: int, context) -> int:
        return self.index.children_of_mask(bits)

    def descendants(self, bits: int, context) -> int:
        return self.index.descendants_mask(bits)

    def plus(self, direction: str, bits: int, context) -> int:
        return _saturate(
            (self.move_groups[direction],), self.move(direction, bits), context
        )

    def complement(self, bits: int) -> int:
        return self.index.all_mask & ~bits

    def any_lane(self, bits: int) -> int:
        return self.index.all_mask if bits else 0

    def closure(self, op: Closure, init: int, context) -> int:
        if self._tests is None:
            index = self.index
            self._tests = {
                predicate: getattr(index, f"{kind}_mask")
                for predicate, kind in _TEST_PREDICATES
            }
        bound = _bind_closure(op, self.move_groups, self._tests, self.labelled)
        reached = reach(bound, len(op.edges), op.start, init, context)
        out = 0
        for state in op.accepting:
            out |= reached[state]
        return out


class StackedShard:
    """Every tree of a chunk packed into its own lane of one wide int.

    Lane *t* occupies bits ``[t·width, t·width + n_t)`` with ``width``
    the smallest power of two fitting the largest tree — so moves
    (confined to a tree) can never carry across lanes and the SWAR
    broadcast of ``AnyLane`` folds exactly one lane.  Structural masks
    and shift groups are stacked eagerly (one pass over the indexes);
    label masks are stacked lazily per distinct label.
    """

    __slots__ = (
        "indexes",
        "lanes",
        "width",
        "all_mask",
        "consts",
        "move_groups",
        "_labels",
    )

    def __init__(self, indexes) -> None:
        self.indexes = tuple(indexes)
        self.lanes = len(self.indexes)
        self.width = lane_width_for(
            max((index.n for index in self.indexes), default=1)
        )
        width = self.width
        self.all_mask = stack_masks(
            (index.all_mask for index in self.indexes), width
        )
        self.consts = {
            "all": self.all_mask,
            "none": 0,
            "root": stack_masks(
                (index.root_mask for index in self.indexes), width
            ),
            "leaf": stack_masks(
                (index.leaf_mask for index in self.indexes), width
            ),
            "first": stack_masks(
                (index.first_mask for index in self.indexes), width
            ),
            "last": stack_masks(
                (index.last_mask for index in self.indexes), width
            ),
        }
        self.move_groups = {
            direction: stack_groups(
                (index.move_groups[direction] for index in self.indexes),
                width,
            )
            for direction in ("up", "down", "left", "right")
        }
        self._labels: Dict[str, int] = {}

    def labelled(self, name: str) -> int:
        mask = self._labels.get(name)
        if mask is None:
            mask = stack_masks(
                (index.labelled(name) for index in self.indexes), self.width
            )
            self._labels[name] = mask
        return mask

    def split(self, bits: int) -> List[int]:
        """The per-tree node sets of a stacked result, tree order."""
        return split_lanes(bits, self.width, self.lanes)


class _ShardAlgebra:
    """One plan bound to a whole shard's stacked lanes."""

    __slots__ = ("shard", "_tests")

    def __init__(self, shard: StackedShard) -> None:
        self.shard = shard
        self._tests = None

    def labelled(self, name: str) -> int:
        return self.shard.labelled(name)

    def const(self, kind: str) -> int:
        return self.shard.consts[kind]

    def move(self, direction: str, bits: int) -> int:
        return apply_shift_groups(self.shard.move_groups[direction], bits)

    def children(self, bits: int, context) -> int:
        # children(S) = down(S) closed under right: the first child plus
        # its right-sibling chain enumerates exactly the children.
        groups = self.shard.move_groups
        return _saturate(
            (groups["right"],),
            apply_shift_groups(groups["down"], bits),
            context,
        )

    def descendants(self, bits: int, context) -> int:
        # descendants(S) = down(S) closed under {down, right}: every
        # non-root node of a subtree is the first child (down) or the
        # right sibling (right) of another node of the same subtree,
        # and both moves stay inside the subtree.
        groups = self.shard.move_groups
        return _saturate(
            (groups["down"], groups["right"]),
            apply_shift_groups(groups["down"], bits),
            context,
        )

    def plus(self, direction: str, bits: int, context) -> int:
        groups = self.shard.move_groups[direction]
        return _saturate((groups,), apply_shift_groups(groups, bits), context)

    def complement(self, bits: int) -> int:
        return self.shard.all_mask & ~bits

    def any_lane(self, bits: int) -> int:
        shard = self.shard
        return (
            broadcast_lanes(bits, shard.width, shard.lanes) & shard.all_mask
        )

    def closure(self, op: Closure, init: int, context) -> int:
        if self._tests is None:
            consts = self.shard.consts
            self._tests = {
                predicate: consts[kind]
                for predicate, kind in _TEST_PREDICATES
            }
        bound = _bind_closure(
            op, self.shard.move_groups, self._tests, self.labelled
        )
        reached = reach(bound, len(op.edges), op.start, init, context)
        out = 0
        for state in op.accepting:
            out |= reached[state]
        return out


def _saturate(groups_list, seed: int, context) -> int:
    """Close ``seed`` under a set of shift-decomposed moves — the
    frontier loop behind ``Descendants``/``Children``/``ClosurePlus``.
    One checkpoint per round (the unit of big-int work)."""
    acc = 0
    frontier = seed
    while frontier:
        if context is not None:
            context.checkpoint()
        acc |= frontier
        image = 0
        for groups in groups_list:
            image |= apply_shift_groups(groups, frontier)
        frontier = image & ~acc
    return acc


def _run(plan: Plan, algebra) -> int:
    context = current_context()
    regs: List[int] = [0] * len(plan.ops)
    for position, op in enumerate(plan.ops):
        if context is not None:
            context.checkpoint()
        kind = type(op)
        if kind is LabelScan:
            value = algebra.labelled(op.name)
        elif kind is ConstScan:
            value = algebra.const(op.kind)
        elif kind is Shift:
            value = algebra.move(op.direction, regs[op.src])
        elif kind is Children:
            value = algebra.children(regs[op.src], context)
        elif kind is Descendants:
            value = algebra.descendants(regs[op.src], context)
        elif kind is ClosurePlus:
            value = algebra.plus(op.direction, regs[op.src], context)
        elif kind is Union:
            value = 0
            for src in op.srcs:
                value |= regs[src]
        elif kind is Join:
            value = regs[op.srcs[0]]
            for src in op.srcs[1:]:
                value &= regs[src]
                if not value:
                    break
        elif kind is Complement:
            value = algebra.complement(regs[op.src])
        elif kind is Closure:
            value = algebra.closure(op, regs[op.src], context)
        elif kind is AnyLane:
            value = algebra.any_lane(regs[op.src])
        else:  # pragma: no cover - op set is closed
            raise TypeError(f"unknown IR op {op!r}")
        regs[position] = value
    return regs[plan.result]


def evaluate_tree(plan: Plan, index: TreeIndex) -> int:
    """Run ``plan`` over one tree; returns the result-register bitset."""
    return _run(plan, _TreeAlgebra(index))


def evaluate_shard(plan: Plan, shard: StackedShard) -> int:
    """Run ``plan`` once over a whole shard; returns the stacked
    result (``shard.split`` recovers the per-tree bitsets)."""
    return _run(plan, _ShardAlgebra(shard))


# ---------------------------------------------------------------------------
# cardinality-aware builder
# ---------------------------------------------------------------------------


class _StatView:
    """Per-tree expected cardinalities from corpus or tree statistics.

    ``CorpusStatistics`` sums label/leaf counts across trees, so counts
    are normalised back to one tree; without statistics the view is
    *uninformed* and ``Join`` keeps syntactic order.
    """

    __slots__ = (
        "informed",
        "n",
        "labels",
        "leaves",
        "height",
        "avg_subtree",
        "avg_fanout",
    )

    def __init__(self, stats) -> None:
        if stats is None:
            self.informed = False
            self.n = 64.0
            self.labels: Dict[str, float] = {}
            self.leaves = 32.0
            self.height = 8.0
            self.avg_subtree = 8.0
            self.avg_fanout = 2.0
            return
        trees = float(getattr(stats, "tree_count", 1) or 1)
        self.informed = True
        self.n = max(float(stats.n), 1.0)
        self.labels = {
            name: count / trees for name, count in stats.label_counts
        }
        self.leaves = float(stats.leaf_count) / trees
        self.height = max(float(stats.height), 1.0)
        self.avg_subtree = max(float(stats.avg_subtree), 0.0)
        self.avg_fanout = max(float(stats.avg_fanout), 1.0)

    def estimate(self, op, est: List[float]) -> float:
        n = self.n
        kind = type(op)
        if kind is LabelScan:
            return min(n, self.labels.get(op.name, 0.0))
        if kind is ConstScan:
            if op.kind == "all":
                return n
            if op.kind == "none":
                return 0.0
            if op.kind == "root":
                return 1.0
            if op.kind == "leaf":
                return min(n, self.leaves)
            return max(1.0, n - self.leaves)  # first/last ≈ internal count
        if kind is Shift:
            return min(n, est[op.src])
        if kind is Children:
            return min(n, est[op.src] * self.avg_fanout)
        if kind is Descendants:
            return min(n, est[op.src] * self.avg_subtree)
        if kind is ClosurePlus:
            if op.direction in ("left", "right"):
                return min(n, est[op.src] * self.avg_fanout)
            if op.direction == "down":
                return min(n, est[op.src] * self.height)
            return min(n, est[op.src] * (self.avg_subtree + 1.0))
        if kind is Union:
            return min(n, sum(est[src] for src in op.srcs))
        if kind is Join:
            out = n
            for src in op.srcs:
                out *= est[src] / n
            return out
        if kind is Complement:
            return max(0.0, n - est[op.src])
        if kind is AnyLane:
            return n
        return n / 2.0  # Closure and anything future


class _Builder:
    """Emit ops with common-subexpression elimination and a running
    per-register cardinality estimate (used to order ``Join``)."""

    __slots__ = ("ops", "est", "view", "_memo")

    def __init__(self, stats=None) -> None:
        self.ops: List = []
        self.est: List[float] = []
        self.view = _StatView(stats)
        self._memo: Dict = {}

    def emit(self, op) -> int:
        hit = self._memo.get(op)
        if hit is not None:
            return hit
        self.ops.append(op)
        self.est.append(self.view.estimate(op, self.est))
        register = len(self.ops) - 1
        self._memo[op] = register
        return register

    def join(self, regs: List[int]) -> int:
        """Intersection of ``regs`` — deduplicated and, when statistics
        are available, ordered cheapest-first so the running big-int
        intersection shrinks as early as possible."""
        unique = list(dict.fromkeys(regs))
        if len(unique) == 1:
            return unique[0]
        if self.view.informed:
            unique.sort(key=lambda reg: (self.est[reg], reg))
        return self.emit(Join(tuple(unique)))

    def union(self, regs: List[int]) -> int:
        unique = list(dict.fromkeys(regs))
        if len(unique) == 1:
            return unique[0]
        return self.emit(Union(tuple(unique)))

    def plan(self, result: int, mode: str) -> Plan:
        return Plan(tuple(self.ops), result, mode)


# ---------------------------------------------------------------------------
# XPath lowering (context node = root, the corpus contract)
# ---------------------------------------------------------------------------


def _test_reg(builder: _Builder, test) -> int:
    if isinstance(test, NameTest):
        return builder.emit(LabelScan(test.name))
    return builder.emit(ConstScan("all"))  # Wildcard and SelfTest


def _step_reg(builder: _Builder, step: Step) -> int:
    """test ∩ every filter's keep-mask — the nodes this step admits."""
    regs = [_test_reg(builder, step.test)]
    for filter_path in step.filters:
        regs.append(_filter_keep(builder, filter_path))
    return builder.join(regs)


def _filter_keep(builder: _Builder, path: Path) -> int:
    """The set of candidates at which ``[path]`` holds, computed
    *backwards*: ``A_k`` is the set of nodes that can play step ``k``
    and still reach a full match, pulled up through the axes by the
    preimage moves (child ⇒ one ``up``, descendant ⇒ ``up⁺``)."""
    masks = [_step_reg(builder, step) for step in path.steps]
    current = masks[-1]
    for axis, mask in zip(reversed(path.axes), reversed(masks[:-1])):
        if axis == CHILD:
            pre = builder.emit(Shift(current, "up"))
        else:
            pre = builder.emit(ClosurePlus(current, "up"))
        current = builder.join([mask, pre])
    if path.absolute:
        rooted = builder.join([current, builder.emit(ConstScan("root"))])
        return builder.emit(AnyLane(rooted))
    if isinstance(path.steps[0].test, SelfTest):
        return current  # the candidate itself plays step 0
    # implicit leading child axis: some child of the candidate plays it
    return builder.emit(Shift(current, "up"))


def _path_reg(builder: _Builder, path: Path) -> int:
    # With the context node at the root, absolute, relative and
    # self-headed paths all seed at the root (id 0) — the exact
    # `_seed_mask` cases of engine.xpath specialised to context ().
    current = builder.join(
        [builder.emit(ConstScan("root")), _step_reg(builder, path.steps[0])]
    )
    for axis, step in zip(path.axes, path.steps[1:]):
        if axis == CHILD:
            moved = builder.emit(Children(current))
        else:
            moved = builder.emit(Descendants(current))
        current = builder.join([moved, _step_reg(builder, step)])
    return current


def lower_xpath(expr, stats=None) -> Plan:
    """Lower an XPath AST (``Path`` or ``Union_``) for evaluation from
    the root context.  The paper's whole fragment fits the IR, so this
    lowering is total."""
    builder = _Builder(stats)
    if isinstance(expr, Union_):
        result = builder.union(
            [_path_reg(builder, alt) for alt in expr.alternatives]
        )
    else:
        result = _path_reg(builder, expr)
    return builder.plan(result, "nodes")


# ---------------------------------------------------------------------------
# FO(∃*) lowering
# ---------------------------------------------------------------------------

_CONST_ATOMS = {
    F.Root: "root",
    F.Leaf: "leaf",
    F.First: "first",
    F.Last: "last",
}


def _unary_atom(builder: _Builder, atom, var) -> Optional[int]:
    """An atom whose free variables are ⊆ {var}, as a set over var."""
    kind = type(atom)
    if kind is F.TrueF:
        return builder.emit(ConstScan("all"))
    if kind is F.FalseF:
        return builder.emit(ConstScan("none"))
    if kind is F.Label:
        return builder.emit(LabelScan(atom.symbol))
    const = _CONST_ATOMS.get(kind)
    if const is not None:
        return builder.emit(ConstScan(const))
    if kind is F.NodeEq:
        return builder.emit(ConstScan("all"))  # var = var
    if kind in (F.Edge, F.Desc, F.SibLess, F.Succ):
        return builder.emit(ConstScan("none"))  # irreflexive on var, var
    return None  # value atoms


def _linking_image(builder, atom, source: int, bound, free_var):
    """``{free_var : ∃ v ∈ source. atom(v, free_var)}`` for one positive
    binary atom linking the exhausted variable ``bound`` to
    ``free_var`` — each direction is a single IR op."""
    kind = type(atom)
    if kind is F.Desc:
        if atom.ancestor == bound and atom.descendant == free_var:
            return builder.emit(Descendants(source))
        if atom.ancestor == free_var and atom.descendant == bound:
            return builder.emit(ClosurePlus(source, "up"))
    elif kind is F.Edge:
        if atom.parent == bound and atom.child == free_var:
            return builder.emit(Children(source))
        if atom.parent == free_var and atom.child == bound:
            return builder.emit(Shift(source, "up"))
    elif kind is F.Succ:
        if atom.left == bound and atom.right == free_var:
            return builder.emit(Shift(source, "right"))
        if atom.left == free_var and atom.right == bound:
            return builder.emit(Shift(source, "left"))
    elif kind is F.SibLess:
        if atom.left == bound and atom.right == free_var:
            return builder.emit(ClosurePlus(source, "right"))
        if atom.left == free_var and atom.right == bound:
            return builder.emit(ClosurePlus(source, "left"))
    elif kind is F.NodeEq:
        return source
    return None


def _set_of(builder: _Builder, phi, var, root_var) -> Optional[int]:
    """``{var : φ}`` as a register, with ``root_var`` (if any) known to
    be bound to the root.  Returns ``None`` outside the fragment."""
    kind = type(phi)
    if kind is F.Not:
        inner = _set_of(builder, phi.inner, var, root_var)
        return None if inner is None else builder.emit(Complement(inner))
    if kind is F.And:
        regs = []
        for part in phi.parts:
            reg = _set_of(builder, part, var, root_var)
            if reg is None:
                return None
            regs.append(reg)
        return builder.join(regs)
    if kind is F.Or:
        regs = []
        for part in phi.parts:
            reg = _set_of(builder, part, var, root_var)
            if reg is None:
                return None
            regs.append(reg)
        return builder.union(regs)
    if kind is F.Implies:
        premise = _set_of(builder, phi.premise, var, root_var)
        conclusion = _set_of(builder, phi.conclusion, var, root_var)
        if premise is None or conclusion is None:
            return None
        return builder.union(
            [builder.emit(Complement(premise)), conclusion]
        )
    if kind is F.Forall:
        rewritten = F.Not(F.Exists(phi.var, F.Not(phi.inner)))
        return _set_of(builder, rewritten, var, root_var)
    if kind is F.Exists:
        return _exists(builder, phi.var, phi.inner, var, root_var)

    # atoms
    free = F.free_variables(phi)
    if free <= {var}:
        return _unary_atom(builder, phi, var)
    if root_var is not None and root_var in free:
        if free <= {root_var}:
            # a condition on the root alone: all-or-none over var
            over_root = _unary_atom(builder, phi, root_var)
            if over_root is None:
                return None
            rooted = builder.join(
                [over_root, builder.emit(ConstScan("root"))]
            )
            return builder.emit(AnyLane(rooted))
        if free <= {var, root_var}:
            source = builder.emit(ConstScan("root"))
            return _linking_image(builder, phi, source, root_var, var)
    return None


def _exists(builder: _Builder, qvar, body, var, root_var) -> Optional[int]:
    """``{var : ∃ qvar. body}`` — on-the-fly miniscoping: conjuncts are
    split by whether they see ``qvar``, the ``qvar``-only part becomes
    a witness set, and at most one positive binary atom links the
    witness set back to ``var`` through a single image op."""
    if qvar == var or qvar == root_var:
        return None  # shadowing: fall back rather than rename
    kind = type(body)
    if kind is F.Implies:
        body = F.Or((F.Not(body.premise), body.conclusion))
        kind = F.Or
    if kind is F.Or:
        regs = []
        for part in body.parts:
            reg = _exists(builder, qvar, part, var, root_var)
            if reg is None:
                return None
            regs.append(reg)
        return builder.union(regs)

    parts = body.parts if kind is F.And else (body,)
    outer: List[int] = []
    witness: List[int] = []
    links = []
    for part in parts:
        free = F.free_variables(part)
        if qvar not in free:
            reg = _set_of(builder, part, var, root_var)
            if reg is None:
                return None
            outer.append(reg)
        elif free <= ({qvar, root_var} if root_var else {qvar}):
            reg = _set_of(builder, part, qvar, root_var)
            if reg is None:
                return None
            witness.append(reg)
        elif free <= {qvar, var} and F.is_atom(part):
            links.append(part)
        else:
            return None
    if len(links) > 1:
        return None  # two images can't be intersected per-witness

    if witness:
        source = builder.join(witness)
    else:
        source = builder.emit(ConstScan("all"))
    if links:
        image = _linking_image(builder, links[0], source, qvar, var)
        if image is None:
            return None
    else:
        image = builder.emit(AnyLane(source))
    return builder.join(outer + [image]) if outer else image


def _closed(builder: _Builder, phi) -> Optional[int]:
    """A sentence as an all-or-none register (per tree / per lane)."""
    kind = type(phi)
    if kind is F.TrueF:
        return builder.emit(ConstScan("all"))
    if kind is F.FalseF:
        return builder.emit(ConstScan("none"))
    if kind is F.Not:
        inner = _closed(builder, phi.inner)
        return None if inner is None else builder.emit(Complement(inner))
    if kind is F.And:
        regs = []
        for part in phi.parts:
            reg = _closed(builder, part)
            if reg is None:
                return None
            regs.append(reg)
        return builder.join(regs)
    if kind is F.Or:
        regs = []
        for part in phi.parts:
            reg = _closed(builder, part)
            if reg is None:
                return None
            regs.append(reg)
        return builder.union(regs)
    if kind is F.Implies:
        return _closed(builder, F.Or((F.Not(phi.premise), phi.conclusion)))
    if kind is F.Forall:
        return _closed(builder, F.Not(F.Exists(phi.var, F.Not(phi.inner))))
    if kind is F.Exists:
        witness = _set_of(builder, phi.inner, phi.var, None)
        if witness is None:
            return None
        return builder.emit(AnyLane(witness))
    return None  # every proper atom has a free variable


def lower_sentence(formula, stats=None) -> Optional[Plan]:
    """Lower a closed FO formula to a boolean plan, or ``None``."""
    if F.free_variables(formula):
        return None
    builder = _Builder(stats)
    result = _closed(builder, formula)
    if result is None:
        return None
    return builder.plan(result, "boolean")


def lower_select(formula, x, y, stats=None) -> Optional[Plan]:
    """Lower a binary selector φ(x, y) evaluated at context = root:
    the answer set over ``y`` with ``x`` pinned to the root — or, when
    ``y`` is not free, the reference engine's all-or-nothing contract
    (every node if φ holds at the root, nothing otherwise)."""
    free = F.free_variables(formula)
    if not free <= {x, y}:
        return None
    builder = _Builder(stats)
    if y in free:
        result = _set_of(
            builder, formula, y, x if x in free else None
        )
    elif x in free:
        over_x = _set_of(builder, formula, x, None)
        if over_x is None:
            return None
        rooted = builder.join([over_x, builder.emit(ConstScan("root"))])
        result = builder.emit(AnyLane(rooted))
    else:
        condition = _closed(builder, formula)
        result = (
            None if condition is None else builder.emit(AnyLane(condition))
        )
    if result is None:
        return None
    return builder.plan(result, "nodes")


# ---------------------------------------------------------------------------
# caterpillar lowering
# ---------------------------------------------------------------------------


def lower_caterpillar(compiled, stats=None) -> Plan:
    """Lower a :class:`~repro.engine.walk.CompiledWalk` for a walk from
    the root: one ``Closure`` op over the compiled edge tables."""
    builder = _Builder(stats)
    source = builder.emit(ConstScan("root"))
    result = builder.emit(
        Closure(
            source,
            compiled.edges,
            compiled.start,
            tuple(compiled.accepting),
        )
    )
    return builder.plan(result, "nodes")


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------


def lower_query(kind: str, parsed, stats=None) -> Optional[Plan]:
    """Lower one corpus query (already parsed by
    :mod:`repro.engine.plans`) for evaluation from the root context.
    Returns ``None`` when the query is outside the IR fragment —
    callers fall back to the dialect evaluator."""
    if kind == "xpath":
        return lower_xpath(parsed, stats)
    if kind == "ask":
        return lower_sentence(parsed, stats)
    if kind == "select":
        return lower_select(parsed.formula, parsed.x, parsed.y, stats)
    if kind == "caterpillar":
        _, compiled = parsed
        return lower_caterpillar(compiled, stats)
    return None  # caterpillar-relation: per-tree all-pairs stays put
