"""Bottom-up, set-at-a-time FO evaluation over a :class:`TreeIndex`.

The reference model checker (:mod:`repro.logic.tree_fo`) evaluates a
formula once per assignment: a quantifier block of k variables costs
n^k full recursive evaluations.  This engine instead compiles each
subformula — once — to the *relation of its satisfying assignments*
over its free variables (the Gottlob–Koch–Schulz set-at-a-time plan):

* arity 0 → a bool, arity 1 → a bitset over dense node ids,
  arity ≥ 2 → a set of id tuples, optionally under a lazy complement
  flag so negation is O(1);
* ∧ is a natural join (smallest relations first, complements applied
  as anti-filters), ∨ a union after conforming the columns;
* ∃ is projection, ∀ co-projection (counting), and both are
  *miniscoped* on the fly — ∃x(φ ∨ ψ) evaluates as ∃xφ ∨ ∃xψ, and a
  conjunct not mentioning x is pulled out of ∃x — so formulas with
  small intermediate relations never touch the n^k assignment space;
* every atom is read straight off the index: label/value atoms are
  inverted-index lookups, ``x ≺ y`` enumerates subtree *intervals*,
  E/succ/< come from the navigation arrays.

Semantics are exactly those of ``tree_fo.evaluate`` /
``tree_fo.satisfying_assignments`` / ``ExistsStarQuery.select``; the
``fo/fast-fo`` oracle pair and the hypothesis differential suite hold
the two engines to that.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..logic import tree_fo
from ..logic.tree_fo import (
    And,
    Atom,
    Desc,
    Edge,
    Exists,
    FalseF,
    First,
    Forall,
    Implies,
    Label,
    Last,
    Leaf,
    NodeEq,
    Not,
    NVar,
    Or,
    Root,
    SibLess,
    Succ,
    TreeFormula,
    TreeFormulaError,
    TrueF,
    ValConst,
    ValEq,
    free_variables,
)
from ..caching import KeyedLRU
from ..resilience.budget import current_context
from ..trees.node import NodeId
from ..trees.tree import Tree
from .index import TreeIndex, bit_count, index_for, iter_bits

__all__ = ["evaluate", "satisfying_assignments", "select", "relation_of"]


def _charge(cost: int) -> None:
    """Budget checkpoint: relations charge their (predicted) row work to
    the ambient budget *before* materialising it, so a join or conform
    that would build n^k rows is refused up front.  One ContextVar read
    when no budget is active."""
    context = current_context()
    if context is not None:
        context.checkpoint(cost)


@dataclass
class _Rel:
    """The satisfying assignments of one subformula.

    ``rows`` is a bool (no columns), an int bitset (one column) or a
    set of dense-id tuples aligned with ``vars``.  ``neg`` marks a lazy
    complement and only ever appears at arity ≥ 2 — lower arities
    complement eagerly (O(1) on bitsets/bools).
    """

    vars: Tuple[NVar, ...]
    rows: object
    neg: bool = False


def _empty(vars: Tuple[NVar, ...]) -> _Rel:
    if not vars:
        return _Rel((), False)
    if len(vars) == 1:
        return _Rel(vars, 0)
    return _Rel(vars, set())


def _negate(rel: _Rel, idx: TreeIndex) -> _Rel:
    if not rel.vars:
        return _Rel((), not rel.rows)
    if len(rel.vars) == 1:
        return _Rel(rel.vars, rel.rows ^ idx.all_mask)
    return _Rel(rel.vars, rel.rows, not rel.neg)


def _materialize(rel: _Rel, idx: TreeIndex) -> _Rel:
    """Resolve a lazy complement into explicit rows (the n^k fallback)."""
    if not rel.neg:
        return rel
    _charge(idx.n ** len(rel.vars))
    rows = set(product(range(idx.n), repeat=len(rel.vars)))
    rows.difference_update(rel.rows)
    return _Rel(rel.vars, rows)


def _estimate(rel: _Rel, idx: TreeIndex) -> int:
    if not rel.vars:
        return 0
    if len(rel.vars) == 1:
        return bit_count(rel.rows)
    size = len(rel.rows)
    return idx.n ** len(rel.vars) - size if rel.neg else size


def _join(a: _Rel, b: _Rel, idx: TreeIndex) -> _Rel:
    """Natural join of two positive relations."""
    _charge(_estimate(a, idx) + _estimate(b, idx) + 1)
    if not a.vars:
        return b if a.rows else _empty(b.vars)
    if not b.vars:
        return a if b.rows else _empty(a.vars)
    if len(a.vars) == 1 and len(b.vars) == 1:
        if a.vars[0] == b.vars[0]:
            return _Rel(a.vars, a.rows & b.rows)
        return _Rel(
            a.vars + b.vars,
            {(i, j) for i in iter_bits(a.rows) for j in iter_bits(b.rows)},
        )
    if len(a.vars) == 1:
        a, b = b, a
    if len(b.vars) == 1:
        var = b.vars[0]
        if var in a.vars:
            k = a.vars.index(var)
            bits = b.rows
            return _Rel(a.vars, {t for t in a.rows if (bits >> t[k]) & 1})
        ids = list(iter_bits(b.rows))
        return _Rel(a.vars + (var,), {t + (j,) for t in a.rows for j in ids})
    common = [v for v in a.vars if v in b.vars]
    if not common:
        return _Rel(a.vars + b.vars, {t + s for t in a.rows for s in b.rows})
    a_pos = [a.vars.index(v) for v in common]
    b_pos = [b.vars.index(v) for v in common]
    b_extra = [k for k, v in enumerate(b.vars) if v not in a.vars]
    keyed: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
    for s in b.rows:
        keyed.setdefault(tuple(s[k] for k in b_pos), []).append(
            tuple(s[k] for k in b_extra)
        )
    out = set()
    for t in a.rows:
        for extra in keyed.get(tuple(t[k] for k in a_pos), ()):
            out.add(t + extra)
    return _Rel(a.vars + tuple(b.vars[k] for k in b_extra), out)


def _anti_filter(a: _Rel, b: _Rel, idx: TreeIndex) -> _Rel:
    """``a ∧ ¬b`` where b's columns are a subset of a's (both ≥ 2-ary
    on the b side is guaranteed: unary complements are eager)."""
    _charge(len(a.rows) + 1)
    positions = [a.vars.index(v) for v in b.vars]
    rows = b.rows
    return _Rel(
        a.vars,
        {t for t in a.rows if tuple(t[k] for k in positions) not in rows},
    )


def _and2(a: _Rel, b: _Rel, idx: TreeIndex) -> _Rel:
    if a.neg and not b.neg:
        a, b = b, a
    if not a.neg and not b.neg:
        return _join(a, b, idx)
    if not a.neg and b.neg:
        if len(a.vars) >= 2 and set(b.vars) <= set(a.vars):
            return _anti_filter(a, b, idx)
        return _join(a, _materialize(b, idx), idx)
    # both lazy complements: ¬S ∧ ¬T = ¬(S ∨ T) when columns agree
    if set(a.vars) == set(b.vars):
        positive = [_Rel(a.vars, a.rows), _Rel(b.vars, b.rows)]
        return _negate(
            _union_positive([a.vars, b.vars], positive, idx), idx
        )
    return _join(_materialize(a, idx), _materialize(b, idx), idx)


def _and_all(rels: Sequence[_Rel], idx: TreeIndex) -> _Rel:
    pending = sorted(
        (r for r in rels if not r.neg), key=lambda r: _estimate(r, idx)
    )
    # Greedy connectivity-aware join order: start from the smallest
    # relation, then always join the smallest remaining conjunct that
    # shares a variable with what is already bound — a Cartesian
    # product only when nothing connects.  Conjunction is commutative,
    # so any order is sound; a connected order keeps intermediates
    # near the final selectivity instead of exploding through a cross
    # product that a later shared-variable join would shrink again.
    positives: List[_Rel] = []
    bound: set = set()
    while pending:
        pick = 0
        if bound:
            pick = next(
                (k for k, r in enumerate(pending) if bound & set(r.vars)), 0
            )
        rel = pending.pop(pick)
        positives.append(rel)
        bound.update(rel.vars)
    negatives = [r for r in rels if r.neg]
    acc: Optional[_Rel] = None
    for rel in positives + negatives:
        if acc is None:
            acc = rel
            continue
        if not acc.neg and not acc.vars and not acc.rows:
            break  # already unsatisfiable; columns still accumulate below
        acc = _and2(acc, rel, idx)
    assert acc is not None
    missing = [
        v for r in rels for v in r.vars if v not in acc.vars
    ]  # only reachable via an early False conjunct
    if missing:
        acc = _conform(acc, tuple(acc.vars) + tuple(dict.fromkeys(missing)), idx)
    return acc


def _conform(rel: _Rel, vars_out: Tuple[NVar, ...], idx: TreeIndex) -> _Rel:
    """Materialize, extend with unconstrained columns, reorder to
    ``vars_out`` (which must be a superset of the relation's columns)."""
    rel = _materialize(rel, idx)
    if rel.vars == vars_out:
        return rel
    if not vars_out:
        return rel
    domain = range(idx.n)
    if not rel.vars:
        if not rel.rows:
            return _empty(vars_out)
        if len(vars_out) == 1:
            return _Rel(vars_out, idx.all_mask)
        return _Rel(vars_out, set(product(domain, repeat=len(vars_out))))
    if len(rel.vars) == 1 and len(vars_out) == 1:
        return rel  # same single column, order trivially equal
    rows = (
        [(i,) for i in iter_bits(rel.rows)]
        if len(rel.vars) == 1
        else rel.rows
    )
    positions = {v: k for k, v in enumerate(rel.vars)}
    extra = [v for v in vars_out if v not in positions]
    _charge(max(len(rows), 1) * idx.n ** len(extra))
    out = set()
    for t in rows:
        base = {v: t[k] for v, k in positions.items()}
        for choice in product(domain, repeat=len(extra)):
            base.update(zip(extra, choice))
            out.add(tuple(base[v] for v in vars_out))
    if len(vars_out) == 1:
        bits = 0
        for (i,) in out:
            bits |= 1 << i
        return _Rel(vars_out, bits)
    return _Rel(vars_out, out)


def _union_positive(
    var_lists: Sequence[Tuple[NVar, ...]], rels: Sequence[_Rel], idx: TreeIndex
) -> _Rel:
    vars_out: Tuple[NVar, ...] = ()
    seen = set()
    for vars in var_lists:
        for v in vars:
            if v not in seen:
                seen.add(v)
                vars_out += (v,)
    conformed = [_conform(r, vars_out, idx) for r in rels]
    if not vars_out:
        return _Rel((), any(r.rows for r in conformed))
    if len(vars_out) == 1:
        bits = 0
        for r in conformed:
            bits |= r.rows
        return _Rel(vars_out, bits)
    rows = set()
    for r in conformed:
        rows |= r.rows
    return _Rel(vars_out, rows)


def _or_all(rels: Sequence[_Rel], idx: TreeIndex) -> _Rel:
    if any(r.neg for r in rels):
        # ¬S ∨ T ∨ … = ¬(S ∧ ¬T ∧ …): route complements through the
        # join/anti-filter machinery instead of materializing them —
        # a lazy ¬S conformed to extra columns costs n^k rows.
        return _negate(_and_all([_negate(r, idx) for r in rels], idx), idx)
    return _union_positive([r.vars for r in rels], rels, idx)


def _project(rel: _Rel, var: NVar, idx: TreeIndex) -> _Rel:
    """∃var — drop one column."""
    if var not in rel.vars:
        return rel  # vacuous: Dom(t) is never empty
    rel = _materialize(rel, idx)
    if len(rel.vars) == 1:
        return _Rel((), rel.rows != 0)
    _charge(len(rel.rows) + 1)
    k = rel.vars.index(var)
    vars_out = rel.vars[:k] + rel.vars[k + 1 :]
    if len(vars_out) == 1:
        bits = 0
        for t in rel.rows:
            bits |= 1 << (t[1 - k])
        return _Rel(vars_out, bits)
    return _Rel(vars_out, {t[:k] + t[k + 1 :] for t in rel.rows})


def _coproject(rel: _Rel, var: NVar, idx: TreeIndex) -> _Rel:
    """∀var — keep the residual assignments true for *every* node."""
    if var not in rel.vars:
        return rel
    if rel.neg:
        # ∀v ¬S ≡ ¬∃v S: project the positive rows, complement after.
        return _negate(_project(_Rel(rel.vars, rel.rows), var, idx), idx)
    if len(rel.vars) == 1:
        return _Rel((), rel.rows == idx.all_mask)
    _charge(len(rel.rows) + 1)
    k = rel.vars.index(var)
    counts: Dict[Tuple[int, ...], int] = {}
    for t in rel.rows:
        key = t[:k] + t[k + 1 :]
        counts[key] = counts.get(key, 0) + 1
    vars_out = rel.vars[:k] + rel.vars[k + 1 :]
    keep = {key for key, c in counts.items() if c == idx.n}
    if len(vars_out) == 1:
        bits = 0
        for (i,) in keep:
            bits |= 1 << i
        return _Rel(vars_out, bits)
    return _Rel(vars_out, keep)


def _restrict(rel: _Rel, var: NVar, value: int, idx: TreeIndex) -> _Rel:
    """Bind one column to a constant and drop it."""
    if var not in rel.vars:
        return rel
    if rel.neg:
        return _negate(_restrict(_Rel(rel.vars, rel.rows), var, value, idx), idx)
    if len(rel.vars) == 1:
        return _Rel((), bool((rel.rows >> value) & 1))
    k = rel.vars.index(var)
    vars_out = rel.vars[:k] + rel.vars[k + 1 :]
    if len(vars_out) == 1:
        bits = 0
        for t in rel.rows:
            if t[k] == value:
                bits |= 1 << t[1 - k]
        return _Rel(vars_out, bits)
    return _Rel(
        vars_out, {t[:k] + t[k + 1 :] for t in rel.rows if t[k] == value}
    )


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------


def _value_table(idx: TreeIndex, attr: str) -> Dict:
    if attr not in idx.value_mask:
        # Same error (and message) the reference raises via Tree.val.
        idx.tree.attr_table(attr)
    return idx.value_mask[attr]


def _atom_rel(atom: Atom, idx: TreeIndex) -> _Rel:
    if isinstance(atom, TrueF):
        return _Rel((), True)
    if isinstance(atom, FalseF):
        return _Rel((), False)
    if isinstance(atom, Label):
        return _Rel((atom.var,), idx.labelled(atom.symbol))
    if isinstance(atom, Root):
        return _Rel((atom.var,), idx.root_mask)
    if isinstance(atom, Leaf):
        return _Rel((atom.var,), idx.leaf_mask)
    if isinstance(atom, First):
        return _Rel((atom.var,), idx.first_mask)
    if isinstance(atom, Last):
        return _Rel((atom.var,), idx.last_mask)
    if isinstance(atom, ValConst):
        table = _value_table(idx, atom.attr)
        return _Rel((atom.var,), table.get(atom.value, 0))
    if isinstance(atom, NodeEq):
        if atom.left == atom.right:
            return _Rel((atom.left,), idx.all_mask)
        return _Rel(
            (atom.left, atom.right), {(i, i) for i in range(idx.n)}
        )
    if isinstance(atom, Edge):
        if atom.parent == atom.child:
            return _Rel((atom.parent,), 0)
        parent = idx.parent
        return _Rel(
            (atom.parent, atom.child),
            {(parent[j], j) for j in range(idx.n) if parent[j] >= 0},
        )
    if isinstance(atom, Succ):
        if atom.left == atom.right:
            return _Rel((atom.left,), 0)
        nxt = idx.next_sibling
        return _Rel(
            (atom.left, atom.right),
            {(i, nxt[i]) for i in range(idx.n) if nxt[i] >= 0},
        )
    if isinstance(atom, SibLess):
        if atom.left == atom.right:
            return _Rel((atom.left,), 0)
        rows = set()
        for u in range(idx.n):
            kids = idx.children_of(u)
            for a in range(len(kids)):
                for b in range(a + 1, len(kids)):
                    rows.add((kids[a], kids[b]))
        return _Rel((atom.left, atom.right), rows)
    if isinstance(atom, Desc):
        if atom.ancestor == atom.descendant:
            return _Rel((atom.ancestor,), 0)
        subtree_end = idx.subtree_end
        _charge(idx.n)
        rows = {
            (u, v)
            for u in range(idx.n)
            for v in range(u + 1, subtree_end[u])
        }
        return _Rel((atom.ancestor, atom.descendant), rows)
    if isinstance(atom, ValEq):
        left = _value_table(idx, atom.attr_left)
        right = _value_table(idx, atom.attr_right)
        if atom.left == atom.right:
            bits = 0
            for value, abits in left.items():
                bits |= abits & right.get(value, 0)
            return _Rel((atom.left,), bits)
        rows = set()
        for value, abits in left.items():
            bbits = right.get(value, 0)
            if not bbits:
                continue
            b_ids = list(iter_bits(bbits))
            for i in iter_bits(abits):
                for j in b_ids:
                    rows.add((i, j))
        return _Rel((atom.left, atom.right), rows)
    raise TreeFormulaError(f"unknown atom {atom!r}")


# ---------------------------------------------------------------------------
# The compiler: formula → relation
# ---------------------------------------------------------------------------


class _Compiler:
    def __init__(self, idx: TreeIndex) -> None:
        self.idx = idx
        self.memo: Dict[int, _Rel] = {}

    def rel(self, formula: TreeFormula) -> _Rel:
        cached = self.memo.get(id(formula))
        if cached is not None:
            return cached
        out = self._rel_uncached(formula)
        self.memo[id(formula)] = out
        return out

    def _rel_uncached(self, formula: TreeFormula) -> _Rel:
        _charge(1)
        idx = self.idx
        if tree_fo.is_atom(formula):
            return _atom_rel(formula, idx)  # type: ignore[arg-type]
        if isinstance(formula, Not):
            return _negate(self.rel(formula.inner), idx)
        if isinstance(formula, And):
            return _and_all([self.rel(p) for p in formula.parts], idx)
        if isinstance(formula, Or):
            return _or_all([self.rel(p) for p in formula.parts], idx)
        if isinstance(formula, Implies):
            return _or_all(
                [
                    _negate(self.rel(formula.premise), idx),
                    self.rel(formula.conclusion),
                ],
                idx,
            )
        if isinstance(formula, (Exists, Forall)):
            return self.quant(
                isinstance(formula, Exists), formula.var, formula.inner
            )
        raise TreeFormulaError(f"unknown formula node {formula!r}")

    def quant(self, is_exists: bool, var: NVar, inner: TreeFormula) -> _Rel:
        """∃/∀ with on-the-fly miniscoping, so the quantifier reaches
        its relation while the relation is still narrow."""
        idx = self.idx
        if var not in free_variables(inner):
            return self.rel(inner)  # vacuous: Dom(t) is never empty
        if isinstance(inner, Not):
            return _negate(self.quant(not is_exists, var, inner.inner), idx)
        if isinstance(inner, Implies):
            lowered = Or((Not(inner.premise), inner.conclusion))
            return self.quant(is_exists, var, lowered)
        if isinstance(inner, (And, Or)):
            distributes = isinstance(inner, Or) if is_exists else isinstance(inner, And)
            combine = _or_all if isinstance(inner, Or) else _and_all
            if distributes:
                # ∃x(φ ∨ ψ) = ∃xφ ∨ ∃xψ and ∀x(φ ∧ ψ) = ∀xφ ∧ ∀xψ
                return combine(
                    [self.quant(is_exists, var, p) for p in inner.parts], idx
                )
            bound = [p for p in inner.parts if var in free_variables(p)]
            rest = [p for p in inner.parts if var not in free_variables(p)]
            if rest:
                # ∃x(φ ∧ ψ(x)) = φ ∧ ∃xψ(x) (dually ∀ over ∨)
                core = And(tuple(bound)) if isinstance(inner, And) else Or(tuple(bound))
                merged = bound[0] if len(bound) == 1 else core
                rels = [self.rel(p) for p in rest]
                rels.append(self.quant(is_exists, var, merged))
                return combine(rels, idx)
        rel = self.rel(inner)
        if is_exists:
            return _project(rel, var, idx)
        return _coproject(rel, var, idx)


def relation_of(
    formula: TreeFormula, tree: Tree
) -> Tuple[Tuple[NVar, ...], FrozenSet[Tuple[NodeId, ...]]]:
    """The satisfying-assignment relation over the formula's free
    variables (columns in first-seen order), with ids decoded back to
    node addresses.  Mostly a debugging/inspection helper."""
    idx = index_for(tree)
    rel = _materialize(_Compiler(idx).rel(formula), idx)
    node_of = idx.node_of
    if not rel.vars:
        return (), frozenset({()} if rel.rows else set())
    if len(rel.vars) == 1:
        return rel.vars, frozenset((node_of[i],) for i in iter_bits(rel.rows))
    return rel.vars, frozenset(
        tuple(node_of[i] for i in t) for t in rel.rows
    )


#: Lowered IR plans keyed by formula object identity (entries pin the
#: formula, so an id can never be recycled while its entry is live).
#: ``None`` is cached too: a formula outside the IR fragment — value
#: atoms, unsupported quantifier shapes — is probed exactly once.
_IR_PLAN_CACHE: KeyedLRU = KeyedLRU(256, name="fo-ir-plans")


def _ir_plan(tag, formula, kind, x=None, y=None):
    """The formula's root-context IR plan (or ``None``), cached by
    identity: the facade hands the same parsed formula object to every
    call, so lowering happens once per (formula, selector) pairing."""
    key = tag + (id(formula),)
    hit = _IR_PLAN_CACHE.get(key)
    if hit is not None and hit[0] is formula:
        return hit[1]
    from .ir import lower_select, lower_sentence

    if kind == "sentence":
        plan = lower_sentence(formula)
    else:
        plan = lower_select(formula, x, y)
    _IR_PLAN_CACHE.put(key, (formula, plan))
    return plan


# ---------------------------------------------------------------------------
# Public API — drop-in counterparts of the reference evaluator
# ---------------------------------------------------------------------------


def evaluate(
    formula: TreeFormula,
    tree: Tree,
    assignment: Optional[Dict[NVar, NodeId]] = None,
) -> bool:
    """Set-at-a-time counterpart of :func:`repro.logic.tree_fo.evaluate`."""
    env = dict(assignment or {})
    missing = free_variables(formula) - set(env)
    if missing:
        raise TreeFormulaError(
            f"unbound free variables: {sorted(v.name for v in missing)}"
        )
    idx = index_for(tree)
    if not free_variables(formula):
        plan = _ir_plan(("sentence",), formula, "sentence")
        if plan is not None:
            from .ir import evaluate_tree

            return bool(evaluate_tree(plan, idx))
    rel = _Compiler(idx).rel(formula)
    if not rel.vars:
        return bool(rel.rows)
    ids = tuple(idx.id_of[tree.require(env[v])] for v in rel.vars)
    if len(rel.vars) == 1:
        return bool((rel.rows >> ids[0]) & 1)
    return (ids in rel.rows) != rel.neg


def satisfying_assignments(
    formula: TreeFormula,
    tree: Tree,
    variables_order: Sequence[NVar],
) -> FrozenSet[Tuple[NodeId, ...]]:
    """Set-at-a-time counterpart of
    :func:`repro.logic.tree_fo.satisfying_assignments`."""
    free = free_variables(formula)
    if free != frozenset(variables_order):
        raise TreeFormulaError(
            f"free variables {sorted(v.name for v in free)} differ from "
            f"requested order {[v.name for v in variables_order]}"
        )
    idx = index_for(tree)
    rel = _conform(
        _Compiler(idx).rel(formula), tuple(variables_order), idx
    )
    node_of = idx.node_of
    if not rel.vars:
        return frozenset({()} if rel.rows else set())
    if len(rel.vars) == 1:
        return frozenset((node_of[i],) for i in iter_bits(rel.rows))
    return frozenset(tuple(node_of[i] for i in t) for t in rel.rows)


def select(
    formula: TreeFormula,
    tree: Tree,
    context: NodeId = (),
    x: NVar = NVar("x"),
    y: NVar = NVar("y"),
) -> Tuple[NodeId, ...]:
    """Set-at-a-time counterpart of ``ExistsStarQuery.select`` — for
    *any* FO selector φ(x, y), not just the FO(∃*) fragment.

    Same conventions: free variables must be within {x, y}; a selector
    not mentioning y returns every node or none.
    """
    tree.require(context)
    free = free_variables(formula)
    extra = free - {x, y}
    if extra:
        raise TreeFormulaError(
            f"selector may only use {x.name!r} and {y.name!r} free; "
            f"also found {sorted(v.name for v in extra)}"
        )
    idx = index_for(tree)
    if idx.id_of[context] == 0:
        plan = _ir_plan(("select", x.name, y.name), formula, "select", x, y)
        if plan is not None:
            from .ir import evaluate_tree

            return idx.to_nodes(evaluate_tree(plan, idx))
    rel = _Compiler(idx).rel(formula)
    if y in free:
        if x in free:
            rel = _restrict(rel, x, idx.id_of[context], idx)
        if not rel.vars:  # pragma: no cover - y free implies a column
            return tree.nodes if rel.rows else ()
        return idx.to_nodes(rel.rows)
    if x in free:
        rel = _restrict(rel, x, idx.id_of[context], idx)
    return tuple(tree.nodes) if rel.rows else ()
