"""The cost-based adaptive planner behind ``engine="auto"``.

Every query in the repo has (at least) two implementations: the
node-at-a-time reference evaluators and the indexed set-at-a-time
engines.  Which one wins depends on the *instance*: on a three-node
tree the reference evaluator answers an XPath step in a handful of
dict lookups while the fast engine pays its bitset machinery for
nothing; on a thousand-node document the set-at-a-time engine is two
orders of magnitude ahead.  The planner makes that call per
(query, statistics) pair:

1. **estimate** — query features (steps, axes, quantifier structure,
   NFA states) are combined with tree statistics
   (:mod:`repro.engine.stats`) and wander-join-sampled join
   selectivities into per-engine cost formulas and an estimated result
   cardinality;
2. **choose** — the cheapest engine wins; the decision, the losing
   costs, the cardinality estimate and the statistics fingerprint are
   frozen into a :class:`Plan`, memoised in the process-wide plan
   cache keyed by ``(kind, text, fingerprint, planner config)``;
3. **guard & re-plan** — when the modeled cost is large enough to
   matter (``guard_threshold``), the fast attempt runs under a
   threaded :class:`~repro.resilience.Budget` of
   ``replan_factor × estimated cost`` steps through the ``"resilient"``
   machinery: an engine whose *actual* work overshoots its estimate by
   the configured factor is cut off mid-execution and the query is
   re-planned onto the reference engine (recorded as a re-plan).

Plans are deterministic per seed — same statistics, same text, same
plan — which the planner property tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..logic import tree_fo
from ..logic.parser import format_formula, parse_query, parse_sentence
from ..logic.tree_fo import (
    And,
    Desc,
    Edge,
    Exists,
    FalseF,
    First,
    Forall,
    Implies,
    Label,
    Last,
    Leaf,
    NodeEq,
    Not,
    Or,
    Root,
    SibLess,
    Succ,
    TreeFormula,
    TrueF,
    ValConst,
    ValEq,
    free_variables,
)
from ..resilience.budget import Budget, ExecutionContext, activate
from ..resilience.executor import resilient_call
from ..resilience.log import ResilienceLog
from ..trees.tree import Tree
from ..xpath import ast as xp
from .index import index_for
from .plans import cached_query_plan, compile_walk_plan, compile_xpath_plan
from .stats import (
    DEFAULT_SAMPLE_SIZE,
    CardinalityEstimator,
    CorpusStatistics,
    TreeStatistics,
    closure_reach_estimate,
    corpus_statistics,
    tree_statistics,
)

__all__ = [
    "Plan",
    "Planner",
    "default_planner",
    "GUARD_THRESHOLD",
    "REPLAN_FACTOR",
    "MIN_REPLAN_STEPS",
]

# -- cost model constants ----------------------------------------------------
#
# Units are abstract "node touches".  The reference evaluators pay one
# unit per visited node/assignment; the set-at-a-time engines pay one
# unit per big-int word (n/64 bits) per operation plus a fixed setup
# for the bitset machinery.  The absolute scale is irrelevant — only
# the crossover matters, and it is calibrated against the measured
# BENCH trajectories: fast wins from a few dozen nodes up, reference
# wins on tiny documents where setup dominates.

#: Fixed overhead of the set-at-a-time machinery per query.
FAST_SETUP = 24.0
#: Fixed overhead of the reference evaluators per query.
REF_SETUP = 4.0
#: One assignment-at-a-time FO evaluation step (checkpointed dict
#: bindings, interpreter recursion) costs about this many fast-engine
#: row touches — the two sides of the cost model run at different
#: speeds per unit and the comparison has to account for it.
REF_EVAL = 6.0
#: Bits per big-int word — the fast engines' set-at-a-time divisor.
WORD = 64.0

#: Modeled fast cost below which auto runs unguarded: re-planning only
#: pays for itself when the query is expensive enough that a runaway
#: fast attempt would dwarf the budget bookkeeping.
GUARD_THRESHOLD = 100_000.0
#: The re-plan trigger: the guarded fast attempt may spend this many
#: times its estimated cost before it is cut off and re-planned.
REPLAN_FACTOR = 8.0
#: Floor on the guarded budget, so estimate noise on cheap queries can
#: never starve a healthy fast attempt.
MIN_REPLAN_STEPS = 20_000


@dataclass(frozen=True)
class Plan:
    """One frozen planning decision for a (query, statistics) pair."""

    kind: str
    text: str
    #: The chosen engine: ``"fast"`` or ``"reference"``.
    engine: str
    #: Modeled cost per candidate engine, sorted cheapest first.
    costs: Tuple[Tuple[str, float], ...]
    #: Estimated result cardinality (rows / selected nodes; 0 or 1 for
    #: boolean queries) — compared against actuals in BENCH_planner.
    estimated_rows: int
    #: Statistics fingerprint the plan was built against.
    fingerprint: str
    #: Whether execution runs under the re-plan budget.
    guarded: bool
    #: Budget (in checkpoint steps) for the guarded fast attempt.
    replan_steps: int

    @property
    def estimated_cost(self) -> float:
        """Modeled cost of the chosen engine."""
        return dict(self.costs)[self.engine]


class Planner:
    """Builds, caches and executes :class:`Plan` objects.

    One planner may serve many databases and corpora: plans live in
    the process-wide shared cache, keyed by query text, statistics
    fingerprint and this planner's configuration.  The instance only
    carries counters (``planned``, ``replans``) and the sampling seed.
    """

    def __init__(
        self,
        seed: int = 0,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        replan_factor: float = REPLAN_FACTOR,
        guard_threshold: float = GUARD_THRESHOLD,
    ) -> None:
        self.seed = seed
        self.sample_size = sample_size
        self.replan_factor = replan_factor
        self.guard_threshold = guard_threshold
        #: Plans actually built (cache misses).
        self.planned = 0
        #: Plan requests answered (hits + misses).
        self.requests = 0
        #: Mid-execution re-plans: guarded fast attempts that overshot
        #: their budget and were re-routed to the reference engine.
        self.replans = 0

    # -- planning ----------------------------------------------------------

    def _config_key(self) -> Tuple:
        return (
            self.seed,
            self.sample_size,
            self.replan_factor,
            self.guard_threshold,
        )

    def plan_for_tree(
        self,
        kind: str,
        text: str,
        tree: Tree,
        parsed: Optional[object] = None,
    ) -> Plan:
        """Plan ``(kind, text)`` against one tree: exact popcounts and
        sampled join selectivities off the tree's index."""
        stats = tree_statistics(tree)
        return self._plan(
            kind,
            text,
            stats,
            lambda: CardinalityEstimator(
                index_for(tree), seed=self.seed, sample_size=self.sample_size
            ),
            parsed,
        )

    def plan_for_stats(
        self,
        kind: str,
        text: str,
        stats: CorpusStatistics,
        parsed: Optional[object] = None,
    ) -> Plan:
        """Plan ``(kind, text)`` against aggregate corpus statistics —
        one decision for a whole batch, no per-tree index work."""
        return self._plan(kind, text, stats, None, parsed)

    def plan_formula(self, formula: TreeFormula, tree: Tree) -> Plan:
        """Plan a raw FO formula (full satisfying-assignment relation)
        against one tree — the oracle pair's entry point."""
        return self.plan_for_tree(
            "formula", format_formula(formula), tree, parsed=formula
        )

    def _plan(
        self,
        kind: str,
        text: str,
        profile,
        estimator_factory: Optional[Callable[[], CardinalityEstimator]],
        parsed: Optional[object],
    ) -> Plan:
        self.requests += 1
        key = (kind, text, profile.fingerprint) + self._config_key()

        def build() -> Plan:
            self.planned += 1
            est = estimator_factory() if estimator_factory else None
            fast, ref, rows = _model_costs(kind, text, profile, est, parsed)
            costs = tuple(
                sorted([("fast", fast), ("reference", ref)], key=lambda c: c[1])
            )
            engine = costs[0][0]
            guarded = engine == "fast" and fast >= self.guard_threshold
            replan_steps = int(
                max(fast * self.replan_factor, MIN_REPLAN_STEPS)
            )
            return Plan(
                kind=kind,
                text=text,
                engine=engine,
                costs=costs,
                estimated_rows=max(0, round(rows)),
                fingerprint=profile.fingerprint,
                guarded=guarded,
                replan_steps=replan_steps,
            )

        return cached_query_plan(key, build)

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        plan: Plan,
        operation: str,
        fast: Callable[[], object],
        reference: Callable[[], object],
        budget: Optional[Budget],
        log: ResilienceLog,
        faults=None,
    ):
        """Run one query per its plan.

        Unguarded plans run the chosen engine directly (under the
        caller's budget, when given).  Guarded plans route the fast
        attempt through :func:`~repro.resilience.executor.resilient_call`
        under the re-plan budget: overshooting it (or any engine fault)
        re-plans the query onto the reference engine, recorded both on
        the resilience log and on this planner's ``replans`` counter."""
        if plan.engine == "reference" or not plan.guarded:
            thunk = fast if plan.engine == "fast" else reference
            if budget is not None:
                with activate(ExecutionContext(budget)):
                    return thunk()
            return thunk()
        # The guarded fast path.  With a caller budget the ordinary
        # resilient contract applies (the caller's limit wins); without
        # one, the synthesized guard gives the fast attempt exactly
        # ``replan_steps`` (resilient_call slices budgets in half) and
        # banks as much again for the reference re-plan.
        guard = budget if budget is not None else Budget(
            steps=2 * plan.replan_steps
        )
        before = log.snapshot()["fallbacks"]
        try:
            return resilient_call(
                operation, fast, reference, guard, log, faults=faults
            )
        finally:
            if log.snapshot()["fallbacks"] > before:
                self.replans += 1


#: The process-wide default planner — what ``engine="auto"`` uses when
#: the caller does not supply one.  Sharing it keeps the counters
#: meaningful across facade databases and corpus batches alike.
_DEFAULT_PLANNER = Planner()


def default_planner() -> Planner:
    return _DEFAULT_PLANNER


# ---------------------------------------------------------------------------
# The cost model
# ---------------------------------------------------------------------------


def _model_costs(
    kind: str,
    text: str,
    profile,
    est: Optional[CardinalityEstimator],
    parsed: Optional[object],
) -> Tuple[float, float, float]:
    """``(fast_cost, reference_cost, estimated_rows)`` for one query."""
    if kind == "xpath":
        expr = parsed if parsed is not None else compile_xpath_plan(text)
        return _xpath_costs(expr, profile, est)
    if kind == "ask":
        formula = parsed if parsed is not None else parse_sentence(text)
        return _fo_costs(formula, profile, est, result_arity=0)
    if kind == "select":
        if parsed is not None:
            formula = parsed
        else:
            formula = parse_query(text).formula
        return _fo_costs(formula, profile, est, result_arity=1)
    if kind == "formula":
        if parsed is None:
            raise ValueError("kind='formula' requires the parsed formula")
        return _fo_costs(parsed, profile, est, result_arity=None)
    if kind in ("caterpillar", "caterpillar-relation"):
        _, compiled = compile_walk_plan(text)
        return _walk_costs(
            compiled, profile, kind == "caterpillar-relation"
        )
    raise ValueError(f"unknown query kind {kind!r}")


# -- XPath -------------------------------------------------------------------


def _test_selectivity(test, profile, est) -> float:
    if isinstance(test, xp.NameTest):
        if est is not None:
            n = max(est.index.n, 1)
            return est.label_count(test.name) / n
        return profile.label_fraction(test.name)
    return 1.0  # wildcard / self


def _avg_subtree(profile, est) -> float:
    if est is not None:
        return est.avg_subtree_size()
    return profile.avg_subtree


def _xpath_costs(expr, profile, est) -> Tuple[float, float, float]:
    fast, ref, rows = _xpath_work(expr, profile, est)
    return FAST_SETUP + fast, REF_SETUP + ref, rows


def _xpath_work(expr, profile, est) -> Tuple[float, float, float]:
    """Setup-free work estimate; filters recurse here so a filter run
    does not re-pay the machinery setup per candidate."""
    n = max(profile.n, 1.0)
    if isinstance(expr, xp.Union_):
        fast = ref = rows = 0.0
        for alt in expr.alternatives:
            f, r, c = _xpath_work(alt, profile, est)
            fast, ref, rows = fast + f, ref + r, rows + c
        return fast, ref, min(rows, n)
    subtree = max(_avg_subtree(profile, est), 1.0)
    fanout = max(profile.avg_fanout, 1.0)
    frontier = 1.0
    fast = ref = 0.0
    for position, step in enumerate(expr.steps):
        if position == 0:
            # The first test applies to the anchor (root or context).
            candidates = frontier
        elif expr.axes[position - 1] == xp.DESCENDANT:
            if position == 1 and getattr(expr, "absolute", False):
                # An absolute path's anchor is the root, whose subtree
                # is the whole tree — the first descendant expansion
                # touches every node, not an average-sized subtree.
                candidates = n
            else:
                candidates = min(frontier * subtree, n)
        else:
            candidates = min(frontier * fanout, n)
        # Reference: walk every candidate; fast: one interval/bitset
        # pass over the whole id space per step.
        ref += candidates
        fast += n / WORD + 1.0
        frontier = max(candidates * _test_selectivity(step.test, profile, est), 0.0)
        for filt in step.filters:
            f_fast, f_ref, f_rows = _xpath_work(filt, profile, est)
            # The reference walker re-runs the filter from every
            # surviving candidate; the fast engine computes the filter
            # once with bitsets and then checks each candidate's
            # interval against it.
            ref += frontier * f_ref
            fast += f_fast + frontier
            # A filter keeps a candidate iff it selects anything.
            frontier *= min(1.0, f_rows + 0.1)
    return fast, ref, frontier


# -- FO ----------------------------------------------------------------------


def _fo_costs(
    formula: TreeFormula,
    profile,
    est: Optional[CardinalityEstimator],
    result_arity: Optional[int],
) -> Tuple[float, float, float]:
    n = max(profile.n, 1.0)
    free = free_variables(formula)
    rows, fast_work = _fo_relation(formula, profile, est)
    depth = _quantifier_depth(formula)
    atoms = _atom_count(formula)
    # The reference evaluator re-walks the formula once per assignment
    # of the free variables, and each walk expands every quantifier
    # block over the full domain.
    ref = REF_SETUP + atoms * REF_EVAL * (n ** min(len(free) + depth, 6))
    fast = FAST_SETUP + fast_work
    if result_arity == 0:
        tries = _sentence_tries(formula, profile, est, n)
        ref = REF_SETUP + atoms * REF_EVAL * tries
        rows = min(rows, 1.0)
    elif result_arity == 1 and len(free) > 1:
        # select: x is bound to the context, y remains.
        rows = min(rows / n, n)
    return fast, ref, rows


def _fo_relation(
    formula: TreeFormula, profile, est: Optional[CardinalityEstimator]
) -> Tuple[float, float]:
    """``(estimated rows, fast-engine work)`` of the satisfying
    -assignment relation, by structural recursion with independence
    assumptions (the classic System-R shape, with the join atoms fed by
    the wander-join sampler)."""
    _, rows, work = _relation_shape(formula, profile, est)
    return rows, work


def _touches(arity: int, rows: float, n: float) -> float:
    """Cost of materialising a relation of ``arity`` with ``rows``
    tuples: the fast engine stores nullary/unary relations as bitsets
    (one machine word per 64 nodes regardless of cardinality), wider
    relations as tuple sets it must touch row by row."""
    if arity <= 1:
        return n / WORD + 1.0
    return rows


def _relation_shape(
    f: TreeFormula, profile, est: Optional[CardinalityEstimator]
) -> Tuple[int, float, float]:
    """``(arity, rows, work)`` of a subformula's satisfying
    -assignment relation under the fast engine's cost model."""
    n = max(profile.n, 1.0)
    if tree_fo.is_atom(f):
        vars_ = free_variables(f)
        rows = _atom_rows(f, profile, est)
        return len(vars_), rows, _touches(len(vars_), rows, n)
    if isinstance(f, Not):
        a, rows, work = _relation_shape(f.inner, profile, est)
        rows = max(n**a - rows, 0.0)
        return a, rows, work + _touches(a, rows, n)
    if isinstance(f, (And, Or)):
        parts = [_relation_shape(p, profile, est) for p in f.parts]
        vars_ = free_variables(f)
        a = len(vars_)
        work = sum(p[2] for p in parts)
        if isinstance(f, And):
            sel = 1.0
            for pa, prows, _ in parts:
                sel *= min(prows / (n**pa), 1.0) if pa else min(prows, 1.0)
            rows = (n**a) * sel
        else:
            rows = 0.0
            for pa, prows, _ in parts:
                rows += prows * (n ** (a - pa))
            rows = min(rows, n**a)
        # Intermediate relations are materialised pairwise.
        work += _touches(a, rows, n) + sum(
            _touches(pa, prows, n) for pa, prows, _ in parts
        )
        return a, rows, work
    if isinstance(f, Implies):
        return _relation_shape(Or((Not(f.premise), f.conclusion)), profile, est)
    if isinstance(f, (Exists, Forall)):
        a, rows, work = _relation_shape(f.inner, profile, est)
        out = max(a - (1 if f.var in free_variables(f.inner) else 0), 0)
        if isinstance(f, Exists):
            projected = min(rows, n**out)
        else:
            projected = min(rows / n, n**out)
        return out, projected, work + _touches(a, rows, n) + 1.0
    raise tree_fo.TreeFormulaError(f"unknown formula node {f!r}")


def _sentence_tries(
    formula: TreeFormula, profile, est: Optional[CardinalityEstimator], n: float
) -> float:
    """Expected assignment scans for the reference model checker on a
    sentence.

    The reference evaluator exits an existential loop at the first
    witness, but the exit is only cheap for the *outermost* variable:
    every outer value that fails still pays a full scan of the
    remaining chain before the loop moves on.  Witnesses project to
    roughly ``min(rows, n)`` outermost values, so the scan tries about
    ``n / min(rows, n)`` outer settings, each costing the rest of the
    space.  Universal (and mixed) prefixes keep the full ``n**depth``
    pessimism: their early exit hinges on where in document order the
    first counterexample sits, which cardinality statistics cannot
    see."""
    peeled = 0
    matrix = formula
    while isinstance(matrix, Exists):
        peeled += 1
        matrix = matrix.inner
    full = n ** min(_quantifier_depth(formula), 6)
    if not peeled:
        return full
    _, rows, _ = _relation_shape(matrix, profile, est)
    if rows <= 0.0:
        return full
    misses = min(n / min(rows, n), n)
    inner_space = n ** min(peeled - 1 + _quantifier_depth(matrix), 6)
    return min(misses * inner_space, full)


def _atom_rows(atom, profile, est: Optional[CardinalityEstimator]) -> float:
    n = max(profile.n, 1.0)
    internal = max(n - getattr(profile, "leaf_count", n / 2), 0.0)
    if isinstance(atom, TrueF):
        return 1.0
    if isinstance(atom, FalseF):
        return 0.0
    if isinstance(atom, Label):
        if est is not None:
            return float(est.label_count(atom.symbol))
        return profile.label_fraction(atom.symbol) * n
    if isinstance(atom, Root):
        return 1.0
    if isinstance(atom, Leaf):
        return float(getattr(profile, "leaf_count", n / 2))
    if isinstance(atom, (First, Last)):
        return internal  # one first (last) child per internal node
    if isinstance(atom, ValConst):
        if est is not None:
            return float(est.count(est.index.valued(atom.attr, atom.value)))
        return n / 3.0
    if isinstance(atom, NodeEq):
        return n
    if isinstance(atom, Edge):
        return 0.0 if atom.parent == atom.child else n - 1.0
    if isinstance(atom, Succ):
        return 0.0 if atom.left == atom.right else max(n - 1.0 - internal, 0.0)
    if isinstance(atom, SibLess):
        if atom.left == atom.right:
            return 0.0
        fanout = max(profile.avg_fanout, 1.0)
        return internal * fanout * (fanout - 1.0) / 2.0
    if isinstance(atom, Desc):
        if atom.ancestor == atom.descendant:
            return 0.0
        if est is not None:
            all_mask = est.index.all_mask
            return float(est.descendant_pairs(all_mask, all_mask))
        return n * profile.avg_subtree
    if isinstance(atom, ValEq):
        if atom.left == atom.right:
            return n / 3.0
        if est is not None:
            return float(est.value_join(atom.attr_left, atom.attr_right))
        return n * n / 9.0
    return n  # unknown atom: assume nothing


def _quantifier_depth(formula: TreeFormula) -> int:
    if tree_fo.is_atom(formula):
        return 0
    if isinstance(formula, Not):
        return _quantifier_depth(formula.inner)
    if isinstance(formula, (And, Or)):
        return max(_quantifier_depth(p) for p in formula.parts)
    if isinstance(formula, Implies):
        return max(
            _quantifier_depth(formula.premise),
            _quantifier_depth(formula.conclusion),
        )
    if isinstance(formula, (Exists, Forall)):
        return 1 + _quantifier_depth(formula.inner)
    return 0


def _atom_count(formula: TreeFormula) -> int:
    if tree_fo.is_atom(formula):
        return 1
    if isinstance(formula, Not):
        return _atom_count(formula.inner)
    if isinstance(formula, (And, Or)):
        return sum(_atom_count(p) for p in formula.parts)
    if isinstance(formula, Implies):
        return _atom_count(formula.premise) + _atom_count(formula.conclusion)
    if isinstance(formula, (Exists, Forall)):
        return _atom_count(formula.inner)
    return 1


# -- walking -----------------------------------------------------------------


def _walk_directions(compiled) -> frozenset:
    """The move directions the compiled walk can take — what its
    closures can reach, hence what its answers can span."""
    return frozenset(
        atom[1]
        for state in compiled.edges
        for atom, _targets in state
        if atom[0] == "move"
    )


def _walk_costs(
    compiled, profile, relation: bool
) -> Tuple[float, float, float]:
    states = compiled.state_count
    n = max(profile.n, 1.0)
    height = max(getattr(profile, "height", 1.0), 1.0) + 1.0
    words = n / WORD + 1.0
    # How far one start node's closure travels, from the profile's
    # height/mean-subtree statistics — a ``down*`` spine is bounded by
    # the height, a ``(down|right)*`` sweep by the mean subtree, an
    # ``up*`` chain by the mean depth (see closure_reach_estimate).
    reach = closure_reach_estimate(profile, _walk_directions(compiled))
    if relation:
        # Stacked all-pairs BFS: n frontiers of n-bit sets per state
        # sweep vs one per-context NFA search per start node.
        fast = FAST_SETUP + states * height * words * words * WORD / 4.0
        ref = REF_SETUP + states * n * n
        rows = n * min(reach, n) / 2.0
    else:
        fast = FAST_SETUP + states * height * words
        ref = REF_SETUP + states * n
        rows = min(n, reach) / 2.0 + 0.5
    return fast, ref, rows
