"""The indexed, set-at-a-time query engine.

Fast counterparts of the reference evaluators, built on one compiled
:class:`~repro.engine.index.TreeIndex` per document:

* :mod:`repro.engine.index` — dense preorder ids, interval labels
  (O(1) ``descendant``), navigation arrays and inverted indexes, with
  node sets as Python-int bitsets;
* :mod:`repro.engine.fo` — bottom-up relational FO evaluation
  (join/project/co-project over satisfying-assignment relations, with
  on-the-fly miniscoping);
* :mod:`repro.engine.xpath` — bitset/interval XPath evaluation with
  subtree-range descendant steps;
* :mod:`repro.engine.walk` — compiled caterpillar expressions
  evaluated as frontier-bitset reachability in the (state × node)
  product over the index's move graphs;
* :mod:`repro.engine.stats` — tree/corpus statistics with content
  fingerprints, plus wander-join-sampled join cardinality estimates;
* :mod:`repro.engine.planner` — the cost-based adaptive planner behind
  ``engine="auto"``: per-engine cost estimates, cached plans keyed by
  query text + statistics fingerprint, and guarded execution that
  re-plans onto the reference engine when actual work overshoots the
  estimate.

Both engines are semantically interchangeable with the references in
:mod:`repro.logic.tree_fo` and :mod:`repro.xpath.evaluator`; the
differential oracle and the hypothesis suites keep them that way.
"""

from .fo import evaluate, relation_of, satisfying_assignments
from .fo import select as fo_select
from .index import TreeIndex, bit_count, index_for, iter_bits
from .planner import Plan, Planner, default_planner
from .stats import (
    CardinalityEstimator,
    CorpusStatistics,
    TreeStatistics,
    corpus_statistics,
    tree_statistics,
)
from .walk import CompiledWalk, WalkEvaluator, compile_walk
from .walk import matches as walk_matches
from .walk import relation as walk_relation
from .walk import walk as walk_select
from .xpath import select as xpath_select

__all__ = [
    "TreeIndex",
    "index_for",
    "iter_bits",
    "bit_count",
    "evaluate",
    "satisfying_assignments",
    "relation_of",
    "fo_select",
    "xpath_select",
    "CompiledWalk",
    "WalkEvaluator",
    "compile_walk",
    "walk_select",
    "walk_relation",
    "walk_matches",
    "Plan",
    "Planner",
    "default_planner",
    "TreeStatistics",
    "CorpusStatistics",
    "CardinalityEstimator",
    "tree_statistics",
    "corpus_statistics",
]
