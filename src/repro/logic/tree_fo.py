"""First-order logic over the tree vocabulary τ_{Σ,A} (Section 2.2).

A tree is viewed as the logical structure with domain ``Dom(t)`` and

* ``E(x, y)``      — y is a child of x;
* ``x < y``        — sibling order (same parent, x earlier);
* ``x ≺ y``        — y is a proper descendant of x;
* ``O_σ(x)``       — x is labelled σ;
* ``val_a(x)``     — the a-attribute of x (a *function* into D ∪ {⊥}).

Atomic formulas: ``E(x,y)``, ``x < y``, ``x ≺ y``, ``O_σ(x)``,
``x = y``, ``val_a(x) = val_b(y)``, ``val_a(x) = d``.  FO closes these
under booleans and quantification over Dom(t).

The extra unary/binary predicates of §2.3 — ``root``, ``leaf``,
``first``, ``last``, ``succ`` — are FO-definable but *not*
FO(∃*)-definable, so they are provided as primitive atoms (exactly the
paper's move).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple, Union

from ..resilience.budget import current_context as _current_context
from ..trees.node import NodeId
from ..trees.tree import Tree
from ..trees.values import BOTTOM, DataValue, is_data_value


class TreeFormulaError(ValueError):
    """Raised on ill-formed tree formulas or evaluation errors."""


@dataclass(frozen=True)
class NVar:
    """A node variable (ranges over Dom(t))."""

    name: str

    def __repr__(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrueF:
    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseF:
    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Edge:
    """E(x, y): y is a child of x."""

    parent: NVar
    child: NVar

    def __repr__(self) -> str:
        return f"E({self.parent!r}, {self.child!r})"


@dataclass(frozen=True)
class SibLess:
    """x < y on siblings."""

    left: NVar
    right: NVar

    def __repr__(self) -> str:
        return f"{self.left!r} < {self.right!r}"


@dataclass(frozen=True)
class Desc:
    """x ≺ y: y is a proper descendant of x."""

    ancestor: NVar
    descendant: NVar

    def __repr__(self) -> str:
        return f"{self.ancestor!r} ≺ {self.descendant!r}"


@dataclass(frozen=True)
class Label:
    """O_σ(x)."""

    symbol: str
    var: NVar

    def __repr__(self) -> str:
        return f"O_{self.symbol}({self.var!r})"


@dataclass(frozen=True)
class NodeEq:
    """x = y."""

    left: NVar
    right: NVar

    def __repr__(self) -> str:
        return f"{self.left!r} = {self.right!r}"


@dataclass(frozen=True)
class ValEq:
    """val_a(x) = val_b(y)."""

    attr_left: str
    left: NVar
    attr_right: str
    right: NVar

    def __repr__(self) -> str:
        return f"val_{self.attr_left}({self.left!r}) = val_{self.attr_right}({self.right!r})"


@dataclass(frozen=True)
class ValConst:
    """val_a(x) = d."""

    attr: str
    var: NVar
    value: DataValue

    def __post_init__(self) -> None:
        if not is_data_value(self.value):
            raise TreeFormulaError(f"constant must be in D: {self.value!r}")

    def __repr__(self) -> str:
        return f"val_{self.attr}({self.var!r}) = {self.value!r}"


# -- the §2.3 extra predicates (FO-definable, FO(∃*)-primitive) --------------


@dataclass(frozen=True)
class Root:
    var: NVar

    def __repr__(self) -> str:
        return f"root({self.var!r})"


@dataclass(frozen=True)
class Leaf:
    var: NVar

    def __repr__(self) -> str:
        return f"leaf({self.var!r})"


@dataclass(frozen=True)
class First:
    var: NVar

    def __repr__(self) -> str:
        return f"first({self.var!r})"


@dataclass(frozen=True)
class Last:
    var: NVar

    def __repr__(self) -> str:
        return f"last({self.var!r})"


@dataclass(frozen=True)
class Succ:
    """succ(x, y): y is the immediate right sibling of x."""

    left: NVar
    right: NVar

    def __repr__(self) -> str:
        return f"succ({self.left!r}, {self.right!r})"


# ---------------------------------------------------------------------------
# Connectives & quantifiers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Not:
    inner: "TreeFormula"

    def __repr__(self) -> str:
        return f"¬({self.inner!r})"


@dataclass(frozen=True)
class And:
    parts: Tuple["TreeFormula", ...]

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or:
    parts: Tuple["TreeFormula", ...]

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Implies:
    premise: "TreeFormula"
    conclusion: "TreeFormula"

    def __repr__(self) -> str:
        return f"({self.premise!r} → {self.conclusion!r})"


@dataclass(frozen=True)
class Exists:
    var: NVar
    inner: "TreeFormula"

    def __repr__(self) -> str:
        return f"∃{self.var!r} {self.inner!r}"


@dataclass(frozen=True)
class Forall:
    var: NVar
    inner: "TreeFormula"

    def __repr__(self) -> str:
        return f"∀{self.var!r} {self.inner!r}"


Atom = Union[
    TrueF, FalseF, Edge, SibLess, Desc, Label, NodeEq, ValEq, ValConst,
    Root, Leaf, First, Last, Succ,
]
TreeFormula = Union[Atom, Not, And, Or, Implies, Exists, Forall]

_ATOM_TYPES = (
    TrueF, FalseF, Edge, SibLess, Desc, Label, NodeEq, ValEq, ValConst,
    Root, Leaf, First, Last, Succ,
)
_EXTRA_PREDICATES = (Root, Leaf, First, Last, Succ)


def is_atom(formula: TreeFormula) -> bool:
    """True iff ``formula`` is atomic (incl. the §2.3 extra predicates)."""
    return isinstance(formula, _ATOM_TYPES)


def uses_extra_predicates(formula: TreeFormula) -> bool:
    """True iff the formula mentions root/leaf/first/last/succ."""
    return any(isinstance(sub, _EXTRA_PREDICATES) for sub in subformulas(formula))


# -- constructor helpers ------------------------------------------------------


def conj(*parts: TreeFormula) -> TreeFormula:
    parts = tuple(parts)
    if not parts:
        return TrueF()
    if len(parts) == 1:
        return parts[0]
    return And(parts)


def disj(*parts: TreeFormula) -> TreeFormula:
    parts = tuple(parts)
    if not parts:
        return FalseF()
    if len(parts) == 1:
        return parts[0]
    return Or(parts)


def implies(premise: TreeFormula, conclusion: TreeFormula) -> Implies:
    return Implies(premise, conclusion)


def exists(variables: Union[NVar, Sequence[NVar]], inner: TreeFormula) -> TreeFormula:
    if isinstance(variables, NVar):
        variables = [variables]
    out = inner
    for var in reversed(list(variables)):
        out = Exists(var, out)
    return out


def forall(variables: Union[NVar, Sequence[NVar]], inner: TreeFormula) -> TreeFormula:
    if isinstance(variables, NVar):
        variables = [variables]
    out = inner
    for var in reversed(list(variables)):
        out = Forall(var, out)
    return out


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------


class _IdentityCache:
    """A bounded FIFO cache keyed on object *identity*.

    Formula nodes are frozen dataclasses, so hashing one is O(subtree)
    — far more than the analyses below.  Keying on ``id()`` makes the
    lookup O(1); keeping a strong reference to each key pins the object
    alive while cached, so its id can never be recycled under us.
    """

    __slots__ = ("_data", "maxsize")

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._data: "OrderedDict[int, Tuple[object, object]]" = OrderedDict()

    def get(self, key: object):
        hit = self._data.get(id(key))
        return hit[1] if hit is not None else None

    def put(self, key: object, value: object) -> None:
        data = self._data
        while len(data) >= self.maxsize:
            data.popitem(last=False)
        data[id(key)] = (key, value)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


#: Bound on each memo table: comfortably above the subformula count of
#: any formula this repo manipulates, small enough to never matter.
_ANALYSIS_CACHE_SIZE = 16384

_SUBFORMULAS_CACHE = _IdentityCache(_ANALYSIS_CACHE_SIZE)
_FREE_VARIABLES_CACHE = _IdentityCache(_ANALYSIS_CACHE_SIZE)


def clear_analysis_caches() -> None:
    """Drop the memoized ``subformulas``/``free_variables`` results."""
    _SUBFORMULAS_CACHE.clear()
    _FREE_VARIABLES_CACHE.clear()


def subformulas(formula: TreeFormula) -> Tuple[TreeFormula, ...]:
    """All subformulas, the formula itself included (preorder).

    Memoized per formula object: ``evaluate`` consults the analyses on
    every call, and set-at-a-time evaluation revisits subformulas many
    times, so each node is traversed once instead of once per query.
    """
    cached = _SUBFORMULAS_CACHE.get(formula)
    if cached is not None:
        return cached
    if isinstance(formula, Not):
        out = (formula,) + subformulas(formula.inner)
    elif isinstance(formula, (And, Or)):
        out = (formula,)
        for part in formula.parts:
            out += subformulas(part)
    elif isinstance(formula, Implies):
        out = (
            (formula,)
            + subformulas(formula.premise)
            + subformulas(formula.conclusion)
        )
    elif isinstance(formula, (Exists, Forall)):
        out = (formula,) + subformulas(formula.inner)
    else:
        out = (formula,)
    _SUBFORMULAS_CACHE.put(formula, out)
    return out


def free_variables(formula: TreeFormula) -> FrozenSet[NVar]:
    """Free node variables of ``formula`` (memoized per formula object)."""
    cached = _FREE_VARIABLES_CACHE.get(formula)
    if cached is not None:
        return cached
    out = _free_variables_uncached(formula)
    _FREE_VARIABLES_CACHE.put(formula, out)
    return out


def _free_variables_uncached(formula: TreeFormula) -> FrozenSet[NVar]:
    if isinstance(formula, (TrueF, FalseF)):
        return frozenset()
    if isinstance(formula, (Edge, Succ)):
        return frozenset(
            (formula.parent, formula.child)
            if isinstance(formula, Edge)
            else (formula.left, formula.right)
        )
    if isinstance(formula, (SibLess, NodeEq)):
        return frozenset((formula.left, formula.right))
    if isinstance(formula, Desc):
        return frozenset((formula.ancestor, formula.descendant))
    if isinstance(formula, (Label, ValConst, Root, Leaf, First, Last)):
        return frozenset((formula.var,))
    if isinstance(formula, ValEq):
        return frozenset((formula.left, formula.right))
    if isinstance(formula, Not):
        return free_variables(formula.inner)
    if isinstance(formula, (And, Or)):
        out: FrozenSet[NVar] = frozenset()
        for part in formula.parts:
            out |= free_variables(part)
        return out
    if isinstance(formula, Implies):
        return free_variables(formula.premise) | free_variables(formula.conclusion)
    if isinstance(formula, (Exists, Forall)):
        return free_variables(formula.inner) - {formula.var}
    raise TreeFormulaError(f"unknown formula node {formula!r}")


def variables(formula: TreeFormula) -> FrozenSet[NVar]:
    """All variables, bound or free (the paper's k-variable counting)."""
    out = set()
    for sub in subformulas(formula):
        if isinstance(sub, (Exists, Forall)):
            out.add(sub.var)
        else:
            out |= free_variables(sub) if is_atom(sub) else set()
    return frozenset(out) | free_variables(formula)


def quantifier_free(formula: TreeFormula) -> bool:
    """True iff no quantifier occurs."""
    return not any(
        isinstance(sub, (Exists, Forall)) for sub in subformulas(formula)
    )


# ---------------------------------------------------------------------------
# Evaluation (model checking over Dom(t))
# ---------------------------------------------------------------------------


def _val(tree: Tree, attr: str, node: NodeId):
    return tree.val(attr, node)


def _eval_atom(atom: Atom, env: Dict[NVar, NodeId], tree: Tree) -> bool:
    def node_of(var: NVar) -> NodeId:
        try:
            return env[var]
        except KeyError:
            raise TreeFormulaError(f"unbound variable {var!r}") from None

    if isinstance(atom, TrueF):
        return True
    if isinstance(atom, FalseF):
        return False
    if isinstance(atom, Edge):
        return tree.edge(node_of(atom.parent), node_of(atom.child))
    if isinstance(atom, SibLess):
        return tree.sibling_less(node_of(atom.left), node_of(atom.right))
    if isinstance(atom, Desc):
        return tree.descendant(node_of(atom.ancestor), node_of(atom.descendant))
    if isinstance(atom, Label):
        return tree.label(node_of(atom.var)) == atom.symbol
    if isinstance(atom, NodeEq):
        return node_of(atom.left) == node_of(atom.right)
    if isinstance(atom, ValEq):
        left = _val(tree, atom.attr_left, node_of(atom.left))
        right = _val(tree, atom.attr_right, node_of(atom.right))
        return left == right
    if isinstance(atom, ValConst):
        return _val(tree, atom.attr, node_of(atom.var)) == atom.value
    if isinstance(atom, Root):
        return tree.is_root(node_of(atom.var))
    if isinstance(atom, Leaf):
        return tree.is_leaf(node_of(atom.var))
    if isinstance(atom, First):
        return tree.is_first_child(node_of(atom.var))
    if isinstance(atom, Last):
        return tree.is_last_child(node_of(atom.var))
    if isinstance(atom, Succ):
        return tree.right_sibling(node_of(atom.left)) == node_of(atom.right)
    raise TreeFormulaError(f"unknown atom {atom!r}")


def evaluate(
    formula: TreeFormula,
    tree: Tree,
    assignment: Optional[Dict[NVar, NodeId]] = None,
) -> bool:
    """Model-check ``formula`` on ``tree`` under ``assignment`` (which must
    bind every free variable)."""
    env = dict(assignment or {})
    missing = free_variables(formula) - set(env)
    if missing:
        raise TreeFormulaError(
            f"unbound free variables: {sorted(v.name for v in missing)}"
        )
    return _eval(formula, env, tree)


def _eval(formula: TreeFormula, env: Dict[NVar, NodeId], tree: Tree) -> bool:
    # Cooperative budget checkpoint (repro.resilience): one unit per
    # (sub)formula × assignment — this recursion IS the n^k hot loop.
    context = _current_context()
    if context is not None:
        context.checkpoint()
    if is_atom(formula):
        return _eval_atom(formula, env, tree)  # type: ignore[arg-type]
    if isinstance(formula, Not):
        return not _eval(formula.inner, env, tree)
    if isinstance(formula, And):
        return all(_eval(p, env, tree) for p in formula.parts)
    if isinstance(formula, Or):
        return any(_eval(p, env, tree) for p in formula.parts)
    if isinstance(formula, Implies):
        return (not _eval(formula.premise, env, tree)) or _eval(
            formula.conclusion, env, tree
        )
    if isinstance(formula, Exists):
        saved = env.get(formula.var)
        for node in tree.nodes:
            env[formula.var] = node
            if _eval(formula.inner, env, tree):
                _restore(env, formula.var, saved)
                return True
        _restore(env, formula.var, saved)
        return False
    if isinstance(formula, Forall):
        saved = env.get(formula.var)
        for node in tree.nodes:
            env[formula.var] = node
            if not _eval(formula.inner, env, tree):
                _restore(env, formula.var, saved)
                return False
        _restore(env, formula.var, saved)
        return True
    raise TreeFormulaError(f"unknown formula node {formula!r}")


def _restore(env: Dict[NVar, NodeId], var: NVar, saved: Optional[NodeId]) -> None:
    if saved is None:
        env.pop(var, None)
    else:
        env[var] = saved


def satisfying_assignments(
    formula: TreeFormula,
    tree: Tree,
    variables_order: Sequence[NVar],
) -> FrozenSet[Tuple[NodeId, ...]]:
    """All tuples of nodes (ordered by ``variables_order``) satisfying
    ``formula``; the free variables must be exactly those listed."""
    free = free_variables(formula)
    if free != frozenset(variables_order):
        raise TreeFormulaError(
            f"free variables {sorted(v.name for v in free)} differ from "
            f"requested order {[v.name for v in variables_order]}"
        )
    out = []

    def assign(index: int, env: Dict[NVar, NodeId]) -> None:
        if index == len(variables_order):
            if _eval(formula, env, tree):
                out.append(tuple(env[v] for v in variables_order))
            return
        for node in tree.nodes:
            env[variables_order[index]] = node
            assign(index + 1, env)
        env.pop(variables_order[index], None)

    assign(0, {})
    return frozenset(out)
