"""The FO(∃*) fragment (Section 2.3) and its binary queries.

FO(∃*) is the set of prenex formulas whose quantifier prefix is purely
existential; the quantifier-free matrix may additionally use the
primitive predicates ``root``, ``leaf``, ``first``, ``last`` and
``succ`` (FO-definable, but not within FO(∃*)).  The paper abstracts
XPath by *binary* FO(∃*) formulas φ(x, y): ``x`` the current node,
``y`` the selected node.  The ``atp`` construct of tree-walking
automata starts subcomputations at every ``y`` with ``t ⊨ φ(u, y)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..trees.node import NodeId
from ..trees.tree import Tree
from . import tree_fo
from .tree_fo import (
    Exists,
    Forall,
    Not,
    NVar,
    TreeFormula,
    TreeFormulaError,
    free_variables,
    quantifier_free,
    subformulas,
)


class FragmentError(TreeFormulaError):
    """Raised when a formula lies outside FO(∃*)."""


def strip_prefix(formula: TreeFormula) -> Tuple[List[NVar], TreeFormula]:
    """Split a prenex formula into its ∃-prefix and matrix.

    Raises :class:`FragmentError` if a universal quantifier heads the
    prefix or a quantifier occurs inside the matrix.
    """
    prefix: List[NVar] = []
    body = formula
    while isinstance(body, Exists):
        prefix.append(body.var)
        body = body.inner
    if isinstance(body, Forall):
        raise FragmentError("universal quantifier in FO(∃*) prefix")
    if not quantifier_free(body):
        raise FragmentError("quantifier inside the matrix (formula not prenex)")
    return prefix, body


def is_exists_star(formula: TreeFormula) -> bool:
    """True iff ``formula`` lies in FO(∃*)."""
    try:
        strip_prefix(formula)
    except FragmentError:
        return False
    return True


def variable_count(formula: TreeFormula) -> int:
    """Total number of distinct variables (the k of k-variable types)."""
    return len(tree_fo.variables(formula))


@dataclass(frozen=True)
class ExistsStarQuery:
    """A binary FO(∃*) query φ(x, y): current node x, selected node y.

    This is the selector language of ``atp(φ(x,y), q)`` (Definition
    3.1, clause 3) — the paper's abstraction of an XPath pattern.
    """

    formula: TreeFormula
    x: NVar = NVar("x")
    y: NVar = NVar("y")

    def __post_init__(self) -> None:
        if not is_exists_star(self.formula):
            raise FragmentError(f"not an FO(∃*) formula: {self.formula!r}")
        free = free_variables(self.formula)
        if not free <= {self.x, self.y}:
            extra = sorted(v.name for v in free - {self.x, self.y})
            raise FragmentError(
                f"selector may only use {self.x.name!r} and {self.y.name!r} "
                f"free; also found {extra}"
            )

    def select(self, tree: Tree, current: NodeId) -> Tuple[NodeId, ...]:
        """All nodes v with ``t ⊨ φ(current, v)``, in document order."""
        tree.require(current)
        free = free_variables(self.formula)
        out = []
        for candidate in tree.nodes:
            env = {}
            if self.x in free:
                env[self.x] = current
            if self.y in free:
                env[self.y] = candidate
            if tree_fo.evaluate(self.formula, tree, env):
                out.append(candidate)
        if self.y not in free:
            # φ does not mention y: it selects every node or none.
            return tuple(tree.nodes) if out else ()
        return tuple(out)

    def holds(self, tree: Tree, current: NodeId, selected: NodeId) -> bool:
        """``t ⊨ φ(current, selected)``."""
        free = free_variables(self.formula)
        env = {}
        if self.x in free:
            env[self.x] = current
        if self.y in free:
            env[self.y] = selected
        return tree_fo.evaluate(self.formula, tree, env)

    def size(self) -> int:
        """Number of subformula nodes (enters the automaton size |B|)."""
        return sum(1 for _ in subformulas(self.formula))

    def __repr__(self) -> str:
        return f"φ({self.x.name},{self.y.name}) = {self.formula!r}"


# ---------------------------------------------------------------------------
# Stock selectors (the single-node ones double as tw^l look-aheads)
# ---------------------------------------------------------------------------

X = NVar("x")
Y = NVar("y")


def selector(formula: TreeFormula) -> ExistsStarQuery:
    """Wrap a formula over free variables x, y as a selector."""
    return ExistsStarQuery(formula, X, Y)


def self_selector() -> ExistsStarQuery:
    """Selects the current node itself."""
    return selector(tree_fo.NodeEq(X, Y))


def parent_selector() -> ExistsStarQuery:
    """Selects the parent (single node; admissible in tw^l)."""
    return selector(tree_fo.Edge(Y, X))


def first_child_selector() -> ExistsStarQuery:
    """Selects the first child (single node; admissible in tw^l)."""
    return selector(
        tree_fo.conj(tree_fo.Edge(X, Y), tree_fo.First(Y))
    )


def children_selector() -> ExistsStarQuery:
    """Selects all children."""
    return selector(tree_fo.Edge(X, Y))


def descendants_selector() -> ExistsStarQuery:
    """Selects all proper descendants (``x ≺ y``)."""
    return selector(tree_fo.Desc(X, Y))


def descendants_with_label(symbol: str) -> ExistsStarQuery:
    """All σ-labelled proper descendants."""
    return selector(
        tree_fo.conj(tree_fo.Desc(X, Y), tree_fo.Label(symbol, Y))
    )


def leaves_selector() -> ExistsStarQuery:
    """All leaf descendants (φ ≡ x ≺ y ∧ leaf(y))."""
    return selector(
        tree_fo.conj(tree_fo.Desc(X, Y), tree_fo.Leaf(Y))
    )


def is_single_valued(query: ExistsStarQuery, tree: Tree) -> bool:
    """Runtime check of the tw^l restriction: on this tree, the selector
    never picks more than one node from any start."""
    return all(len(query.select(tree, u)) <= 1 for u in tree.nodes)


_FUNCTIONAL_BUILDERS = (self_selector, parent_selector, first_child_selector)


def functional_selectors() -> Tuple[ExistsStarQuery, ...]:
    """The stock selectors guaranteed to select at most one node on every
    tree (the syntactic tw^l whitelist of Definition 5.1)."""
    return tuple(builder() for builder in _FUNCTIONAL_BUILDERS)
