"""A concrete text syntax for FO over τ_{Σ,A}.

Writing formula ASTs by hand is verbose; this parser accepts the
notation the paper uses, ASCII-fied::

    forall x (O_dept(x) -> exists y (E(x, y) & val_cur(y) = "EUR"))
    exists x y (x << y & ~val_a(x) = val_a(y))
    root(x) | leaf(x) | first(x) | last(x) | succ(x, y)
    x < y          -- sibling order
    x << y         -- descendant (the paper's ≺)

Unicode connectives are accepted too (∀ ∃ ∧ ∨ ¬ → ≺).  Grammar
(precedence low → high)::

    formula  := quantified | iff
    quantified := ("forall"|"exists"|∀|∃) var+ formula
    iff      := implies ("<->" implies)*
    implies  := or ("->" or)*             (right-assoc)
    or       := and (("|"|∨) and)*
    and      := unary (("&"|∧) unary)*
    unary    := ("~"|¬) unary | atom | "(" formula ")"
    atom     := E(x,y) | succ(x,y) | O_<label>(x) | root(x) | leaf(x)
              | first(x) | last(x) | true | false
              | x = y | x < y | x << y
              | val_<a>(x) = val_<b>(y) | val_<a>(x) = <const>

Constants are double-quoted strings or integers.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..resilience.errors import ParseError
from ..trees.values import DataValue
from . import tree_fo as T
from .tree_fo import NVar, TreeFormula, TreeFormulaError


class FormulaSyntaxError(TreeFormulaError, ParseError):
    """Raised on malformed formula text, with position info."""

    def __init__(self, message: str, text: str, pos: int) -> None:
        super().__init__(f"{message} at {pos}: ...{text[pos:pos + 25]!r}")
        self.pos = pos


_KEYWORDS = {
    "forall": "forall", "∀": "forall",
    "exists": "exists", "∃": "exists",
    "true": "true", "false": "false",
    "root": "root", "leaf": "leaf", "first": "first", "last": "last",
    "succ": "succ",
}


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch.isspace():
                self.pos += 1
            elif self.text.startswith("--", self.pos):
                end = self.text.find("\n", self.pos)
                self.pos = len(self.text) if end < 0 else end + 1
            else:
                break

    def peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.text[i] if i < len(self.text) else ""

    def take(self, literal: str) -> bool:
        self.skip_ws()
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.take(literal):
            raise FormulaSyntaxError(f"expected {literal!r}", self.text, self.pos)

    def error(self, message: str) -> FormulaSyntaxError:
        return FormulaSyntaxError(message, self.text, self.pos)

    def word(self) -> Optional[str]:
        self.skip_ws()
        start = self.pos
        if self.pos < len(self.text) and self.text[self.pos] in "∀∃":
            self.pos += 1
            return self.text[start : self.pos]
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_σδ▽▷◁△"
        ):
            self.pos += 1
        return self.text[start : self.pos] if self.pos > start else None


def _parse_constant(sc: _Scanner) -> DataValue:
    sc.skip_ws()
    ch = sc.peek()
    if ch in ('"', "'"):
        quote = ch
        sc.pos += 1
        out: List[str] = []
        while True:
            if sc.pos >= len(sc.text):
                raise sc.error("unterminated string constant")
            c = sc.text[sc.pos]
            sc.pos += 1
            if c == quote:
                return "".join(out)
            if c == "\\":
                out.append(sc.text[sc.pos])
                sc.pos += 1
            else:
                out.append(c)
    if ch == "-" or ch.isdigit():
        start = sc.pos
        if ch == "-":
            sc.pos += 1
        while sc.pos < len(sc.text) and sc.text[sc.pos].isdigit():
            sc.pos += 1
        return int(sc.text[start : sc.pos])
    raise sc.error("expected a constant (quoted string or integer)")


class _Parser:
    def __init__(self, text: str) -> None:
        self.sc = _Scanner(text)

    # -- formula levels -----------------------------------------------------------

    def formula(self) -> TreeFormula:
        quantified = self._try_quantified()
        if quantified is not None:
            return quantified
        return self.iff()

    def _try_quantified(self) -> Optional[TreeFormula]:
        self.sc.skip_ws()
        saved = self.sc.pos
        word = self.sc.word()
        if word not in ("forall", "∀", "exists", "∃"):
            self.sc.pos = saved
            return None
        kind = _KEYWORDS[word]
        variables: List[NVar] = []
        positions: List[int] = []  # scanner position after each variable
        while True:
            self.sc.skip_ws()
            saved_var = self.sc.pos
            name = self.sc.word()
            if name is None or name in _KEYWORDS or self.sc.peek() == "(":
                # not a bare variable: the quantified body starts here
                self.sc.pos = saved_var
                break
            variables.append(NVar(name))
            positions.append(self.sc.pos)
        if not variables:
            raise self.sc.error(f"{kind} needs at least one variable")
        build = T.forall if kind == "forall" else T.exists
        # `exists y x = y` is ambiguous without parentheses: the greedy
        # variable list may have swallowed the first variable of the
        # body.  Backtrack from the longest prefix until the body parses.
        last_error: Optional[FormulaSyntaxError] = None
        for count in range(len(variables), 0, -1):
            self.sc.pos = positions[count - 1]
            try:
                body = self.formula()
            except FormulaSyntaxError as error:
                last_error = error
                continue
            return build(variables[:count], body)
        assert last_error is not None
        raise last_error

    def iff(self) -> TreeFormula:
        left = self.implies()
        while self.sc.take("<->"):
            right = self.implies()
            left = T.conj(T.implies(left, right), T.implies(right, left))
        return left

    def implies(self) -> TreeFormula:
        left = self.or_()
        if self.sc.take("->") or self.sc.take("→"):
            return T.implies(left, self.implies())  # right associative
        return left

    def or_(self) -> TreeFormula:
        parts = [self.and_()]
        while self.sc.take("|") or self.sc.take("∨"):
            parts.append(self.and_())
        return T.disj(*parts)

    def and_(self) -> TreeFormula:
        parts = [self.unary()]
        while self.sc.take("&") or self.sc.take("∧"):
            parts.append(self.unary())
        return T.conj(*parts)

    def unary(self) -> TreeFormula:
        if self.sc.take("~") or self.sc.take("¬"):
            return T.Not(self.unary())
        quantified = self._try_quantified()
        if quantified is not None:
            return quantified
        self.sc.skip_ws()
        if self.sc.peek() == "(":
            self.sc.expect("(")
            inner = self.formula()
            self.sc.expect(")")
            return inner
        return self.atom()

    # -- atoms --------------------------------------------------------------------------

    def _var(self) -> NVar:
        name = self.sc.word()
        if name is None or name in _KEYWORDS:
            raise self.sc.error("expected a variable")
        return NVar(name)

    def _paren_vars(self, count: int) -> List[NVar]:
        self.sc.expect("(")
        out = [self._var()]
        for _ in range(count - 1):
            self.sc.expect(",")
            out.append(self._var())
        self.sc.expect(")")
        return out

    def atom(self) -> TreeFormula:
        self.sc.skip_ws()
        saved = self.sc.pos
        word = self.sc.word()
        if word is None:
            raise self.sc.error("expected an atom")
        if word == "true":
            return T.TrueF()
        if word == "false":
            return T.FalseF()
        if word == "E":
            x, y = self._paren_vars(2)
            return T.Edge(x, y)
        if word == "succ":
            x, y = self._paren_vars(2)
            return T.Succ(x, y)
        if word in ("root", "leaf", "first", "last"):
            (x,) = self._paren_vars(1)
            return {
                "root": T.Root, "leaf": T.Leaf,
                "first": T.First, "last": T.Last,
            }[word](x)
        if word.startswith("O_") and len(word) > 2:
            (x,) = self._paren_vars(1)
            return T.Label(word[2:], x)
        if word.startswith("val_") and len(word) > 4:
            return self._val_atom(word[4:])
        # variable comparison: x = y, x < y, x << y
        self.sc.pos = saved
        left = self._var()
        if self.sc.take("="):
            return T.NodeEq(left, self._var())
        if self.sc.take("<<") or self.sc.take("≺"):
            return T.Desc(left, self._var())
        if self.sc.take("<"):
            return T.SibLess(left, self._var())
        raise self.sc.error("expected =, < or << after a variable")

    def _val_atom(self, attr: str) -> TreeFormula:
        self.sc.expect("(")
        x = self._var()
        self.sc.expect(")")
        self.sc.expect("=")
        self.sc.skip_ws()
        saved = self.sc.pos
        word = self.sc.word()
        if word is not None and word.startswith("val_") and self.sc.peek() == "(":
            other_attr = word[4:]
            self.sc.expect("(")
            y = self._var()
            self.sc.expect(")")
            return T.ValEq(attr, x, other_attr, y)
        self.sc.pos = saved
        return T.ValConst(attr, x, _parse_constant(self.sc))


def _format_constant(value: DataValue) -> str:
    if isinstance(value, int):
        return str(value)
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _format_child(formula: TreeFormula) -> str:
    """Render a subformula so it parses as one ``unary`` unit."""
    text = format_formula(formula)
    if T.is_atom(formula) or isinstance(formula, T.Not):
        return text
    return text if text.startswith("(") else f"({text})"


def format_formula(formula: TreeFormula) -> str:
    """Render a formula back into the parser's ASCII syntax.

    Inverse of :func:`parse_formula` on normalized formulas (as built by
    :func:`~repro.logic.tree_fo.conj` / ``disj``, i.e. no one-part
    conjunctions): ``parse_formula(format_formula(f)) == f``.
    """
    if isinstance(formula, T.TrueF):
        return "true"
    if isinstance(formula, T.FalseF):
        return "false"
    if isinstance(formula, T.Edge):
        return f"E({formula.parent.name}, {formula.child.name})"
    if isinstance(formula, T.Succ):
        return f"succ({formula.left.name}, {formula.right.name})"
    if isinstance(formula, (T.Root, T.Leaf, T.First, T.Last)):
        keyword = type(formula).__name__.lower()
        return f"{keyword}({formula.var.name})"
    if isinstance(formula, T.Label):
        return f"O_{formula.symbol}({formula.var.name})"
    if isinstance(formula, T.NodeEq):
        return f"{formula.left.name} = {formula.right.name}"
    if isinstance(formula, T.SibLess):
        return f"{formula.left.name} < {formula.right.name}"
    if isinstance(formula, T.Desc):
        return f"{formula.ancestor.name} << {formula.descendant.name}"
    if isinstance(formula, T.ValEq):
        return (
            f"val_{formula.attr_left}({formula.left.name}) = "
            f"val_{formula.attr_right}({formula.right.name})"
        )
    if isinstance(formula, T.ValConst):
        return (
            f"val_{formula.attr}({formula.var.name}) = "
            f"{_format_constant(formula.value)}"
        )
    if isinstance(formula, T.Not):
        return f"~{_format_child(formula.inner)}"
    if isinstance(formula, T.And):
        return "(" + " & ".join(_format_child(p) for p in formula.parts) + ")"
    if isinstance(formula, T.Or):
        return "(" + " | ".join(_format_child(p) for p in formula.parts) + ")"
    if isinstance(formula, T.Implies):
        return (
            f"({_format_child(formula.premise)} -> "
            f"{_format_child(formula.conclusion)})"
        )
    if isinstance(formula, (T.Exists, T.Forall)):
        keyword = "exists" if isinstance(formula, T.Exists) else "forall"
        return (
            f"{keyword} {formula.var.name} ({format_formula(formula.inner)})"
        )
    raise TreeFormulaError(f"unknown formula node {formula!r}")


def parse_formula(text: str) -> TreeFormula:
    """Parse FO text into a :class:`TreeFormula`."""
    parser = _Parser(text)
    formula = parser.formula()
    parser.sc.skip_ws()
    if parser.sc.pos != len(parser.sc.text):
        raise parser.sc.error("trailing input")
    return formula


def parse_sentence(text: str) -> TreeFormula:
    """Parse and require a sentence (no free variables)."""
    formula = parse_formula(text)
    free = T.free_variables(formula)
    if free:
        raise TreeFormulaError(
            f"expected a sentence; free variables: "
            f"{sorted(v.name for v in free)}"
        )
    return formula


def parse_query(text: str, x: str = "x", y: str = "y"):
    """Parse a binary FO(∃*) selector φ(x, y) from text."""
    from .exists_star import ExistsStarQuery

    return ExistsStarQuery(parse_formula(text), NVar(x), NVar(y))
