"""Normal forms for FO over τ_{Σ,A}.

* :func:`negation_normal_form` — push ¬ to the atoms, eliminate → and
  rewrite quantifier duals;
* :func:`prenex_normal_form` — pull quantifiers to the front (with
  capture-avoiding renaming);
* :func:`is_prenex`, :func:`prefix_of` — inspection helpers.

FO(∃*) (§2.3) is defined through prenex form, so these transformations
are also the bridge for *deciding* whether an arbitrary formula happens
to be expressible in the fragment: a sentence whose PNF prefix is
purely existential is (up to logical equivalence of this syntactic
route) an FO(∃*) sentence.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Tuple

from . import tree_fo as T
from .tree_fo import NVar, TreeFormula, TreeFormulaError, is_atom


def negation_normal_form(formula: TreeFormula) -> TreeFormula:
    """Equivalent formula with ¬ only on atoms and no →."""
    return _nnf(formula, negate=False)


def _nnf(formula: TreeFormula, negate: bool) -> TreeFormula:
    if is_atom(formula):
        return T.Not(formula) if negate else formula
    if isinstance(formula, T.Not):
        return _nnf(formula.inner, not negate)
    if isinstance(formula, T.And):
        parts = tuple(_nnf(p, negate) for p in formula.parts)
        return T.Or(parts) if negate else T.And(parts)
    if isinstance(formula, T.Or):
        parts = tuple(_nnf(p, negate) for p in formula.parts)
        return T.And(parts) if negate else T.Or(parts)
    if isinstance(formula, T.Implies):
        # a → b ≡ ¬a ∨ b
        rewritten = T.Or((T.Not(formula.premise), formula.conclusion))
        return _nnf(rewritten, negate)
    if isinstance(formula, T.Exists):
        inner = _nnf(formula.inner, negate)
        return T.Forall(formula.var, inner) if negate else T.Exists(formula.var, inner)
    if isinstance(formula, T.Forall):
        inner = _nnf(formula.inner, negate)
        return T.Exists(formula.var, inner) if negate else T.Forall(formula.var, inner)
    raise TreeFormulaError(f"unknown formula node {formula!r}")


# -- renaming -------------------------------------------------------------------------


def _substitute(formula: TreeFormula, mapping: Dict[NVar, NVar]) -> TreeFormula:
    """Capture-naive variable renaming (callers rename apart first)."""
    if not mapping:
        return formula
    if is_atom(formula):
        return _substitute_atom(formula, mapping)
    if isinstance(formula, T.Not):
        return T.Not(_substitute(formula.inner, mapping))
    if isinstance(formula, T.And):
        return T.And(tuple(_substitute(p, mapping) for p in formula.parts))
    if isinstance(formula, T.Or):
        return T.Or(tuple(_substitute(p, mapping) for p in formula.parts))
    if isinstance(formula, T.Implies):
        return T.Implies(
            _substitute(formula.premise, mapping),
            _substitute(formula.conclusion, mapping),
        )
    if isinstance(formula, (T.Exists, T.Forall)):
        inner_map = {k: v for k, v in mapping.items() if k != formula.var}
        build = T.Exists if isinstance(formula, T.Exists) else T.Forall
        return build(
            mapping.get(formula.var, formula.var),
            _substitute(formula.inner, {**inner_map, formula.var:
                                        mapping.get(formula.var, formula.var)}),
        )
    raise TreeFormulaError(f"unknown formula node {formula!r}")


def _substitute_atom(atom, mapping: Dict[NVar, NVar]):
    def sub(var: NVar) -> NVar:
        return mapping.get(var, var)

    if isinstance(atom, (T.TrueF, T.FalseF)):
        return atom
    if isinstance(atom, T.Edge):
        return T.Edge(sub(atom.parent), sub(atom.child))
    if isinstance(atom, T.SibLess):
        return T.SibLess(sub(atom.left), sub(atom.right))
    if isinstance(atom, T.Desc):
        return T.Desc(sub(atom.ancestor), sub(atom.descendant))
    if isinstance(atom, T.Label):
        return T.Label(atom.symbol, sub(atom.var))
    if isinstance(atom, T.NodeEq):
        return T.NodeEq(sub(atom.left), sub(atom.right))
    if isinstance(atom, T.ValEq):
        return T.ValEq(atom.attr_left, sub(atom.left), atom.attr_right,
                       sub(atom.right))
    if isinstance(atom, T.ValConst):
        return T.ValConst(atom.attr, sub(atom.var), atom.value)
    if isinstance(atom, (T.Root, T.Leaf, T.First, T.Last)):
        return type(atom)(sub(atom.var))
    if isinstance(atom, T.Succ):
        return T.Succ(sub(atom.left), sub(atom.right))
    raise TreeFormulaError(f"unknown atom {atom!r}")


def _fresh_names() -> Iterator[NVar]:
    for index in itertools.count(1):
        yield NVar(f"v{index}")


def rename_apart(formula: TreeFormula) -> TreeFormula:
    """Give every quantifier a fresh variable (no shadowing, no clash
    with free variables)."""
    supply = _fresh_names()
    taken = {v.name for v in T.free_variables(formula)}

    def fresh() -> NVar:
        while True:
            candidate = next(supply)
            if candidate.name not in taken:
                taken.add(candidate.name)
                return candidate

    def walk(node: TreeFormula, mapping: Dict[NVar, NVar]) -> TreeFormula:
        if is_atom(node):
            return _substitute_atom(node, mapping)
        if isinstance(node, T.Not):
            return T.Not(walk(node.inner, mapping))
        if isinstance(node, T.And):
            return T.And(tuple(walk(p, mapping) for p in node.parts))
        if isinstance(node, T.Or):
            return T.Or(tuple(walk(p, mapping) for p in node.parts))
        if isinstance(node, T.Implies):
            return T.Implies(walk(node.premise, mapping),
                             walk(node.conclusion, mapping))
        if isinstance(node, (T.Exists, T.Forall)):
            renamed = fresh()
            build = T.Exists if isinstance(node, T.Exists) else T.Forall
            return build(renamed, walk(node.inner, {**mapping, node.var: renamed}))
        raise TreeFormulaError(f"unknown formula node {node!r}")

    return walk(formula, {})


# -- prenexing --------------------------------------------------------------------------------


def prenex_normal_form(formula: TreeFormula) -> TreeFormula:
    """An equivalent prenex formula: Q₁x₁ … Qₙxₙ (matrix)."""
    renamed = rename_apart(negation_normal_form(formula))
    prefix, matrix = _pull(renamed)
    out = matrix
    for kind, var in reversed(prefix):
        out = kind(var, out)
    return out


def _pull(formula: TreeFormula) -> Tuple[List, TreeFormula]:
    """Extract the quantifier prefix of an NNF, renamed-apart formula."""
    if is_atom(formula) or isinstance(formula, T.Not):
        return [], formula
    if isinstance(formula, (T.Exists, T.Forall)):
        prefix, matrix = _pull(formula.inner)
        kind = T.Exists if isinstance(formula, T.Exists) else T.Forall
        return [(kind, formula.var)] + prefix, matrix
    if isinstance(formula, (T.And, T.Or)):
        prefix: List = []
        matrices = []
        for part in formula.parts:
            inner_prefix, matrix = _pull(part)
            prefix.extend(inner_prefix)
            matrices.append(matrix)
        build = T.And if isinstance(formula, T.And) else T.Or
        return prefix, build(tuple(matrices))
    raise TreeFormulaError(
        f"prenexing expects NNF (no →): {formula!r}"
    )


def is_prenex(formula: TreeFormula) -> bool:
    """Quantifiers only as an outer prefix."""
    body = formula
    while isinstance(body, (T.Exists, T.Forall)):
        body = body.inner
    return T.quantifier_free(body)


def prefix_of(formula: TreeFormula) -> List[Tuple[str, NVar]]:
    """The prefix as [('exists'|'forall', var), …]."""
    out: List[Tuple[str, NVar]] = []
    body = formula
    while isinstance(body, (T.Exists, T.Forall)):
        out.append(
            ("exists" if isinstance(body, T.Exists) else "forall", body.var)
        )
        body = body.inner
    return out


def expressible_in_exists_star(formula: TreeFormula) -> bool:
    """Does this route certify the formula FO(∃*)-expressible?  True
    when the PNF prefix is purely existential.  (A False is *not* a
    proof of inexpressibility — prenexing is one syntactic path.)"""
    pnf = prenex_normal_form(formula)
    return all(kind == "exists" for kind, _var in prefix_of(pnf))
