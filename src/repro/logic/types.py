"""k-variable FO(∃*) types of data strings (Lemma 4.3).

Section 4 restricts attention to strings (monadic trees) over a finite
``D ⊆ D``.  Two strings are *k-equivalent*, ``s₁ ≡_k s₂``, iff they
satisfy the same FO(∃*) formulas with k variables; ``tp_k(s; i₁…iₙ)``
is the equivalence class of the string with distinguished positions.

An existential sentence ``∃z̄ ψ(z̄)`` (ψ quantifier-free) holds iff some
tuple of positions realizes an *atomic type* satisfying ψ.  Hence the
set of atomic types realized by m-tuples (m ≤ k), together with the
distinguished positions appended, is a complete finite invariant for
≡_k — this is what :class:`TypeSummary` stores, and what the Lemma 4.5
protocol sends as the ``⟨θ⟩`` (N-type) messages.

The atomic information recorded per position is its data value (D is
finite and known to both parties, per Definition 4.4), its label, and
boundary flags (first/second/last/second-to-last); per pair of
positions, the order relation and successor facts.  Boundary flags up
to distance 1 are exactly what Lemma 4.3(1)'s composition of a split
string ``f#g`` from ``f#`` and ``#g`` requires (adjacency across the
shared ``#`` position).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..trees.strings import STRING_LABEL
from ..trees.tree import Tree
from ..trees.values import DataValue


class TypeError_(ValueError):
    """Raised on malformed type-machinery arguments."""


@dataclass(frozen=True)
class StringStructure:
    """A data string as a first-order structure (monadic-tree view).

    ``values[i]`` is the attribute value of position i; ``labels`` is
    the per-position Σ-label (uniformly σ by default).  Atoms follow
    the monadic-tree reading of τ_{Σ,A}: ``E`` is position successor,
    ``≺`` is position order, the sibling order is empty, ``root`` is
    position 0 and ``leaf`` the last position.
    """

    values: Tuple[DataValue, ...]
    labels: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.values:
            raise TypeError_("a string structure needs >= 1 position")
        if self.labels is not None and len(self.labels) != len(self.values):
            raise TypeError_("labels and values must have equal length")

    @classmethod
    def from_tree(cls, tree: Tree, attr: str = "a") -> "StringStructure":
        """Lift a monadic tree into a string structure."""
        from ..trees.strings import tree_string

        values = tuple(tree_string(tree, attr))
        labels = tuple(tree.label((0,) * i) for i in range(len(values)))
        return cls(values, labels)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def positions(self) -> range:
        return range(len(self.values))

    def label(self, position: int) -> str:
        if self.labels is None:
            return STRING_LABEL
        return self.labels[position]

    def value(self, position: int) -> DataValue:
        return self.values[position]

    def alphabet_d(self) -> FrozenSet[DataValue]:
        """The finite D of this string: the values occurring in it."""
        return frozenset(self.values)


#: Per-position atomic information: (value, label, first, second, last,
#: second-to-last).  See the module docstring for why distance-1
#: boundary flags suffice for composition.
PosInfo = Tuple[DataValue, str, bool, bool, bool, bool]

#: Per-ordered-pair information: order sign (-1/0/1 for </=/>) and the
#: two successor facts (q = p+1, p = q+1).
PairInfo = Tuple[int, bool, bool]

#: The atomic type of a tuple of positions.
AtomicType = Tuple[Tuple[PosInfo, ...], Tuple[PairInfo, ...]]


def pos_info(struct: StringStructure, position: int) -> PosInfo:
    """The per-position component of an atomic type."""
    n = len(struct)
    if not 0 <= position < n:
        raise TypeError_(f"position {position} out of range 0..{n - 1}")
    return (
        struct.value(position),
        struct.label(position),
        position == 0,
        position == 1,
        position == n - 1,
        position == n - 2,
    )


def pair_info(p: int, q: int) -> PairInfo:
    """The per-pair component of an atomic type."""
    sign = (p > q) - (p < q)
    return (sign, q == p + 1, p == q + 1)


def atomic_type(struct: StringStructure, positions: Sequence[int]) -> AtomicType:
    """The atomic type of the given position tuple."""
    infos = tuple(pos_info(struct, p) for p in positions)
    pairs = tuple(
        pair_info(positions[i], positions[j])
        for i in range(len(positions))
        for j in range(i + 1, len(positions))
    )
    return (infos, pairs)


@dataclass(frozen=True)
class TypeSummary:
    """``tp_k(s; i₁…i_d)`` — the complete ≡_k invariant.

    ``realized[m]`` is the set of atomic types of tuples
    ``(p₁, …, pₘ, i₁, …, i_d)`` with the pⱼ ranging over all positions
    (repetitions allowed) and the distinguished iⱼ appended last.
    """

    k: int
    distinguished: int
    realized: Tuple[Tuple[int, FrozenSet[AtomicType]], ...]

    def types_for(self, m: int) -> FrozenSet[AtomicType]:
        for count, types in self.realized:
            if count == m:
                return types
        raise TypeError_(f"summary holds tuples of size 0..{self.k}, not {m}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypeSummary):
            return NotImplemented
        return (
            self.k == other.k
            and self.distinguished == other.distinguished
            and self.realized == other.realized
        )

    def __hash__(self) -> int:
        return hash((self.k, self.distinguished, self.realized))


def type_summary(
    struct: StringStructure,
    distinguished: Sequence[int] = (),
    k: int = 2,
) -> TypeSummary:
    """Compute ``tp_k(struct; distinguished)``.

    Cost is O(n^k) tuples; intended for the small strings of the
    Section 4 experiments.
    """
    if k < 0:
        raise TypeError_("k must be >= 0")
    for d in distinguished:
        if not 0 <= d < len(struct):
            raise TypeError_(f"distinguished position {d} out of range")
    realized: List[Tuple[int, FrozenSet[AtomicType]]] = []
    for m in range(k + 1):
        types = set()
        for combo in itertools.product(struct.positions, repeat=m):
            types.add(atomic_type(struct, tuple(combo) + tuple(distinguished)))
        realized.append((m, frozenset(types)))
    return TypeSummary(k, len(distinguished), tuple(realized))


def equivalent(
    left: StringStructure,
    right: StringStructure,
    k: int,
    left_distinguished: Sequence[int] = (),
    right_distinguished: Sequence[int] = (),
) -> bool:
    """``(left; …) ≡_k (right; …)`` — same realized atomic types."""
    return type_summary(left, left_distinguished, k) == type_summary(
        right, right_distinguished, k
    )


def count_realized_classes(
    structs: Iterable[StringStructure], k: int
) -> int:
    """Number of distinct ≡_k classes realized by the given strings.

    Lemma 4.3(2) bounds the total number of classes by
    ``exp₃(p(k + |D|))``; :mod:`repro.hypersets.counting` computes the
    bound, and the E3 experiment compares it against this realized count.
    """
    return len({type_summary(s, (), k) for s in structs})


def classes_partition(
    structs: Sequence[StringStructure], k: int
) -> Dict[TypeSummary, List[int]]:
    """Partition indices of ``structs`` into ≡_k classes."""
    out: Dict[TypeSummary, List[int]] = {}
    for i, s in enumerate(structs):
        out.setdefault(type_summary(s, (), k), []).append(i)
    return out
