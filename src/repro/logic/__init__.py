"""Logic over attributed trees: FO (§2.2), FO(∃*) (§2.3), k-types (§4).

* :mod:`repro.logic.tree_fo` — full first-order logic over the tree
  vocabulary τ_{Σ,A}, with model checking;
* :mod:`repro.logic.exists_star` — the prenex-existential fragment and
  its binary queries (the ``atp`` selector language);
* :mod:`repro.logic.types` — k-variable FO(∃*) types of data strings,
  the Lemma 4.3 machinery used by the communication protocol.
"""

from . import tree_fo
from .tree_fo import (
    NVar,
    TreeFormula,
    TreeFormulaError,
    evaluate,
    free_variables,
    quantifier_free,
    satisfying_assignments,
    subformulas,
)
from .exists_star import (
    ExistsStarQuery,
    FragmentError,
    X,
    Y,
    children_selector,
    descendants_selector,
    descendants_with_label,
    first_child_selector,
    functional_selectors,
    is_exists_star,
    is_single_valued,
    leaves_selector,
    parent_selector,
    selector,
    self_selector,
    strip_prefix,
    variable_count,
)
from .normalform import (
    expressible_in_exists_star,
    is_prenex,
    negation_normal_form,
    prefix_of,
    prenex_normal_form,
    rename_apart,
)
from .parser import (
    FormulaSyntaxError,
    format_formula,
    parse_formula,
    parse_query,
    parse_sentence,
)
from .types import (
    AtomicType,
    StringStructure,
    TypeSummary,
    atomic_type,
    classes_partition,
    count_realized_classes,
    equivalent,
    pair_info,
    pos_info,
    type_summary,
)

__all__ = [
    "tree_fo",
    "NVar",
    "TreeFormula",
    "TreeFormulaError",
    "evaluate",
    "free_variables",
    "quantifier_free",
    "satisfying_assignments",
    "subformulas",
    "ExistsStarQuery",
    "FragmentError",
    "X",
    "Y",
    "children_selector",
    "descendants_selector",
    "descendants_with_label",
    "first_child_selector",
    "functional_selectors",
    "is_exists_star",
    "is_single_valued",
    "leaves_selector",
    "parent_selector",
    "selector",
    "self_selector",
    "strip_prefix",
    "variable_count",
    "expressible_in_exists_star",
    "is_prenex",
    "negation_normal_form",
    "prefix_of",
    "prenex_normal_form",
    "rename_apart",
    "FormulaSyntaxError",
    "format_formula",
    "parse_formula",
    "parse_query",
    "parse_sentence",
    "AtomicType",
    "StringStructure",
    "TypeSummary",
    "atomic_type",
    "classes_partition",
    "count_realized_classes",
    "equivalent",
    "pair_info",
    "pos_info",
    "type_summary",
]
