"""k-pebble tree automata — the [17] model (Milo, Suciu, Vianu).

The paper's introduction cites pebble tree automata/transducers as the
other abstraction of XML transformations built on tree-walking.  This
module implements the acceptance (automaton) part, deterministic, with
the *strong* stack discipline: pebbles 1..k are placed in order, pebble
i+1 only while i is down, and only the most recent pebble can be
lifted, with the head standing on it.

Transitions test the label, the position, which pebbles sit on the
current node, how many pebbles are down, and — the data-join facility
XML needs — whether the current node's attribute equals the attribute
at a pebble's node.  Actions move the head, place the next pebble, or
lift the last one.

The tape-less cousin of Section 7's ID-register pebbles: here pebbles
are a primitive of the machine; there they are an artifact of unique
IDs.  The E-suite uses this model to cross-check data-join queries
against FO (see tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from ..automata.rules import ANYWHERE, DIRECTIONS, PositionTest, move as tree_move
from ..trees.node import NodeId
from ..trees.tree import Tree


class PebbleAutomatonError(RuntimeError):
    """Raised on ill-formed automata or genuine runtime errors."""


# -- transition tests ---------------------------------------------------------------


@dataclass(frozen=True)
class PebbleHere:
    """Pebble ``index`` is (not) on the current node."""

    index: int
    present: bool = True


@dataclass(frozen=True)
class PebblesDown:
    """Exactly ``count`` pebbles are placed."""

    count: int


@dataclass(frozen=True)
class AttrEqPebble:
    """The current node's ``attr`` equals ``attr_at`` at pebble
    ``index``'s node — the data join."""

    index: int
    attr: str
    attr_at: Optional[str] = None  # defaults to the same attribute
    negate: bool = False


PTest = Union[PebbleHere, PebblesDown, AttrEqPebble]


# -- actions ----------------------------------------------------------------------------


@dataclass(frozen=True)
class Walk:
    """Move the head (off-tree ⇒ reject)."""

    direction: str

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise PebbleAutomatonError(f"bad direction {self.direction!r}")


@dataclass(frozen=True)
class Place:
    """Place the next pebble on the current node."""


@dataclass(frozen=True)
class Lift:
    """Lift the most recent pebble; the head must stand on it."""


PAction = Union[Walk, Place, Lift]


@dataclass(frozen=True)
class PRule:
    state: str
    new_state: str
    label: Optional[str] = None
    position: PositionTest = ANYWHERE
    tests: Tuple[PTest, ...] = ()
    action: PAction = Walk("stay")


@dataclass(frozen=True)
class PebbleAutomaton:
    """(Q, q0, F, k, rules) — deterministic, strong pebbles."""

    states: frozenset
    initial: str
    accepting: frozenset
    pebbles: int
    rules: Tuple[PRule, ...]
    name: str = "P"

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise PebbleAutomatonError("initial state not in Q")
        if not self.accepting <= self.states:
            raise PebbleAutomatonError("accepting states not in Q")
        if self.pebbles < 0:
            raise PebbleAutomatonError("pebble count must be >= 0")
        for rule in self.rules:
            if rule.state not in self.states or rule.new_state not in self.states:
                raise PebbleAutomatonError(f"unknown state in {rule!r}")
            for test in rule.tests:
                index = getattr(test, "index", None)
                if index is not None and not 1 <= index <= self.pebbles:
                    raise PebbleAutomatonError(
                        f"pebble {index} out of range in {rule!r}"
                    )
                if isinstance(test, PebblesDown) and not (
                    0 <= test.count <= self.pebbles
                ):
                    raise PebbleAutomatonError(
                        f"pebble count {test.count} out of range in {rule!r}"
                    )

    def rules_for(self, state: str) -> Tuple[PRule, ...]:
        return tuple(r for r in self.rules if r.state == state)


@dataclass
class PebbleRunResult:
    accepted: bool
    steps: int
    max_pebbles: int
    reason: str


def _test_holds(
    test: PTest, tree: Tree, node: NodeId, stack: Tuple[NodeId, ...]
) -> bool:
    if isinstance(test, PebbleHere):
        down = test.index <= len(stack)
        present = down and stack[test.index - 1] == node
        return present == test.present
    if isinstance(test, PebblesDown):
        return len(stack) == test.count
    if isinstance(test, AttrEqPebble):
        if test.index > len(stack):
            return test.negate  # the pebble is not down: no join
        other = stack[test.index - 1]
        attr_at = test.attr_at if test.attr_at is not None else test.attr
        outcome = tree.val(test.attr, node) == tree.val(attr_at, other)
        return outcome != test.negate
    raise PebbleAutomatonError(f"unknown test {test!r}")


def run_pebble_automaton(
    automaton: PebbleAutomaton,
    tree: Tree,
    fuel: int = 500_000,
) -> PebbleRunResult:
    """Deterministic run with cycle detection."""
    node: NodeId = ()
    state = automaton.initial
    stack: Tuple[NodeId, ...] = ()
    steps = 0
    max_pebbles = 0
    seen: Set[Tuple[NodeId, str, Tuple[NodeId, ...]]] = set()
    while True:
        if state in automaton.accepting:
            return PebbleRunResult(True, steps, max_pebbles, "accepted")
        key = (node, state, stack)
        if key in seen:
            return PebbleRunResult(False, steps, max_pebbles, "cycle")
        seen.add(key)
        steps += 1
        if steps > fuel:
            raise PebbleAutomatonError(f"fuel {fuel} exhausted")

        chosen: Optional[PRule] = None
        label = tree.label(node)
        for rule in automaton.rules_for(state):
            if rule.label is not None and rule.label != label:
                continue
            if not rule.position.matches(tree, node):
                continue
            if not all(_test_holds(t, tree, node, stack) for t in rule.tests):
                continue
            if chosen is not None:
                raise PebbleAutomatonError(
                    f"nondeterministic: {chosen!r} / {rule!r}"
                )
            chosen = rule
        if chosen is None:
            return PebbleRunResult(False, steps, max_pebbles, "stuck")

        action = chosen.action
        if isinstance(action, Walk):
            target = tree_move(tree, node, action.direction)
            if target is None:
                return PebbleRunResult(False, steps, max_pebbles, "off tree")
            node = target
        elif isinstance(action, Place):
            if len(stack) >= automaton.pebbles:
                return PebbleRunResult(
                    False, steps, max_pebbles, "no pebble left to place"
                )
            stack = stack + (node,)
            max_pebbles = max(max_pebbles, len(stack))
        elif isinstance(action, Lift):
            if not stack:
                return PebbleRunResult(False, steps, max_pebbles, "no pebble down")
            if stack[-1] != node:
                return PebbleRunResult(
                    False, steps, max_pebbles,
                    "strong discipline: the head must stand on the pebble",
                )
            stack = stack[:-1]
        state = chosen.new_state
