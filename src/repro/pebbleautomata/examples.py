"""Stock pebble automata with specifications.

The flagship is the data join :func:`exists_equal_pair`: "two distinct
nodes carry the same a-value".  It shows the canonical pebble pattern —
iterate pebble 1 over all candidates in document order; for each
placement sweep the whole tree comparing against the pebble.
"""

from __future__ import annotations

from typing import Callable

from ..automata.rules import DOWN, PositionTest, RIGHT, STAY, UP
from ..trees.tree import Tree
from .model import (
    AttrEqPebble,
    Lift,
    PRule,
    PebbleAutomaton,
    PebbleHere,
    Place,
    Walk,
)

AT_LEAF = PositionTest(leaf=True)
AT_INNER = PositionTest(leaf=False)
AT_ROOT = PositionTest(root=True)
CONTINUE = PositionTest(root=False, last=False)
ASCEND = PositionTest(root=False, last=True)


def _dfs(fwd: str, back: str, on_done: str) -> list:
    """The shared depth-first skeleton: ``fwd`` visits, ``back``
    returns; reaching the root in ``back`` continues in ``on_done``."""
    return [
        PRule(back, fwd, position=CONTINUE, action=Walk(RIGHT)),
        PRule(back, back, position=ASCEND, action=Walk(UP)),
        PRule(back, on_done, position=AT_ROOT),
    ]


def exists_equal_pair(attr: str = "a") -> PebbleAutomaton:
    """Accepts iff two *distinct* nodes share their ``attr`` value.

    One pebble iterates over candidates; a full sweep joins each node
    against the pebble (``AttrEqPebble``).  Candidates advance in
    document order; running out of candidates leaves the automaton
    stuck — reject.
    """
    equal = AttrEqPebble(1, attr)
    different = AttrEqPebble(1, attr, negate=True)
    here = PebbleHere(1, True)
    away = PebbleHere(1, False)
    rules = [
        # Place the pebble on the current candidate, sweep from the root.
        PRule("seek", "toroot", action=Place()),
        PRule("toroot", "toroot", position=PositionTest(root=False),
              action=Walk(UP)),
        PRule("toroot", "scan", position=AT_ROOT),
        # The sweep: a hit on a node other than the candidate accepts.
        PRule("scan", "ACC", tests=(equal, away)),
        PRule("scan", "cont", tests=(equal, here)),
        PRule("scan", "cont", tests=(different,)),
        PRule("cont", "back", position=AT_LEAF),
        PRule("cont", "scan", position=AT_INNER, action=Walk(DOWN)),
        *_dfs("scan", "back", "find"),
        # Return to the pebble (a second DFS probing PebbleHere).
        PRule("find", "advance", tests=(here,)),
        PRule("find", "find", tests=(away,), position=AT_INNER,
              action=Walk(DOWN)),
        PRule("find", "fback", tests=(away,), position=AT_LEAF),
        PRule("fback", "find", position=CONTINUE, action=Walk(RIGHT)),
        PRule("fback", "fback", position=ASCEND, action=Walk(UP)),
        # (fback at the root is unreachable: the pebble is always found)
        # Advance the candidate to the document-order successor.
        PRule("advance", "next", action=Lift()),
        PRule("next", "seek", position=AT_INNER, action=Walk(DOWN)),
        PRule("next", "seek", position=PositionTest(leaf=True, root=False,
                                                    last=False),
              action=Walk(RIGHT)),
        PRule("next", "climb", position=PositionTest(leaf=True, root=False,
                                                     last=True),
              action=Walk(UP)),
        # next at a leaf-root: single-node tree, no pair — stuck: reject.
        PRule("climb", "seek", position=CONTINUE, action=Walk(RIGHT)),
        PRule("climb", "climb", position=ASCEND, action=Walk(UP)),
        # climb at the root: every candidate tried — stuck: reject.
    ]
    states = frozenset(
        {"seek", "toroot", "scan", "cont", "back", "find", "fback",
         "advance", "next", "climb", "ACC"}
    )
    return PebbleAutomaton(
        states=states,
        initial="seek",
        accepting=frozenset({"ACC"}),
        pebbles=1,
        rules=tuple(rules),
        name=f"equal-pair-{attr}",
    )


def exists_equal_pair_spec(attr: str = "a") -> Callable[[Tree], bool]:
    def spec(tree: Tree) -> bool:
        values = [tree.val(attr, u) for u in tree.nodes]
        return len(values) != len(set(values))

    return spec


def exists_double_join(attr_a: str = "a", attr_b: str = "b") -> PebbleAutomaton:
    """Accepts iff two distinct nodes agree on *both* attributes — the
    two-column data join, still one pebble (both tests run against the
    same placement)."""
    base = exists_equal_pair(attr_a)
    # Keep the iteration skeleton; replace the scan dispatch so a hit
    # needs agreement on both attributes away from the pebble.
    rules = [r for r in base.rules if r.state != "scan"]
    rules.extend(
        [
            PRule("scan", "ACC",
                  tests=(AttrEqPebble(1, attr_a), AttrEqPebble(1, attr_b),
                         PebbleHere(1, False))),
            PRule("scan", "cont",
                  tests=(AttrEqPebble(1, attr_a), AttrEqPebble(1, attr_b),
                         PebbleHere(1, True))),
            PRule("scan", "cont",
                  tests=(AttrEqPebble(1, attr_a),
                         AttrEqPebble(1, attr_b, negate=True))),
            PRule("scan", "cont", tests=(AttrEqPebble(1, attr_a, negate=True),)),
        ]
    )
    return PebbleAutomaton(
        states=base.states,
        initial=base.initial,
        accepting=base.accepting,
        pebbles=1,
        rules=tuple(rules),
        name=f"double-join-{attr_a}-{attr_b}",
    )


def exists_double_join_spec(
    attr_a: str = "a", attr_b: str = "b"
) -> Callable[[Tree], bool]:
    def spec(tree: Tree) -> bool:
        seen = {}
        for u in tree.nodes:
            key = (tree.val(attr_a, u), tree.val(attr_b, u))
            if key in seen:
                return True
            seen[key] = u
        return False

    return spec
