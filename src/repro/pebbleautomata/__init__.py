"""Pebble tree automata — the [17] model cited in the introduction.

>>> from repro.trees import parse_term
>>> from repro.pebbleautomata import exists_equal_pair, run_pebble_automaton
>>> t = parse_term("r[a=1](x[a=2], y[a=1])")
>>> run_pebble_automaton(exists_equal_pair(), t).accepted
True
"""

from .model import (
    AttrEqPebble,
    Lift,
    PAction,
    PRule,
    PTest,
    PebbleAutomaton,
    PebbleAutomatonError,
    PebbleHere,
    PebbleRunResult,
    PebblesDown,
    Place,
    Walk,
    run_pebble_automaton,
)
from .examples import (
    exists_double_join,
    exists_double_join_spec,
    exists_equal_pair,
    exists_equal_pair_spec,
)

__all__ = [
    "AttrEqPebble",
    "Lift",
    "PAction",
    "PRule",
    "PTest",
    "PebbleAutomaton",
    "PebbleAutomatonError",
    "PebbleHere",
    "PebbleRunResult",
    "PebblesDown",
    "Place",
    "Walk",
    "run_pebble_automaton",
    "exists_double_join",
    "exists_double_join_spec",
    "exists_equal_pair",
    "exists_equal_pair_spec",
]
