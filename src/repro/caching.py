"""``KeyedLRU`` — the one bounded LRU cache the repo actually needs.

Before this module, the repository carried several near-identical
hand-rolled LRUs: the :class:`~repro.queries.facade.TreeDatabase`
parsed-XPath and parsed-caterpillar caches (an ``OrderedDict`` plus
three counters each), the walking engine's compile cache
(:mod:`repro.engine.walk`), its bound-evaluator cache, and the
per-tree index cache (:mod:`repro.engine.index`).  Each copy re-derived
the same discipline — probe, ``move_to_end`` on hit, compute, evict
from the cold end, insert — with slightly different statistics
plumbing.  ``KeyedLRU`` is that discipline written once.

Contract points the callers rely on (and the tests pin):

* ``cache_info()`` returns the :func:`functools.lru_cache`-shaped
  ``CacheInfo(hits, misses, maxsize, currsize)`` namedtuple, so it
  compares equal to plain 4-tuples.
* The factory runs **before** the statistics move: a factory that
  raises (e.g. a syntax error in a parse cache) leaves the cache —
  slots *and* counters — exactly as it was.
* ``maxsize=0`` disables storage but still counts every probe as a
  miss; negative sizes are rejected at construction.
* The mapping protocol (``in``, ``iter``, ``len``) is exposed read-only
  so tests can assert on residency and eviction order.
* Every cache operation holds an internal :class:`threading.RLock`:
  the query service shares the process-wide plan/index caches across
  concurrent sessions, and an unlocked ``move_to_end`` racing an
  eviction corrupts the ``OrderedDict``.  The factory of
  :meth:`~KeyedLRU.get_or_compute` runs *outside* the lock — two
  threads may both compute a missed key (one result wins the slot),
  but a slow compile can never block every other cache user.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, namedtuple
from typing import Callable, Generic, Hashable, Iterator, Optional, TypeVar

__all__ = ["CacheInfo", "KeyedLRU"]

#: Statistics shape shared by every cache in the repo, mirroring
#: :func:`functools.lru_cache` (a namedtuple, so it equals plain tuples).
CacheInfo = namedtuple("CacheInfo", ["hits", "misses", "maxsize", "currsize"])

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class KeyedLRU(Generic[K, V]):
    """A bounded least-recently-used mapping with hit/miss statistics.

    ``maxsize`` bounds residency; ``0`` disables storage entirely (every
    probe computes, every probe counts as a miss).  ``name`` only labels
    the ``repr`` — useful when several process-wide caches show up in a
    debugger at once.
    """

    __slots__ = ("_data", "_maxsize", "_hits", "_misses", "_name", "_lock")

    def __init__(self, maxsize: int, name: str = "") -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._maxsize = maxsize
        self._hits = 0
        self._misses = 0
        self._name = name
        self._lock = threading.RLock()

    # -- the main path ---------------------------------------------------------

    def get_or_compute(self, key: K, factory: Callable[[], V]) -> V:
        """The cached value for ``key``, computing it via ``factory`` on
        a miss.

        The factory runs before any statistics change, so a raising
        factory (a parse error, a failed compile) leaves the cache
        untouched — no poisoned slot, no phantom miss."""
        data = self._data
        with self._lock:
            if key in data:
                self._hits += 1
                data.move_to_end(key)
                return data[key]
        # Compute outside the lock: a slow factory must not stall every
        # other session's cache traffic.  Losing the race just means two
        # equal values were computed; the later insert wins the slot.
        value = factory()
        with self._lock:
            self._misses += 1
            if self._maxsize:
                while len(data) >= self._maxsize:
                    data.popitem(last=False)
                data[key] = value
        return value

    # -- statistics-free access (identity-validated caches) --------------------

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Peek without touching statistics; refreshes recency on a hit.

        For caches keyed by object identity (``id(...)``) the caller
        must validate the hit itself — a stale entry for a recycled id
        is the caller's to reject and overwrite via :meth:`put`."""
        data = self._data
        with self._lock:
            if key in data:
                data.move_to_end(key)
                return data[key]
            return default

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) an entry without touching statistics,
        evicting from the cold end as needed."""
        if not self._maxsize:
            return
        data = self._data
        with self._lock:
            if key in data:
                data.move_to_end(key)
                data[key] = value
                return
            while len(data) >= self._maxsize:
                data.popitem(last=False)
            data[key] = value

    # -- statistics ------------------------------------------------------------

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def cache_info(self) -> CacheInfo:
        """``(hits, misses, maxsize, currsize)``, lru_cache-shaped."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                maxsize=self._maxsize,
                currsize=len(self._data),
            )

    def cache_clear(self) -> None:
        """Drop every entry and reset the statistics."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0

    # -- read-only mapping protocol (tests assert on residency) ----------------

    def __contains__(self, key: object) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        info = self.cache_info()
        return (
            f"<KeyedLRU{label} {info.currsize}/{info.maxsize} entries, "
            f"{info.hits} hits, {info.misses} misses>"
        )
