"""Alternating xTMs (the ``A``-prefixed classes of Definition 6.1).

States carry a mode — existential or universal — and several rules may
apply to a configuration.  Acceptance is the least fixed point of the
usual game semantics: a configuration is accepting iff its state is
accepting, or its mode is ∃ and *some* successor is accepting, or its
mode is ∀ and *all* successors are (vacuously true with none).

The evaluator explores the reachable configuration graph (bounded by
``max_configs``) and iterates the monotone operator to the fixpoint —
exactly the ALOGSPACE^X = PTIME^X mechanics the proof of Theorem 7.1(2)
leans on, made executable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from ..trees.node import NodeId
from ..trees.tree import Tree
from ..trees.values import BOTTOM, MaybeValue
from ..automata.rules import move as tree_move
from .xtm import (
    AttrEqConst,
    BLANK,
    CopyReg,
    LoadAttr,
    NoAction,
    SetConst,
    TreeMove,
    XTM,
    XTMError,
    XTMRule,
    _test_holds,
)

EXISTENTIAL = "∃"
UNIVERSAL = "∀"


@dataclass(frozen=True)
class AltXTM:
    """An alternating xTM: an :class:`XTM` rule set plus a mode map.

    States absent from ``modes`` are existential (a deterministic state
    is trivially either)."""

    machine: XTM
    modes: Mapping[str, str]

    def __post_init__(self) -> None:
        for state, mode in self.modes.items():
            if state not in self.machine.states:
                raise XTMError(f"mode for unknown state {state!r}")
            if mode not in (EXISTENTIAL, UNIVERSAL):
                raise XTMError(f"mode must be ∃ or ∀, got {mode!r}")

    def mode(self, state: str) -> str:
        return self.modes.get(state, EXISTENTIAL)


Config = Tuple[NodeId, str, Tuple[MaybeValue, ...], Tuple[Tuple[int, str], ...], int]


def _successors(
    alt: AltXTM, tree: Tree, config: Config
) -> List[Config]:
    node, state, registers, tape_items, head = config
    tape = dict(tape_items)
    symbol = tape.get(head, BLANK)
    label = tree.label(node)
    regs = list(registers)
    out: List[Config] = []
    for rule in alt.machine.rules_for(state):
        if rule.label is not None and rule.label != label:
            continue
        if rule.tape_symbol is not None and rule.tape_symbol != symbol:
            continue
        if rule.head_at_zero is not None and rule.head_at_zero != (head == 0):
            continue
        if not rule.position.matches(tree, node):
            continue
        if not all(_test_holds(t, regs, tree, node) for t in rule.tests):
            continue
        new_tape = dict(tape)
        if rule.tape_write is not None:
            new_tape[head] = rule.tape_write
        new_head = head + rule.head_move
        if new_head < 0:
            continue  # this branch dies
        new_node: Optional[NodeId] = node
        new_regs = list(regs)
        action = rule.action
        if isinstance(action, TreeMove):
            new_node = tree_move(tree, node, action.direction)
            if new_node is None:
                continue
        elif isinstance(action, LoadAttr):
            new_regs[action.index - 1] = tree.val(action.attr, node)
        elif isinstance(action, SetConst):
            new_regs[action.index - 1] = action.value
        elif isinstance(action, CopyReg):
            new_regs[action.dst - 1] = regs[action.src - 1]
        out.append(
            (
                new_node,
                rule.new_state,
                tuple(new_regs),
                tuple(sorted(new_tape.items())),
                new_head,
            )
        )
    return out


@dataclass
class AltResult:
    accepted: bool
    configurations: int
    iterations: int


def run_alternating(
    alt: AltXTM, tree: Tree, max_configs: int = 200_000
) -> AltResult:
    """Least-fixpoint acceptance over the reachable configuration graph."""
    initial: Config = (
        (),
        alt.machine.initial,
        (BOTTOM,) * alt.machine.registers,
        (),
        0,
    )
    # Phase 1: explore.
    succ: Dict[Config, List[Config]] = {}
    frontier = [initial]
    while frontier:
        config = frontier.pop()
        if config in succ:
            continue
        if len(succ) >= max_configs:
            raise XTMError(f"configuration budget {max_configs} exhausted")
        nexts = _successors(alt, tree, config)
        succ[config] = nexts
        frontier.extend(n for n in nexts if n not in succ)

    # Phase 2: iterate the monotone operator from ⊥ (all-false).
    value: Dict[Config, bool] = {c: False for c in succ}
    accepting_states = alt.machine.accepting
    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        for config, nexts in succ.items():
            if value[config]:
                continue
            state = config[1]
            if state in accepting_states:
                new = True
            elif alt.mode(state) == EXISTENTIAL:
                new = any(value[n] for n in nexts)
            else:
                new = all(value[n] for n in nexts)
            if new:
                value[config] = True
                changed = True
    return AltResult(value[initial], len(succ), iterations)


# ---------------------------------------------------------------------------
# Stock alternating machines
# ---------------------------------------------------------------------------

from ..automata.rules import DOWN, PositionTest, RIGHT, STAY
from .xtm import RegEqAttr

AT_LEAF = PositionTest(leaf=True)
AT_INNER = PositionTest(leaf=False)
NOT_LAST = PositionTest(last=False, root=False)


def _branching_rules(mode_state: str, check_state: str) -> List[XTMRule]:
    """From a node's first child, branch over all siblings: stay-and-
    check, or hop right and branch again."""
    return [
        XTMRule(mode_state, check_state),
        XTMRule(mode_state, mode_state, position=NOT_LAST,
                action=TreeMove(RIGHT)),
    ]


def exists_leaf_value_alt(attr: str, value) -> AltXTM:
    """∃-branching: accepts iff **some** leaf has ``val_attr = value``.

    Branch existentially down the tree (pick a child at each level),
    accept at a matching leaf."""
    rules: List[XTMRule] = [
        XTMRule("choose", "test", position=AT_LEAF),
        XTMRule("choose", "branch", position=AT_INNER, action=TreeMove(DOWN)),
        *_branching_rules("branch", "choose"),
        XTMRule("test", "acc", tests=(AttrEqConst(attr, value),)),
    ]
    states = frozenset({"choose", "branch", "test", "acc"})
    machine = XTM(states, "choose", frozenset({"acc"}), registers=1,
                  rules=tuple(rules), name=f"exists-leaf-{attr}={value!r}")
    return AltXTM(machine, {"choose": EXISTENTIAL, "branch": EXISTENTIAL})


def all_leaves_even_depth_alt() -> AltXTM:
    """∀-branching **with a work tape**: every leaf sits at even depth.

    A binary depth counter lives on the tape (blank ≡ 0, left end
    sensed via ``head_at_zero``); each descent increments it, and the
    branching is universal over children — the ALOGSPACE^X shape the
    Theorem 7.1(2) proof adapts the pebble simulation to.
    """
    from .xtm import BLANK, HEAD_LEFT, HEAD_RIGHT

    rules = [
        # At a leaf: accept iff the counter's LSB is 0 (depth even).
        XTMRule("visit", "acc", position=AT_LEAF, tape_symbol="0"),
        XTMRule("visit", "acc", position=AT_LEAF, tape_symbol=BLANK),
        # '1' under the head at a leaf: stuck ⇒ this branch rejects.
        # At an inner node: increment the counter, then branch.
        XTMRule("visit", "carry", position=AT_INNER),
        XTMRule("carry", "carry", tape_symbol="1", tape_write="0",
                head_move=HEAD_RIGHT),
        XTMRule("carry", "rewind", tape_symbol="0", tape_write="1"),
        XTMRule("carry", "rewind", tape_symbol=BLANK, tape_write="1"),
        XTMRule("rewind", "rewind", head_at_zero=False, head_move=HEAD_LEFT),
        XTMRule("rewind", "descend", head_at_zero=True),
        XTMRule("descend", "spread", action=TreeMove(DOWN)),
        # Universal spread over the children.
        *_branching_rules("spread", "visit"),
    ]
    states = frozenset(
        {"visit", "carry", "rewind", "descend", "spread", "acc"}
    )
    machine = XTM(states, "visit", frozenset({"acc"}), registers=1,
                  rules=tuple(rules), name="all-leaves-even-depth")
    return AltXTM(machine, {"spread": UNIVERSAL})


def all_leaves_even_depth_spec(tree) -> bool:
    return all(
        len(u) % 2 == 0 for u in tree.nodes if tree.is_leaf(u)
    )


def forall_leaves_value_alt(attr: str, value) -> AltXTM:
    """∀-branching: accepts iff **every** leaf has ``val_attr = value``."""
    rules: List[XTMRule] = [
        XTMRule("choose", "test", position=AT_LEAF),
        XTMRule("choose", "branch", position=AT_INNER, action=TreeMove(DOWN)),
        *_branching_rules("branch", "choose"),
        XTMRule("test", "acc", tests=(AttrEqConst(attr, value),)),
    ]
    states = frozenset({"choose", "branch", "test", "acc"})
    machine = XTM(states, "choose", frozenset({"acc"}), registers=1,
                  rules=tuple(rules), name=f"forall-leaf-{attr}={value!r}")
    return AltXTM(machine, {"choose": UNIVERSAL, "branch": UNIVERSAL})
