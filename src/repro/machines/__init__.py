"""XML Turing machines and their complexity apparatus (Section 6).

* :mod:`repro.machines.xtm` — deterministic xTMs with resource
  metering (Definition 6.1);
* :mod:`repro.machines.alternation` — alternating xTMs and their
  fixpoint acceptance (the A-classes);
* :mod:`repro.machines.resources` — empirical bound checking for
  LOGSPACE^X / PTIME^X / PSPACE^X / EXPTIME^X claims;
* :mod:`repro.machines.tm` — ordinary single-tape TMs;
* :mod:`repro.machines.encoding` / :mod:`repro.machines.correspondence`
  — the Theorem 6.2 tree encoding and the direct-vs-encoded harness;
* :mod:`repro.machines.programs` — stock machines with specs.
"""

from .xtm import (
    Action,
    AttrEqConst,
    BLANK,
    ClearReg,
    CopyReg,
    HEAD_LEFT,
    HEAD_RIGHT,
    HEAD_STAY,
    LoadAttr,
    NoAction,
    RegEqAttr,
    RegEqConst,
    RegEqReg,
    RegisterTest,
    SetConst,
    TreeMove,
    XTM,
    XTMError,
    XTMResult,
    XTMRule,
    run_xtm,
    step_xtm,
)
from .alternation import (
    AltResult,
    AltXTM,
    EXISTENTIAL,
    UNIVERSAL,
    all_leaves_even_depth_alt,
    all_leaves_even_depth_spec,
    exists_leaf_value_alt,
    forall_leaves_value_alt,
    run_alternating,
)
from .resources import (
    BoundCheck,
    Measurement,
    check_space_bound,
    check_time_bound,
    exponential_bound,
    fit_constant_for_logspace,
    fit_polynomial_degree,
    logspace_bound,
    measure,
    polynomial_bound,
)
from .tm import (
    MOVE_LEFT,
    MOVE_RIGHT,
    MOVE_STAY,
    TMError,
    TMResult,
    TuringMachine,
    paren_parity_tm,
    run_tm,
)
from .encoding import EncodedWalker, EncodingError, encode_tree, make_walker, value_index_table
from .correspondence import (
    CorrespondenceReport,
    EncodedRunResult,
    compare_on,
    run_xtm_encoded,
)
from . import programs

__all__ = [
    "Action",
    "AttrEqConst",
    "BLANK",
    "ClearReg",
    "CopyReg",
    "HEAD_LEFT",
    "HEAD_RIGHT",
    "HEAD_STAY",
    "LoadAttr",
    "NoAction",
    "RegEqAttr",
    "RegEqConst",
    "RegEqReg",
    "RegisterTest",
    "SetConst",
    "TreeMove",
    "XTM",
    "XTMError",
    "XTMResult",
    "XTMRule",
    "run_xtm",
    "step_xtm",
    "AltResult",
    "AltXTM",
    "EXISTENTIAL",
    "UNIVERSAL",
    "all_leaves_even_depth_alt",
    "all_leaves_even_depth_spec",
    "exists_leaf_value_alt",
    "forall_leaves_value_alt",
    "run_alternating",
    "BoundCheck",
    "Measurement",
    "check_space_bound",
    "check_time_bound",
    "exponential_bound",
    "fit_constant_for_logspace",
    "fit_polynomial_degree",
    "logspace_bound",
    "measure",
    "polynomial_bound",
    "MOVE_LEFT",
    "MOVE_RIGHT",
    "MOVE_STAY",
    "TMError",
    "TMResult",
    "TuringMachine",
    "paren_parity_tm",
    "run_tm",
    "EncodedWalker",
    "EncodingError",
    "encode_tree",
    "make_walker",
    "value_index_table",
    "CorrespondenceReport",
    "EncodedRunResult",
    "compare_on",
    "run_xtm_encoded",
    "programs",
]
