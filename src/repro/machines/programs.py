"""A library of concrete xTM programs with independent specifications.

These machines are the experiment fuel of Sections 6 and 7:

* :func:`even_nodes_xtm` — the canonical **LOGSPACE^X** machine: a
  binary counter on the work tape (alphabet {$,0,1}), incremented once
  per node of a depth-first traversal; accepts iff |t| is even.  It is
  the simulation target of the Theorem 7.1(1) pebble construction.
* :func:`all_same_attr_xtm` — registers only (no tape): accepts iff
  every node carries the same ``attr`` value.
* :func:`unary_nodes_xtm` — the same parity property computed in
  **linear space** (one tape cell per node): the simulation target of
  the Theorem 7.1(3) tape-as-relation construction.
"""

from __future__ import annotations

from ..automata.rules import DOWN, PositionTest, RIGHT, STAY, UP
from ..trees.tree import Tree
from .xtm import (
    BLANK,
    CopyReg,
    HEAD_LEFT,
    HEAD_RIGHT,
    HEAD_STAY,
    LoadAttr,
    NoAction,
    RegEqAttr,
    TreeMove,
    XTM,
    XTMRule,
)

AT_LEAF = PositionTest(leaf=True)
AT_INNER = PositionTest(leaf=False)
AT_ROOT = PositionTest(root=True)
BACK_CONTINUE = PositionTest(root=False, last=False)
BACK_ASCEND = PositionTest(root=False, last=True)

MARK = "$"


def even_nodes_xtm() -> XTM:
    """Accepts iff the tree has an even number of nodes.

    Tape layout: ``$ b₀ b₁ b₂ …`` with b₀ the least significant bit of
    the node count.  Per visited node the machine runs one binary
    increment (carry propagation right, rewind to ``$``), so the tape
    holds ⌈log₂ |t|⌉ + 1 cells — a LOGSPACE^X machine.
    """
    rules = [
        # Initialise the $ marker, then visit the root.
        XTMRule("init", "visit", tape_symbol=BLANK, tape_write=MARK),
        # Per-node increment: leave $, propagate the carry, rewind.
        XTMRule("visit", "carry", tape_symbol=MARK, head_move=HEAD_RIGHT),
        XTMRule("carry", "carry", tape_symbol="1", tape_write="0",
                head_move=HEAD_RIGHT),
        XTMRule("carry", "rewind", tape_symbol="0", tape_write="1",
                head_move=HEAD_LEFT),
        XTMRule("carry", "rewind", tape_symbol=BLANK, tape_write="1",
                head_move=HEAD_LEFT),
        XTMRule("rewind", "rewind", tape_symbol="0", head_move=HEAD_LEFT),
        XTMRule("rewind", "rewind", tape_symbol="1", head_move=HEAD_LEFT),
        XTMRule("rewind", "resume", tape_symbol=MARK),
        # Depth-first traversal.
        XTMRule("resume", "back", position=AT_LEAF),
        XTMRule("resume", "visit", position=AT_INNER, action=TreeMove(DOWN)),
        XTMRule("back", "visit", position=BACK_CONTINUE, action=TreeMove(RIGHT)),
        XTMRule("back", "back", position=BACK_ASCEND, action=TreeMove(UP)),
        # Done: check the least significant bit.
        XTMRule("back", "check", position=AT_ROOT, tape_symbol=MARK,
                head_move=HEAD_RIGHT),
        XTMRule("check", "acc", tape_symbol="0"),
        # '1' under the head: stuck ⇒ reject (odd count).
    ]
    states = frozenset(
        {"init", "visit", "carry", "rewind", "resume", "back", "check", "acc"}
    )
    return XTM(states, "init", frozenset({"acc"}), registers=1,
               rules=tuple(rules), name="even-nodes")


def even_nodes_spec(tree: Tree) -> bool:
    return tree.size % 2 == 0


def even_nodes_binary_xtm() -> XTM:
    """Node-count parity with a **strictly binary** tape — the exact
    shape Theorem 7.1(1)'s pebble construction expects.

    The counter counts the n−1 *non-root* nodes of the DFS (so its
    value stays ≤ |t|−1, the range representable by a pebble on the
    in-order numbering).  Blank reads as 0 (the proof's "the tape
    initially contains 0"), and the left tape end is sensed via
    ``head_at_zero`` instead of a marker symbol.  Accepts iff |t| is
    even, i.e. iff the counter n−1 is odd (LSB = 1).
    """
    rules = [
        # Visit: the root does not count; everyone else increments.
        XTMRule("visit", "resume", position=AT_ROOT),
        XTMRule("visit", "carry", position=PositionTest(root=False)),
        # Binary increment from cell 0 (LSB); blank ≡ 0.
        XTMRule("carry", "carry", tape_symbol="1", tape_write="0",
                head_move=HEAD_RIGHT),
        XTMRule("carry", "rewind", tape_symbol="0", tape_write="1"),
        XTMRule("carry", "rewind", tape_symbol=BLANK, tape_write="1"),
        XTMRule("rewind", "rewind", head_at_zero=False, head_move=HEAD_LEFT),
        XTMRule("rewind", "resume", head_at_zero=True),
        # Depth-first traversal.
        XTMRule("resume", "back", position=AT_LEAF),
        XTMRule("resume", "visit", position=AT_INNER, action=TreeMove(DOWN)),
        XTMRule("back", "visit", position=BACK_CONTINUE, action=TreeMove(RIGHT)),
        XTMRule("back", "back", position=BACK_ASCEND, action=TreeMove(UP)),
        # Done: LSB = 1 ⟺ n−1 odd ⟺ n even.
        XTMRule("back", "acc", position=AT_ROOT, tape_symbol="1"),
    ]
    states = frozenset({"visit", "carry", "rewind", "resume", "back", "acc"})
    return XTM(states, "visit", frozenset({"acc"}), registers=1,
               rules=tuple(rules), name="even-nodes-binary")


def all_same_attr_xtm(attr: str = "a") -> XTM:
    """Accepts iff every node has the same ``attr`` value (registers
    only; the work tape is never written)."""
    matches = RegEqAttr(1, attr)
    differs = RegEqAttr(1, attr, negate=True)
    rules = [
        XTMRule("init", "walk", action=LoadAttr(1, attr)),
        XTMRule("walk", "back", position=AT_LEAF, tests=(matches,)),
        XTMRule("walk", "walk", position=AT_INNER, tests=(matches,),
                action=TreeMove(DOWN)),
        # A differing node: stuck ⇒ reject (no rule with ``differs``).
        XTMRule("back", "walk", position=BACK_CONTINUE, action=TreeMove(RIGHT)),
        XTMRule("back", "back", position=BACK_ASCEND, action=TreeMove(UP)),
        XTMRule("back", "acc", position=AT_ROOT),
    ]
    states = frozenset({"init", "walk", "back", "acc"})
    return XTM(states, "init", frozenset({"acc"}), registers=1,
               rules=tuple(rules), name=f"all-same-{attr}")


def all_same_attr_spec(attr: str = "a"):
    def spec(tree: Tree) -> bool:
        return len({tree.val(attr, u) for u in tree.nodes}) <= 1

    return spec


def unary_nodes_xtm() -> XTM:
    """Node-count parity in **linear space**: one ``1`` per node, then a
    parity sweep — deliberately space-profligate (PSPACE^X exemplar for
    the Theorem 7.1(3) tape-as-relation simulation)."""
    rules = [
        # Leave cell 0 blank as the left sentinel of the parity sweep.
        XTMRule("start", "visit", head_move=HEAD_RIGHT),
        # Visit = stamp a 1 and advance the head.
        XTMRule("visit", "resume", tape_write="1", head_move=HEAD_RIGHT),
        XTMRule("resume", "back", position=AT_LEAF),
        XTMRule("resume", "visit", position=AT_INNER, action=TreeMove(DOWN)),
        XTMRule("back", "visit", position=BACK_CONTINUE, action=TreeMove(RIGHT)),
        XTMRule("back", "back", position=BACK_ASCEND, action=TreeMove(UP)),
        # Sweep left over the 1s, toggling parity (we are one cell right
        # of the last stamp when the walk finishes).
        XTMRule("back", "even", position=AT_ROOT, head_move=HEAD_LEFT),
        XTMRule("even", "odd", tape_symbol="1", head_move=HEAD_LEFT),
        XTMRule("odd", "even", tape_symbol="1", head_move=HEAD_LEFT),
        # Falling off the left end from "odd" means an even count was
        # consumed before this last toggle… so accept in the state that
        # has seen an even number of 1s when the BLANK/left edge shows.
        XTMRule("even", "acc", tape_symbol=BLANK),
    ]
    states = frozenset({"start", "visit", "resume", "back", "even", "odd", "acc"})
    return XTM(states, "start", frozenset({"acc"}), registers=1,
               rules=tuple(rules), name="unary-nodes")
