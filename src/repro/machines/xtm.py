"""XML Turing machines (Definition 6.1).

An xTM is a tree-walking automaton (tw: single-value registers) with a
one-way infinite work tape over a finite alphabet.  A transition
inspects the current node's label and position, the current state, the
tape symbol under the head, and equality facts about the registers; it
then changes state, optionally performs a tree action (move / load an
attribute into a register / set or copy a register), writes a tape
symbol and moves the head.

The runner meters **steps** (time) and **work-tape cells used**
(space), so the resource classes LOGSPACE^X, PTIME^X, PSPACE^X and
EXPTIME^X of the paper are empirically checkable
(:mod:`repro.machines.resources`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..automata.rules import DIRECTIONS, PositionTest, ANYWHERE, move as tree_move
from ..trees.node import NodeId
from ..trees.tree import Tree
from ..resilience.errors import ResourceExhausted as _ResourceExhausted
from ..trees.values import BOTTOM, DataValue, MaybeValue

BLANK = "_"

HEAD_LEFT = -1
HEAD_STAY = 0
HEAD_RIGHT = 1

HEAD_MOVES = (HEAD_LEFT, HEAD_STAY, HEAD_RIGHT)


class XTMError(ValueError):
    """Raised on ill-formed machines or genuine runtime errors."""


class XTMFuelExhausted(XTMError, _ResourceExhausted):
    """The xTM's step budget (``fuel``) ran out.

    Unified onto the :mod:`repro.resilience` taxonomy: also a
    :class:`~repro.resilience.errors.ResourceExhausted` with structured
    ``steps``/``limit`` fields, while ``str(exc)`` keeps the historical
    ``fuel N exhausted`` message and ``except XTMError`` callers keep
    working."""

    # ValueError's own __init__ slot shadows ResourceExhausted's in the
    # MRO, so delegate explicitly to keep the structured fields.
    def __init__(self, message: str, *, steps: int = None, limit: int = None) -> None:
        _ResourceExhausted.__init__(self, message, steps=steps, limit=limit)


# -- register conditions (the tw guard language, kept lightweight) ------------


@dataclass(frozen=True)
class RegEqAttr:
    """register ``index`` equals the current node's ``attr`` value."""

    index: int
    attr: str
    negate: bool = False


@dataclass(frozen=True)
class RegEqReg:
    """register ``left`` equals register ``right``."""

    left: int
    right: int
    negate: bool = False


@dataclass(frozen=True)
class RegEqConst:
    """register ``index`` equals the constant ``value``."""

    index: int
    value: DataValue
    negate: bool = False


@dataclass(frozen=True)
class AttrEqConst:
    """the current node's ``attr`` value equals the constant ``value``
    (a register-free guard, as tw guards may mention @a and d ∈ D)."""

    attr: str
    value: DataValue
    negate: bool = False


RegisterTest = Union[RegEqAttr, RegEqReg, RegEqConst, AttrEqConst]


# -- actions -------------------------------------------------------------------


@dataclass(frozen=True)
class TreeMove:
    """Move the control in direction d (off-tree ⇒ reject)."""

    direction: str

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise XTMError(f"bad direction {self.direction!r}")


@dataclass(frozen=True)
class LoadAttr:
    """register ``index`` := current node's ``attr`` value."""

    index: int
    attr: str


@dataclass(frozen=True)
class SetConst:
    """register ``index`` := constant ``value``."""

    index: int
    value: DataValue


@dataclass(frozen=True)
class CopyReg:
    """register ``dst`` := register ``src``."""

    dst: int
    src: int


@dataclass(frozen=True)
class ClearReg:
    """register ``index`` := ⊥."""

    index: int


@dataclass(frozen=True)
class NoAction:
    """Tape-only step."""


Action = Union[TreeMove, LoadAttr, SetConst, CopyReg, ClearReg, NoAction]


# -- rules ----------------------------------------------------------------------


@dataclass(frozen=True)
class XTMRule:
    """One transition.  ``label``/``tape_symbol`` of ``None`` match any;
    ``tests`` is a conjunction of register conditions; ``head_at_zero``
    optionally requires the head to be (not be) on the leftmost cell —
    standard left-end awareness for one-way infinite tapes."""

    state: str
    new_state: str
    label: Optional[str] = None
    position: PositionTest = ANYWHERE
    tape_symbol: Optional[str] = None
    tests: Tuple[RegisterTest, ...] = ()
    action: Action = NoAction()
    tape_write: Optional[str] = None
    head_move: int = HEAD_STAY
    head_at_zero: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.head_move not in HEAD_MOVES:
            raise XTMError(f"bad head move {self.head_move!r}")


@dataclass(frozen=True)
class XTM:
    """A deterministic xTM.  ``mode`` per state is irrelevant here; the
    alternating variant lives in :mod:`repro.machines.alternation`."""

    states: frozenset
    initial: str
    accepting: frozenset
    registers: int
    rules: Tuple[XTMRule, ...]
    name: str = "M"

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise XTMError(f"initial state {self.initial!r} not in Q")
        if not self.accepting <= self.states:
            raise XTMError("accepting states must be a subset of Q")
        for rule in self.rules:
            if rule.state not in self.states or rule.new_state not in self.states:
                raise XTMError(f"rule with unknown state: {rule!r}")
            for test in rule.tests:
                for idx in _test_registers(test):
                    if not 1 <= idx <= self.registers:
                        raise XTMError(f"register {idx} out of range: {rule!r}")
            for idx in _action_registers(rule.action):
                if not 1 <= idx <= self.registers:
                    raise XTMError(f"register {idx} out of range: {rule!r}")

    def rules_for(self, state: str) -> Tuple[XTMRule, ...]:
        return tuple(r for r in self.rules if r.state == state)


def _test_registers(test: RegisterTest) -> Tuple[int, ...]:
    if isinstance(test, RegEqReg):
        return (test.left, test.right)
    if isinstance(test, AttrEqConst):
        return ()
    return (test.index,)


def _action_registers(action: Action) -> Tuple[int, ...]:
    if isinstance(action, (LoadAttr, SetConst, ClearReg)):
        return (action.index,)
    if isinstance(action, CopyReg):
        return (action.dst, action.src)
    return ()


# -- execution -------------------------------------------------------------------


@dataclass
class XTMResult:
    accepted: bool
    steps: int
    space: int  # number of tape cells ever under the head
    reason: str
    tape: str = ""


def _test_holds(
    test: RegisterTest, registers: List[MaybeValue], tree: Tree, node: NodeId
) -> bool:
    if isinstance(test, RegEqAttr):
        outcome = registers[test.index - 1] == tree.val(test.attr, node)
    elif isinstance(test, RegEqReg):
        outcome = registers[test.left - 1] == registers[test.right - 1]
    elif isinstance(test, AttrEqConst):
        outcome = tree.val(test.attr, node) == test.value
    else:
        outcome = registers[test.index - 1] == test.value
    return outcome != test.negate


def step_xtm(
    machine: XTM,
    tree: Tree,
    node: NodeId,
    state: str,
    registers: List[MaybeValue],
    tape: Dict[int, str],
    head: int,
) -> Optional[Tuple[NodeId, str, List[MaybeValue], int]]:
    """Apply the unique applicable rule in place (tape mutated); returns
    the new (node, state, registers, head) or ``None`` when stuck/off.

    Raises :class:`XTMError` on a determinism violation.
    """
    symbol = tape.get(head, BLANK)
    label = tree.label(node)
    chosen: Optional[XTMRule] = None
    for rule in machine.rules_for(state):
        if rule.label is not None and rule.label != label:
            continue
        if rule.tape_symbol is not None and rule.tape_symbol != symbol:
            continue
        if rule.head_at_zero is not None and rule.head_at_zero != (head == 0):
            continue
        if not rule.position.matches(tree, node):
            continue
        if not all(_test_holds(t, registers, tree, node) for t in rule.tests):
            continue
        if chosen is not None:
            raise XTMError(f"nondeterministic: {chosen!r} and {rule!r} both apply")
        chosen = rule
    if chosen is None:
        return None

    if chosen.tape_write is not None:
        tape[head] = chosen.tape_write
    new_head = head + chosen.head_move
    if new_head < 0:
        return None  # fell off the left tape end

    new_node: Optional[NodeId] = node
    new_registers = registers
    action = chosen.action
    if isinstance(action, TreeMove):
        new_node = tree_move(tree, node, action.direction)
        if new_node is None:
            return None
    elif isinstance(action, LoadAttr):
        new_registers = list(registers)
        new_registers[action.index - 1] = tree.val(action.attr, node)
    elif isinstance(action, SetConst):
        new_registers = list(registers)
        new_registers[action.index - 1] = action.value
    elif isinstance(action, CopyReg):
        new_registers = list(registers)
        new_registers[action.dst - 1] = registers[action.src - 1]
    elif isinstance(action, ClearReg):
        new_registers = list(registers)
        new_registers[action.index - 1] = BOTTOM
    return (new_node, chosen.new_state, new_registers, new_head)


def run_xtm(
    machine: XTM,
    tree: Tree,
    fuel: int = 2_000_000,
    start: NodeId = (),
) -> XTMResult:
    """Run to acceptance / rejection with full resource metering."""
    tree.require(start)
    node, state = start, machine.initial
    registers: List[MaybeValue] = [BOTTOM] * machine.registers
    tape: Dict[int, str] = {}
    head = 0
    touched: Set[int] = {0}
    steps = 0
    seen: Set[Tuple] = set()
    while True:
        if state in machine.accepting:
            return XTMResult(
                True, steps, len(touched), "accepted", _tape_text(tape)
            )
        key = (
            node,
            state,
            tuple(registers),
            tuple(sorted(tape.items())),
            head,
        )
        if key in seen:
            return XTMResult(
                False, steps, len(touched), "cycle (divergence)", _tape_text(tape)
            )
        seen.add(key)
        steps += 1
        if steps > fuel:
            raise XTMFuelExhausted(
                f"fuel {fuel} exhausted", steps=steps, limit=fuel
            )
        outcome = step_xtm(machine, tree, node, state, registers, tape, head)
        if outcome is None:
            return XTMResult(
                False, steps, len(touched), "stuck or off-bounds", _tape_text(tape)
            )
        node, state, registers, head = outcome
        touched.add(head)


def _tape_text(tape: Dict[int, str]) -> str:
    if not tape:
        return ""
    top = max(tape)
    return "".join(tape.get(i, BLANK) for i in range(top + 1))
