"""The Theorem 6.2 harness: run an xTM against the *encoding* of a tree.

``run_xtm_encoded`` interprets the same rule set as
:func:`repro.machines.xtm.run_xtm`, but every tree-navigation primitive
goes through an :class:`EncodedWalker`, which scans the flat string and
charges one unit per character — the cost profile of an ordinary TM
working on enc(t).  The harness

* checks that the verdict matches the direct run (the two machines
  recognise the same tree language), and
* reports the navigation overhead ``char_steps / steps`` — empirically
  polynomial (in fact O(|enc(t)|) per move), which is the content of
  the theorem's "natural time/space correspondence".

Attribute *constants* (``RegEqConst`` over D) are not translatable —
the encoding knows values only up to first-occurrence index — so
machines run here must be constant-free (checked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..trees.tree import Tree
from ..trees.values import BOTTOM
from .encoding import EncodedWalker, make_walker
from .xtm import (
    BLANK,
    CopyReg,
    LoadAttr,
    NoAction,
    RegEqAttr,
    RegEqConst,
    RegEqReg,
    SetConst,
    TreeMove,
    XTM,
    XTMError,
    XTMFuelExhausted,
    XTMResult,
    run_xtm,
)
from ..automata.rules import DOWN, LEFT, RIGHT, STAY, UP


def _check_constant_free(machine: XTM) -> None:
    for rule in machine.rules:
        if isinstance(rule.action, SetConst):
            raise XTMError(
                f"{machine.name}: SetConst not supported on encodings ({rule!r})"
            )
        for test in rule.tests:
            if isinstance(test, RegEqConst):
                raise XTMError(
                    f"{machine.name}: RegEqConst not supported on encodings "
                    f"({rule!r})"
                )


@dataclass
class EncodedRunResult:
    accepted: bool
    steps: int
    space: int
    char_steps: int
    reason: str


def run_xtm_encoded(
    machine: XTM, tree: Tree, fuel: int = 2_000_000
) -> EncodedRunResult:
    """Interpret ``machine`` over ``enc(tree)`` via an EncodedWalker."""
    _check_constant_free(machine)
    walker = make_walker(tree)
    state = machine.initial
    registers: List[Optional[int]] = [None] * machine.registers
    tape: Dict[int, str] = {}
    head = 0
    touched: Set[int] = {0}
    steps = 0
    seen: Set[Tuple] = set()

    def position_matches(position) -> bool:
        checks = (
            (position.root, walker.is_root),
            (position.leaf, walker.is_leaf),
            (position.first, walker.is_first_child),
            (position.last, walker.is_last_child),
        )
        return all(
            expected is None or predicate() == expected
            for expected, predicate in checks
        )

    def test_holds(test) -> bool:
        if isinstance(test, RegEqAttr):
            outcome = registers[test.index - 1] == walker.attr_index(test.attr)
        elif isinstance(test, RegEqReg):
            outcome = registers[test.left - 1] == registers[test.right - 1]
        else:  # pragma: no cover - excluded by _check_constant_free
            raise XTMError(f"unsupported test {test!r}")
        return outcome != test.negate

    while True:
        if state in machine.accepting:
            return EncodedRunResult(
                True, steps, len(touched), walker.char_steps, "accepted"
            )
        key = (
            walker.cursor,
            state,
            tuple(registers),
            tuple(sorted(tape.items())),
            head,
        )
        if key in seen:
            return EncodedRunResult(
                False, steps, len(touched), walker.char_steps, "cycle"
            )
        seen.add(key)
        steps += 1
        if steps > fuel:
            raise XTMFuelExhausted(
                f"fuel {fuel} exhausted", steps=steps, limit=fuel
            )

        symbol = tape.get(head, BLANK)
        label = walker.label()
        chosen = None
        for rule in machine.rules_for(state):
            if rule.label is not None and rule.label != label:
                continue
            if rule.tape_symbol is not None and rule.tape_symbol != symbol:
                continue
            if rule.head_at_zero is not None and rule.head_at_zero != (head == 0):
                continue
            if not position_matches(rule.position):
                continue
            if not all(test_holds(t) for t in rule.tests):
                continue
            if chosen is not None:
                raise XTMError(f"nondeterministic: {chosen!r} / {rule!r}")
            chosen = rule
        if chosen is None:
            return EncodedRunResult(
                False, steps, len(touched), walker.char_steps, "stuck"
            )

        if chosen.tape_write is not None:
            tape[head] = chosen.tape_write
        head += chosen.head_move
        if head < 0:
            return EncodedRunResult(
                False, steps, len(touched), walker.char_steps, "off tape"
            )
        touched.add(head)

        action = chosen.action
        if isinstance(action, TreeMove):
            moved = {
                STAY: lambda: True,
                DOWN: walker.down,
                RIGHT: walker.right,
                LEFT: walker.left,
                UP: walker.up,
            }[action.direction]()
            if not moved:
                return EncodedRunResult(
                    False, steps, len(touched), walker.char_steps, "off tree"
                )
        elif isinstance(action, LoadAttr):
            registers[action.index - 1] = walker.attr_index(action.attr)
        elif isinstance(action, CopyReg):
            registers[action.dst - 1] = registers[action.src - 1]
        state = chosen.new_state


@dataclass
class CorrespondenceReport:
    """Direct-vs-encoded comparison for one instance (Theorem 6.2)."""

    size: int
    encoding_length: int
    direct: XTMResult
    encoded: EncodedRunResult

    @property
    def verdicts_agree(self) -> bool:
        return self.direct.accepted == self.encoded.accepted

    @property
    def overhead(self) -> float:
        """Characters scanned per direct step — the navigation cost an
        ordinary TM pays, bounded by O(|enc(t)|)."""
        return self.encoded.char_steps / max(self.direct.steps, 1)


def compare_on(machine: XTM, tree: Tree, fuel: int = 2_000_000) -> CorrespondenceReport:
    """Run both ways and report."""
    from .encoding import encode_tree

    return CorrespondenceReport(
        size=tree.size,
        encoding_length=len(encode_tree(tree)),
        direct=run_xtm(machine, tree, fuel=fuel),
        encoded=run_xtm_encoded(machine, tree, fuel=fuel),
    )
