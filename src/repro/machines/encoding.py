"""String encodings of attributed trees (Theorem 6.2).

``encode_tree`` serialises an attributed tree over a *finite* alphabet:

    node  := "(" label (";" attr-bits ("," attr-bits)*)? children ")"

where ``attr-bits`` is the binary index of the node's attribute value
in first-occurrence (document) order — an ordinary TM cannot hold
elements of the infinite D, but equality of D-values is exactly
equality of indices, which is all the metafinite logic ever uses.

:class:`EncodedWalker` then re-implements the tree-walking interface
(label, position predicates, the four moves, attribute access) purely
by scanning the encoding, **charging one step per character visited**.
Running the same xTM against a :class:`Tree` (unit-cost navigation) and
against its encoding measures the polynomial navigation overhead that
Theorem 6.2's time/space correspondence tolerates; verdicts must agree
(the E6 experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..trees.node import NodeId
from ..trees.tree import Tree
from ..trees.values import BOTTOM

OPEN = "("
CLOSE = ")"
ATTR_SEP = ";"
ATTR_COMMA = ","


class EncodingError(ValueError):
    """Raised on malformed encodings or unsupported trees."""


def value_index_table(tree: Tree) -> Dict[object, int]:
    """D-value → index, by first occurrence in document order (the
    paper's Theorem 7.1(2) device, reused here)."""
    table: Dict[object, int] = {}
    for node in tree.nodes:
        for attr in tree.attributes:
            value = tree.val(attr, node)
            if value is BOTTOM:
                continue
            if value not in table:
                table[value] = len(table)
    return table


def encode_tree(tree: Tree) -> str:
    """Serialise ``tree`` over the finite alphabet
    {(, ), ;, ,, 0, 1} ∪ Σ."""
    for label in tree.alphabet:
        if any(ch in "();,01" for ch in label):
            raise EncodingError(f"label {label!r} collides with the encoding alphabet")
    table = value_index_table(tree)

    def bits(value: object) -> str:
        if value is BOTTOM:
            return ""
        return format(table[value], "b")

    pieces: List[str] = []

    def emit(node: NodeId) -> None:
        pieces.append(OPEN)
        pieces.append(tree.label(node))
        if tree.attributes:
            pieces.append(ATTR_SEP)
            pieces.append(
                ATTR_COMMA.join(bits(tree.val(a, node)) for a in tree.attributes)
            )
        for child in tree.children(node):
            emit(child)
        pieces.append(CLOSE)

    emit(())
    return "".join(pieces)


@dataclass
class EncodedWalker:
    """Tree navigation over the flat encoding, metered per character.

    The cursor always rests on the ``(`` of the current node.  Each
    navigation scans characters (balanced-parenthesis matching) and
    adds the scan length to ``char_steps`` — the honest cost an
    ordinary TM pays for one tree move.
    """

    text: str
    attributes: Tuple[str, ...]
    cursor: int = 0
    char_steps: int = 0

    def __post_init__(self) -> None:
        if not self.text.startswith(OPEN):
            raise EncodingError("encoding must start with '('")

    # -- scanning helpers -------------------------------------------------------

    def _charge(self, distance: int) -> None:
        self.char_steps += distance

    def _skip_group(self, start: int) -> int:
        """Index just past the balanced group opening at ``start``."""
        depth = 0
        i = start
        while i < len(self.text):
            ch = self.text[i]
            if ch == OPEN:
                depth += 1
            elif ch == CLOSE:
                depth -= 1
                if depth == 0:
                    self._charge(i + 1 - start)
                    return i + 1
            i += 1
        raise EncodingError("unbalanced encoding")

    def _header_end(self, start: int) -> int:
        """Index of the first child's '(' or the node's ')'."""
        i = start + 1
        while self.text[i] not in (OPEN, CLOSE):
            i += 1
        return i

    # -- the walking interface ----------------------------------------------------

    def label(self) -> str:
        i = self.cursor + 1
        j = i
        while self.text[j] not in (ATTR_SEP, OPEN, CLOSE):
            j += 1
        self._charge(j - self.cursor)
        return self.text[i:j]

    def attr_index(self, attr: str) -> Optional[int]:
        """The current node's value index for ``attr`` (None for ⊥)."""
        try:
            column = self.attributes.index(attr)
        except ValueError:
            raise EncodingError(f"unknown attribute {attr!r}") from None
        i = self.cursor + 1
        while self.text[i] not in (ATTR_SEP, OPEN, CLOSE):
            i += 1
        if self.text[i] != ATTR_SEP:
            raise EncodingError("node encodes no attributes")
        i += 1
        fields: List[str] = [""]
        while self.text[i] not in (OPEN, CLOSE):
            if self.text[i] == ATTR_COMMA:
                fields.append("")
            else:
                fields[-1] += self.text[i]
            i += 1
        self._charge(i - self.cursor)
        bits = fields[column]
        return int(bits, 2) if bits else None

    def is_leaf(self) -> bool:
        end = self._header_end(self.cursor)
        self._charge(end - self.cursor)
        return self.text[end] == CLOSE

    def is_root(self) -> bool:
        return self.cursor == 0

    def is_first_child(self) -> bool:
        if self.is_root():
            return False
        # The preceding char is '(' of the parent header region iff no
        # sibling group closes right before us.
        self._charge(1)
        return self.text[self.cursor - 1] != CLOSE

    def is_last_child(self) -> bool:
        if self.is_root():
            return False
        end = self._skip_group(self.cursor)
        return self.text[end] == CLOSE

    # -- moves ----------------------------------------------------------------------

    def down(self) -> bool:
        """To the first child; False (no move) at a leaf."""
        end = self._header_end(self.cursor)
        self._charge(end - self.cursor)
        if self.text[end] == CLOSE:
            return False
        self.cursor = end
        return True

    def right(self) -> bool:
        """To the right sibling; False when none."""
        if self.is_root():
            return False
        end = self._skip_group(self.cursor)
        if self.text[end] != OPEN:
            return False
        self.cursor = end
        return True

    def left(self) -> bool:
        """To the left sibling; False when none."""
        if self.is_root() or self.text[self.cursor - 1] != CLOSE:
            self._charge(1)
            return False
        # Scan left for the matching '(' of the group ending just before us.
        depth = 0
        i = self.cursor - 1
        while i >= 0:
            ch = self.text[i]
            if ch == CLOSE:
                depth += 1
            elif ch == OPEN:
                depth -= 1
                if depth == 0:
                    self._charge(self.cursor - i)
                    self.cursor = i
                    return True
            i -= 1
        raise EncodingError("unbalanced encoding")

    def up(self) -> bool:
        """To the parent; False at the root."""
        if self.is_root():
            return False
        # Walk left past any earlier sibling groups, then one more char
        # lands inside the parent header; scan left to its '('.
        i = self.cursor
        while self.text[i - 1] == CLOSE:
            depth = 0
            j = i - 1
            while True:
                ch = self.text[j]
                if ch == CLOSE:
                    depth += 1
                elif ch == OPEN:
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            self._charge(i - j)
            i = j
        # Now text[i-1] is part of the parent's header; scan to its '('.
        j = i - 1
        while self.text[j] != OPEN:
            j -= 1
        self._charge(i - j)
        self.cursor = j
        return True


def make_walker(tree: Tree) -> EncodedWalker:
    """Encode and wrap in one call."""
    return EncodedWalker(encode_tree(tree), tree.attributes)
