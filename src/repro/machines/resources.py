"""Resource classes over xTMs (Definition 6.1's LOGSPACE^X … EXPTIME^X).

The paper defines the classes by counting transitions (time) and
work-tape cells (space) *in the number of nodes of the input tree*.
These helpers measure a machine over an instance family and fit the
observed resource curve against a claimed bound — the executable
meaning we give to "M ∈ PTIME^X" etc. (one cannot decide the bound for
all inputs, but one can check it on a sweep and expose the constants).

A sweep whose fuel runs out raises :class:`~repro.machines.xtm.XTMFuelExhausted`,
which is also a :class:`repro.resilience.errors.ResourceExhausted` carrying
structured ``steps``/``limit`` fields — catch either, per taste.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple

from ..trees.tree import Tree
from .xtm import XTM, XTMFuelExhausted, XTMResult, run_xtm

BoundFn = Callable[[int], float]


def logspace_bound(c: float = 1.0, d: float = 1.0) -> BoundFn:
    """n ↦ c·log₂(n) + d   (with log₂(1) read as 1)."""
    return lambda n: c * max(math.log2(n), 1.0) + d


def polynomial_bound(c: float = 1.0, k: int = 1, d: float = 0.0) -> BoundFn:
    """n ↦ c·n^k + d."""
    return lambda n: c * n**k + d


def exponential_bound(c: float = 1.0, k: int = 1) -> BoundFn:
    """n ↦ c·2^(n^k)."""
    return lambda n: c * 2.0 ** (n**k)


@dataclass
class Measurement:
    """One run's resources."""

    size: int
    steps: int
    space: int
    accepted: bool


def measure(machine: XTM, trees: Iterable[Tree], fuel: int = 2_000_000) -> List[Measurement]:
    """Run ``machine`` over the instance family and record resources."""
    out = []
    for tree in trees:
        result = run_xtm(machine, tree, fuel=fuel)
        out.append(Measurement(tree.size, result.steps, result.space, result.accepted))
    return out


@dataclass
class BoundCheck:
    """Outcome of checking measurements against a bound."""

    holds: bool
    worst_ratio: float
    violations: List[Measurement]

    def __bool__(self) -> bool:
        return self.holds


def check_space_bound(
    measurements: Sequence[Measurement], bound: BoundFn
) -> BoundCheck:
    """Does every measured space fall under ``bound(size)``?"""
    return _check(measurements, bound, lambda m: m.space)


def check_time_bound(
    measurements: Sequence[Measurement], bound: BoundFn
) -> BoundCheck:
    """Does every measured step count fall under ``bound(size)``?"""
    return _check(measurements, bound, lambda m: m.steps)


def _check(
    measurements: Sequence[Measurement],
    bound: BoundFn,
    key: Callable[[Measurement], int],
) -> BoundCheck:
    violations = []
    worst = 0.0
    for m in measurements:
        limit = bound(m.size)
        ratio = key(m) / limit if limit > 0 else math.inf
        worst = max(worst, ratio)
        if key(m) > limit:
            violations.append(m)
    return BoundCheck(not violations, worst, violations)


def fit_constant_for_logspace(measurements: Sequence[Measurement]) -> float:
    """Smallest c with space ≤ c·log₂(n)+1 over the sweep — the paper's
    "at most k·log₂(|t|) space" constant, exposed."""
    best = 0.0
    for m in measurements:
        denom = max(math.log2(m.size), 1.0)
        best = max(best, (m.space - 1) / denom)
    return best


def fit_polynomial_degree(
    measurements: Sequence[Measurement],
    key: Callable[[Measurement], int] = lambda m: m.steps,
) -> float:
    """Least-squares slope of log(resource) vs log(size) — the observed
    polynomial degree of a time/space curve (needs sizes ≥ 2)."""
    points = [
        (math.log(m.size), math.log(max(key(m), 1)))
        for m in measurements
        if m.size >= 2
    ]
    if len(points) < 2:
        raise ValueError("need at least two sizes >= 2 to fit a degree")
    n = len(points)
    sx = sum(x for x, _ in points)
    sy = sum(y for _, y in points)
    sxx = sum(x * x for x, _ in points)
    sxy = sum(x * y for x, y in points)
    denom = n * sxx - sx * sx
    if denom == 0:
        raise ValueError("degenerate sweep (all sizes equal)")
    return (n * sxy - sx * sy) / denom
