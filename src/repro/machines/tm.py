"""Ordinary single-tape Turing machines (the right side of Theorem 6.2).

A classical deterministic TM over a finite alphabet, reading its input
from the tape.  Theorem 6.2 relates xTM classes to ordinary TM classes
on *encodings* of trees; :mod:`repro.machines.encoding` provides the
encoding, and the E6 experiment runs paired programs (e.g. node-count
parity as an xTM on t vs. '('-count parity as a TM on enc(t)) and
compares verdicts and resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

BLANK = "_"

MOVE_LEFT = -1
MOVE_STAY = 0
MOVE_RIGHT = 1


class TMError(ValueError):
    """Raised on ill-formed machines or runtime errors."""


@dataclass(frozen=True)
class TuringMachine:
    """δ maps (state, symbol) to (state, write, move)."""

    states: FrozenSet[str]
    initial: str
    accepting: FrozenSet[str]
    transitions: Tuple[Tuple[Tuple[str, str], Tuple[str, str, int]], ...]
    name: str = "T"

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise TMError(f"initial state {self.initial!r} not in Q")
        if not self.accepting <= self.states:
            raise TMError("accepting states must be in Q")
        seen: Set[Tuple[str, str]] = set()
        for (state, symbol), (target, _write, move_) in self.transitions:
            if state not in self.states or target not in self.states:
                raise TMError(f"unknown state in δ({state!r},{symbol!r})")
            if move_ not in (MOVE_LEFT, MOVE_STAY, MOVE_RIGHT):
                raise TMError(f"bad move {move_!r}")
            if (state, symbol) in seen:
                raise TMError(f"duplicate transition ({state!r},{symbol!r})")
            seen.add((state, symbol))

    def delta(self) -> Dict[Tuple[str, str], Tuple[str, str, int]]:
        return dict(self.transitions)


@dataclass
class TMResult:
    accepted: bool
    steps: int
    space: int
    reason: str


def run_tm(machine: TuringMachine, word: str, fuel: int = 5_000_000) -> TMResult:
    """Run on ``word``; the head starts on its first symbol.  Space is
    the number of cells ever under the head (input included)."""
    tape: Dict[int, str] = {i: ch for i, ch in enumerate(word)}
    delta = machine.delta()
    state, head, steps = machine.initial, 0, 0
    touched: Set[int] = {0}
    seen: Set[Tuple[str, int, Tuple[Tuple[int, str], ...]]] = set()
    while True:
        if state in machine.accepting:
            return TMResult(True, steps, len(touched), "accepted")
        key = (state, head, tuple(sorted(tape.items())))
        if key in seen:
            return TMResult(False, steps, len(touched), "cycle (divergence)")
        seen.add(key)
        steps += 1
        if steps > fuel:
            raise TMError(f"fuel {fuel} exhausted")
        symbol = tape.get(head, BLANK)
        move_ = delta.get((state, symbol))
        if move_ is None:
            return TMResult(False, steps, len(touched), f"stuck on {symbol!r}")
        state, write, direction = move_
        tape[head] = write
        head += direction
        if head < 0:
            return TMResult(False, steps, len(touched), "fell off the left end")
        touched.add(head)


def paren_parity_tm(open_char: str = "(", alphabet: Sequence[str] = ()) -> TuringMachine:
    """Accepts words with an **even** number of ``open_char`` symbols —
    the ordinary-TM twin of :func:`repro.machines.programs.even_nodes_xtm`
    under the Theorem 6.2 encoding (each node contributes one '(')."""
    others = [c for c in alphabet if c != open_char]
    transitions = []
    for parity in ("even", "odd"):
        flipped = "odd" if parity == "even" else "even"
        transitions.append(
            ((parity, open_char), (flipped, open_char, MOVE_RIGHT))
        )
        for ch in others:
            transitions.append(((parity, ch), (parity, ch, MOVE_RIGHT)))
    transitions.append((("even", BLANK), ("acc", BLANK, MOVE_STAY)))
    return TuringMachine(
        states=frozenset({"even", "odd", "acc"}),
        initial="even",
        accepting=frozenset({"acc"}),
        transitions=tuple(transitions),
        name="paren-parity",
    )
